"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that editable
installs work on environments whose setuptools/pip lack PEP-660 support
(e.g. offline boxes without the ``wheel`` package).
"""

from setuptools import setup

setup()
