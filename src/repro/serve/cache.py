"""Thread-safe LRU cache with hit/miss accounting.

The oracle's second cache tier: precomputed sweep tables cover the
discretized Table-I links, and everything off-grid (arbitrary distances,
reference-SNR links) lands here. Entries are whole
:class:`~repro.serve.oracle.SweepTable` objects — the expensive artefact
is the table, not any single answer derived from it — so one cached link
serves every objective/constraint combination asked about it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, TypeVar

from ..errors import ServeError

__all__ = [
    "CacheStats",
    "LruCache",
]

_V = TypeVar("_V")

#: Internal miss sentinel, so ``get`` does one dict lookup per call and
#: cached values of ``None`` would still be distinguishable from misses.
_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready view for the ``/metrics`` endpoint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class LruCache:
    """A bounded mapping evicting the least-recently-used entry.

    All operations take an internal lock, so a cache instance can be shared
    by every worker thread of the service. Values are built *outside* the
    lock by callers (builds take ~1 s for a full grid); concurrent builders
    of the same key are coalesced upstream by the micro-batcher, so the
    cache itself stays simple.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServeError(f"cache capacity must be >= 1, got {capacity!r}")
        self._capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[object]:
        """The cached value, marking it most-recently-used; None on miss.

        The lookup, the recency update, and the counter bump happen in one
        critical section, so ``hits + misses == lookups`` holds exactly at
        every instant a reader can observe (:meth:`stats` snapshots under
        the same lock).
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self._hits += 1
                return value
            self._misses += 1
            return None

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU one when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def stats(self) -> CacheStats:
        """Snapshot of the counters (consistent under the lock)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )
