"""Request/response schema of the link-configuration oracle service.

The wire format is deliberately tiny JSON (see ``docs/SERVING.md``): a
request names a *link* (either a ``distance_m`` in the modelled hallway or
a reference ``snr_db`` at a power level, the paper's Table IV convention),
and either asks for the best configuration under an objective plus
epsilon-constraints (``recommend``) or for the model metrics of one
explicit :class:`~repro.config.StackConfig` (``evaluate``). This module
owns parsing and validation so the HTTP handler and the in-process
:class:`~repro.serve.client.Client` share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..config import StackConfig
from ..core.optimization import (
    ConfigEvaluation,
    Constraint,
    snr_map_from_environment,
    snr_map_from_reference,
)
from ..channel.environment import Environment
from ..errors import ConfigurationError, ProtocolError

__all__ = [
    "FLEET_ROUTING_STRATEGIES",
    "MAX_FLEET_LINKS",
    "MAX_TELEMETRY_UPLINKS",
    "OBJECTIVES",
    "LinkSpec",
    "RecommendRequest",
    "EvaluateRequest",
    "FleetRecommendRequest",
    "RoutingSpec",
    "TelemetryRequest",
    "evaluation_as_dict",
    "parse_link",
    "parse_recommend",
    "parse_evaluate",
    "parse_fleet_recommend",
    "parse_routing",
    "parse_telemetry",
]

#: Objectives a request may optimize or constrain (minimization form, the
#: names understood by :meth:`ConfigEvaluation.objective`).
OBJECTIVES: Tuple[str, ...] = (
    "energy",
    "goodput",
    "delay",
    "loss",
    "loss_radio",
    "rho",
)

#: Rounding applied to link floats when forming cache keys, so that two
#: requests differing only by float noise (1e-9 m apart) share an entry.
_KEY_DECIMALS = 6

#: Most links one ``/v1/fleet/recommend`` batch may carry. Bounds worst-case
#: work per request (and keeps a maximal batch body well under the HTTP
#: layer's 1 MiB cap).
MAX_FLEET_LINKS = 10_000

#: Tree-building strategies a fleet request's routing block may name.
#: Mirrors :data:`repro.routing.ROUTING_STRATEGIES` — spelled out here
#: because the routing package sits *above* this module in the import
#: graph (``fleet.topology`` imports :class:`LinkSpec` from here).
FLEET_ROUTING_STRATEGIES: Tuple[str, ...] = ("tree", "mesh")

#: Most uplinks one ``POST /v1/telemetry`` batch may carry, binary or
#: JSON. Together with the service's bounded queue this is the telemetry
#: backpressure story: a too-large batch is a protocol error (400), a
#: full queue is an overload rejection (503 + Retry-After).
MAX_TELEMETRY_UPLINKS = 50_000


@dataclass(frozen=True)
class LinkSpec:
    """Which link a request is about: a distance *or* a reference SNR.

    ``distance_m`` resolves SNR per power level through the channel model
    of the service's environment; ``snr_db`` instead assumes SNR tracks
    output power dB-for-dB from ``reference_level`` (the paper's case-study
    convention). Exactly one of the two must be given.
    """

    distance_m: Optional[float] = None
    snr_db: Optional[float] = None
    reference_level: int = 31

    def __post_init__(self) -> None:
        if (self.distance_m is None) == (self.snr_db is None):
            raise ProtocolError(
                "a link spec needs exactly one of distance_m or snr_db"
            )
        if self.distance_m is not None and self.distance_m <= 0:
            raise ProtocolError(
                f"distance_m must be positive, got {self.distance_m!r}"
            )

    def key(self) -> Tuple[object, ...]:
        """Hashable cache key identifying this link (rounded floats)."""
        if self.distance_m is not None:
            return ("distance", round(float(self.distance_m), _KEY_DECIMALS))
        return (
            "snr",
            round(float(self.snr_db), _KEY_DECIMALS),
            int(self.reference_level),
        )

    def snr_map(self, environment: Environment) -> Dict[int, float]:
        """Level → SNR for this link, via the channel model or reference."""
        if self.distance_m is not None:
            return snr_map_from_environment(environment, self.distance_m)
        return snr_map_from_reference(self.snr_db, self.reference_level)

    def grid_distance_m(self, default: float = 10.0) -> float:
        """Distance stamped on grid configs (inert for SNR-specified links)."""
        return self.distance_m if self.distance_m is not None else default

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (only the populated alternative)."""
        if self.distance_m is not None:
            return {"distance_m": self.distance_m}
        return {"snr_db": self.snr_db, "reference_level": self.reference_level}


@dataclass(frozen=True)
class RecommendRequest:
    """Ask for the grid configuration minimizing ``objective`` on a link."""

    link: LinkSpec
    objective: str = "energy"
    constraints: Tuple[Constraint, ...] = ()

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ProtocolError(
                f"unknown objective {self.objective!r}; valid: {list(OBJECTIVES)}"
            )
        for constraint in self.constraints:
            if constraint.objective not in OBJECTIVES:
                raise ProtocolError(
                    f"unknown constraint objective {constraint.objective!r}; "
                    f"valid: {list(OBJECTIVES)}"
                )


@dataclass(frozen=True)
class RoutingSpec:
    """How a fleet batch's links connect into a multi-hop deployment.

    ``edges[i]`` names the ``(node, node)`` endpoints of ``links[i]`` —
    the routing block runs parallel to the request's link array. With it
    the oracle builds the collection tree, composes every leaf→sink path
    from the per-link recommendations, and reports path-level
    feasibility against ``max_path_loss`` (``None`` just reports the
    composed losses).
    """

    edges: Tuple[Tuple[int, int], ...]
    sink: Optional[int] = None
    strategy: str = "tree"
    max_path_loss: Optional[float] = None
    include_paths: bool = False

    def __post_init__(self) -> None:
        if not self.edges:
            raise ProtocolError("a routing block needs at least one edge")
        for index, edge in enumerate(self.edges):
            if len(edge) != 2:
                raise ProtocolError(
                    f"routing edge {index} must be a [node, node] pair, "
                    f"got {edge!r}"
                )
            for node in edge:
                if isinstance(node, bool) or not isinstance(node, int):
                    raise ProtocolError(
                        f"routing edge {index} endpoints must be integers, "
                        f"got {edge!r}"
                    )
                if node < 0:
                    raise ProtocolError(
                        f"routing edge {index} endpoint {node} is negative"
                    )
        if self.strategy not in FLEET_ROUTING_STRATEGIES:
            raise ProtocolError(
                f"unknown routing strategy {self.strategy!r}; "
                f"valid: {list(FLEET_ROUTING_STRATEGIES)}"
            )
        if self.sink is not None and self.sink < 0:
            raise ProtocolError(f"sink must be >= 0, got {self.sink!r}")
        if self.max_path_loss is not None and not (
            0.0 < self.max_path_loss < 1.0
        ):
            raise ProtocolError(
                f"max_path_loss must be in (0, 1), got {self.max_path_loss!r}"
            )

    @property
    def n_nodes(self) -> int:
        """Node count implied by the edge endpoints."""
        return max(max(edge) for edge in self.edges) + 1


@dataclass(frozen=True)
class FleetRecommendRequest:
    """Ask for the best configuration of *every* link in one batch.

    All links share one objective and one constraint set (the fleet
    operator's policy); the answer is positional — result ``i`` belongs to
    ``links[i]``. Per-link infeasibility is reported in-band rather than
    failing the batch. An optional ``routing`` block (edges parallel to
    the links) additionally asks for end-to-end path composition over
    the recommended configurations.
    """

    links: Tuple[LinkSpec, ...]
    objective: str = "energy"
    constraints: Tuple[Constraint, ...] = ()
    routing: Optional[RoutingSpec] = None

    def __post_init__(self) -> None:
        if not self.links:
            raise ProtocolError("a fleet request needs at least one link")
        if len(self.links) > MAX_FLEET_LINKS:
            raise ProtocolError(
                f"a fleet request carries at most {MAX_FLEET_LINKS} links, "
                f"got {len(self.links)}"
            )
        if self.objective not in OBJECTIVES:
            raise ProtocolError(
                f"unknown objective {self.objective!r}; valid: {list(OBJECTIVES)}"
            )
        for constraint in self.constraints:
            if constraint.objective not in OBJECTIVES:
                raise ProtocolError(
                    f"unknown constraint objective {constraint.objective!r}; "
                    f"valid: {list(OBJECTIVES)}"
                )
        if self.routing is not None and len(self.routing.edges) != len(
            self.links
        ):
            raise ProtocolError(
                f"routing edges must run parallel to links: got "
                f"{len(self.routing.edges)} edges for {len(self.links)} links"
            )


@dataclass(frozen=True)
class TelemetryRequest:
    """One uplink batch for the ingest tier, binary or JSON.

    Exactly one of the two carriers is populated: ``frames`` holds raw
    concatenated wire frames (the version byte is in-band), ``uplinks``
    holds decoded-JSON field mappings that ``template_version`` names the
    template for. The ingestor re-encodes JSON uplinks through the wire
    codec before applying them, so both carriers quantize identically.
    """

    frames: Optional[bytes] = None
    uplinks: Optional[Tuple[Mapping[str, object], ...]] = None
    template_version: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.frames is None) == (self.uplinks is None):
            raise ProtocolError(
                "a telemetry request needs exactly one of binary frames "
                "or JSON uplinks"
            )
        if self.frames is not None and not self.frames:
            raise ProtocolError(
                "telemetry frames must be non-empty", field="payload"
            )
        if self.uplinks is not None:
            if self.template_version is None:
                raise ProtocolError(
                    "JSON telemetry needs a template_version",
                    field="template_version",
                )
            if not self.uplinks:
                raise ProtocolError(
                    "telemetry uplinks must be non-empty", field="uplinks"
                )
            if len(self.uplinks) > MAX_TELEMETRY_UPLINKS:
                raise ProtocolError(
                    f"a telemetry batch carries at most "
                    f"{MAX_TELEMETRY_UPLINKS} uplinks, got {len(self.uplinks)}",
                    field="uplinks",
                )


@dataclass(frozen=True)
class EvaluateRequest:
    """Ask for the model metrics of one explicit configuration on a link."""

    config: StackConfig
    link: LinkSpec

    @classmethod
    def for_config(
        cls, config: StackConfig, link: Optional[LinkSpec] = None
    ) -> "EvaluateRequest":
        """Default the link to the configuration's own distance."""
        return cls(
            config=config,
            link=link or LinkSpec(distance_m=config.distance_m),
        )


def _require_mapping(data: object, what: str) -> Mapping[str, object]:
    if not isinstance(data, Mapping):
        raise ProtocolError(f"{what} must be a JSON object, got {type(data).__name__}")
    return data


def _reject_unknown(data: Mapping[str, object], known: Tuple[str, ...], what: str) -> None:
    unknown = set(data) - set(known)
    if unknown:
        raise ProtocolError(f"unknown {what} fields: {sorted(unknown)}")


def _parse_number(data: Mapping[str, object], field: str) -> Optional[float]:
    value = data.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"{field} must be a number, got {value!r}", field=field
        )
    return float(value)


def parse_link(data: object) -> LinkSpec:
    """Build a :class:`LinkSpec` from a request's ``link`` object."""
    mapping = _require_mapping(data, "link")
    _reject_unknown(mapping, ("distance_m", "snr_db", "reference_level"), "link")
    reference = mapping.get("reference_level", 31)
    if isinstance(reference, bool) or not isinstance(reference, int):
        raise ProtocolError(f"reference_level must be an integer, got {reference!r}")
    return LinkSpec(
        distance_m=_parse_number(mapping, "distance_m"),
        snr_db=_parse_number(mapping, "snr_db"),
        reference_level=reference,
    )


def _parse_constraints(data: object) -> Tuple[Constraint, ...]:
    if not isinstance(data, (list, tuple)):
        raise ProtocolError("constraints must be a JSON array")
    constraints = []
    for item in data:
        mapping = _require_mapping(item, "constraint")
        _reject_unknown(mapping, ("objective", "max"), "constraint")
        objective = mapping.get("objective")
        if not isinstance(objective, str):
            raise ProtocolError(f"constraint objective must be a string, got {objective!r}")
        bound = _parse_number(mapping, "max")
        if bound is None:
            raise ProtocolError(f"constraint on {objective!r} is missing its 'max' bound")
        constraints.append(Constraint(objective=objective, upper_bound=bound))
    return tuple(constraints)


def parse_recommend(data: object) -> RecommendRequest:
    """Validate and build a recommend request from decoded JSON."""
    mapping = _require_mapping(data, "recommend request")
    _reject_unknown(mapping, ("link", "objective", "constraints"), "recommend")
    if "link" not in mapping:
        raise ProtocolError("recommend request is missing its 'link' object")
    objective = mapping.get("objective", "energy")
    if not isinstance(objective, str):
        raise ProtocolError(f"objective must be a string, got {objective!r}")
    return RecommendRequest(
        link=parse_link(mapping["link"]),
        objective=objective,
        constraints=_parse_constraints(mapping.get("constraints", ())),
    )


def parse_routing(data: object) -> RoutingSpec:
    """Build a :class:`RoutingSpec` from a request's ``routing`` object."""
    mapping = _require_mapping(data, "routing")
    _reject_unknown(
        mapping,
        ("edges", "sink", "strategy", "max_path_loss", "include_paths"),
        "routing",
    )
    if "edges" not in mapping:
        raise ProtocolError("routing block is missing its 'edges' array")
    edges = mapping["edges"]
    if not isinstance(edges, (list, tuple)):
        raise ProtocolError("routing edges must be a JSON array")
    parsed_edges = []
    for index, edge in enumerate(edges):
        if not isinstance(edge, (list, tuple)):
            raise ProtocolError(
                f"routing edge {index} must be a [node, node] pair, "
                f"got {edge!r}"
            )
        parsed_edges.append(tuple(edge))
    sink = mapping.get("sink")
    if sink is not None and (
        isinstance(sink, bool) or not isinstance(sink, int)
    ):
        raise ProtocolError(f"sink must be an integer, got {sink!r}")
    strategy = mapping.get("strategy", "tree")
    if not isinstance(strategy, str):
        raise ProtocolError(f"strategy must be a string, got {strategy!r}")
    include_paths = mapping.get("include_paths", False)
    if not isinstance(include_paths, bool):
        raise ProtocolError(
            f"include_paths must be a boolean, got {include_paths!r}"
        )
    return RoutingSpec(
        edges=tuple(parsed_edges),
        sink=sink,
        strategy=strategy,
        max_path_loss=_parse_number(mapping, "max_path_loss"),
        include_paths=include_paths,
    )


def parse_fleet_recommend(data: object) -> FleetRecommendRequest:
    """Validate and build a fleet recommend request from decoded JSON."""
    mapping = _require_mapping(data, "fleet recommend request")
    _reject_unknown(
        mapping,
        ("links", "objective", "constraints", "routing"),
        "fleet recommend",
    )
    if "links" not in mapping:
        raise ProtocolError(
            "fleet recommend request is missing its 'links' array"
        )
    links = mapping["links"]
    if not isinstance(links, (list, tuple)):
        raise ProtocolError("links must be a JSON array")
    objective = mapping.get("objective", "energy")
    if not isinstance(objective, str):
        raise ProtocolError(f"objective must be a string, got {objective!r}")
    routing = mapping.get("routing")
    return FleetRecommendRequest(
        links=tuple(parse_link(link) for link in links),
        objective=objective,
        constraints=_parse_constraints(mapping.get("constraints", ())),
        routing=parse_routing(routing) if routing is not None else None,
    )


def parse_evaluate(data: object) -> EvaluateRequest:
    """Validate and build an evaluate request from decoded JSON."""
    mapping = _require_mapping(data, "evaluate request")
    _reject_unknown(mapping, ("config", "link"), "evaluate")
    if "config" not in mapping:
        raise ProtocolError("evaluate request is missing its 'config' object")
    config_data = _require_mapping(mapping["config"], "config")
    try:
        config = StackConfig.from_dict(config_data)
    except (ConfigurationError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad config: {exc}") from exc
    link = parse_link(mapping["link"]) if "link" in mapping else None
    return EvaluateRequest.for_config(config, link)


def parse_telemetry(data: object) -> TelemetryRequest:
    """Validate and build a JSON telemetry request from decoded JSON.

    (Binary batches never pass through here — the HTTP layer wraps raw
    ``application/octet-stream`` bodies in a :class:`TelemetryRequest`
    directly; the version byte travels in-band.)
    """
    mapping = _require_mapping(data, "telemetry request")
    _reject_unknown(mapping, ("template_version", "uplinks"), "telemetry")
    version = mapping.get("template_version")
    if isinstance(version, bool) or not isinstance(version, int):
        raise ProtocolError(
            f"template_version must be an integer, got {version!r}",
            field="template_version",
        )
    uplinks = mapping.get("uplinks")
    if not isinstance(uplinks, (list, tuple)):
        raise ProtocolError(
            "uplinks must be a JSON array", field="uplinks"
        )
    parsed = []
    for index, uplink in enumerate(uplinks):
        entry = _require_mapping(uplink, f"uplink {index}")
        for name, value in entry.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ProtocolError(
                    f"uplink {index} field {name!r} must be a number, "
                    f"got {value!r}",
                    field=name,
                )
        parsed.append(dict(entry))
    return TelemetryRequest(
        uplinks=tuple(parsed), template_version=version
    )


def evaluation_as_dict(evaluation: ConfigEvaluation) -> Dict[str, object]:
    """JSON-ready view of one model evaluation (config + all metrics)."""
    return {
        "config": evaluation.config.as_dict(),
        "snr_db": evaluation.snr_db,
        "max_goodput_kbps": evaluation.max_goodput_kbps,
        "u_eng_uj_per_bit": evaluation.u_eng_uj_per_bit,
        "delay_ms": evaluation.delay_ms,
        "rho": evaluation.rho,
        "plr_radio": evaluation.plr_radio,
        "plr_queue": evaluation.plr_queue,
        "plr_total": evaluation.plr_total,
    }
