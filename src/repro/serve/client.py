"""In-process client: the HTTP API without the socket.

Tests and benchmarks talk to the service through this class so they
exercise the exact parse → queue → batch → solve path the HTTP handler
uses, minus serialization and TCP. Inputs and outputs are plain dicts
shaped like the wire JSON (``docs/SERVING.md``), so a payload that works
here works verbatim against ``POST /v1/recommend``.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..core.optimization import ConfigEvaluation
from ..errors import ProtocolError
from .oracle import FleetRecommendResult, RecommendResult
from .protocol import (
    TelemetryRequest,
    evaluation_as_dict,
    parse_evaluate,
    parse_fleet_recommend,
    parse_recommend,
    parse_telemetry,
)
from .service import OracleService

__all__ = [
    "Client",
]


class Client:
    """Dict-in / dict-out facade over an :class:`OracleService`."""

    def __init__(self, service: OracleService) -> None:
        self.service = service

    def recommend(
        self, payload: Dict[str, object], timeout_s: Optional[float] = None
    ) -> Dict[str, object]:
        """Answer a ``/v1/recommend``-shaped payload.

        Raises the same :class:`~repro.errors.ServeError` family the HTTP
        layer maps to status codes (400/409/503/504).
        """
        request = parse_recommend(payload)
        result = self.service.call(request, timeout_s=timeout_s)
        assert isinstance(result, RecommendResult)
        return {
            "recommendation": evaluation_as_dict(result.evaluation),
            "objective": request.objective,
            "cache": result.cache_tier,
        }

    def recommend_fleet(
        self, payload: Dict[str, object], timeout_s: Optional[float] = None
    ) -> Dict[str, object]:
        """Answer a ``/v1/fleet/recommend``-shaped payload.

        The response is positional: ``results[i]`` answers ``links[i]``,
        carrying either a ``recommendation`` (plus the cache tier that
        supplied it) or an in-band infeasibility ``error``. Errors other
        than per-link infeasibility raise, exactly like :meth:`recommend`.
        """
        request = parse_fleet_recommend(payload)
        result = self.service.call(request, timeout_s=timeout_s)
        assert isinstance(result, FleetRecommendResult)
        results = []
        for evaluation, error, tier in zip(
            result.evaluations, result.errors, result.cache_tiers
        ):
            if error is not None:
                results.append(
                    {"error": {"type": "InfeasibleError", "message": error}}
                )
            else:
                results.append(
                    {
                        "recommendation": evaluation_as_dict(evaluation),
                        "cache": tier,
                    }
                )
        response: Dict[str, object] = {
            "results": results,
            "objective": request.objective,
            "n_links": len(result),
            "n_unique_links": result.n_unique_links,
            "n_infeasible": result.n_infeasible,
            "cache_tiers": result.tier_counts(),
        }
        if result.routing is not None:
            response["routing"] = result.routing.as_dict()
        return response

    def evaluate(
        self, payload: Dict[str, object], timeout_s: Optional[float] = None
    ) -> Dict[str, object]:
        """Answer a ``/v1/evaluate``-shaped payload."""
        request = parse_evaluate(payload)
        evaluation = self.service.call(request, timeout_s=timeout_s)
        assert isinstance(evaluation, ConfigEvaluation)
        return {"evaluation": evaluation_as_dict(evaluation)}

    def telemetry(
        self,
        payload: Union[bytes, bytearray, memoryview, Dict[str, object]],
        timeout_s: Optional[float] = None,
    ) -> Dict[str, object]:
        """Answer a ``/v1/telemetry``-shaped payload.

        ``bytes``-like payloads are treated as raw binary frames (the
        ``application/octet-stream`` path); mappings are parsed as the
        JSON body (``frames`` is not expressible there — JSON clients
        send ``uplinks`` + ``template_version``).
        """
        if isinstance(payload, (bytes, bytearray, memoryview)):
            request = TelemetryRequest(frames=bytes(payload))
        else:
            request = parse_telemetry(payload)
        report = self.service.call(request, timeout_s=timeout_s)
        return {"report": report.as_dict()}

    def telemetry_state(self) -> Dict[str, object]:
        """The measured-fleet snapshot ``GET /v1/telemetry/state`` serves."""
        ingestor = self.service.ingestor
        if ingestor is None:
            raise ProtocolError(
                "telemetry ingestion is not enabled on this service"
            )
        return ingestor.state_snapshot()

    def healthz(self) -> Dict[str, object]:
        """The health snapshot ``GET /healthz`` serves."""
        service = self.service
        return {
            "status": "closed" if service.closed else "ok",
            "queue_depth": service.queue_depth(),
            "queue_capacity": service.queue_capacity,
            "cache": service.oracle.cache_info(),
        }

    def metrics(self) -> Dict[str, object]:
        """The counters/histograms snapshot ``GET /metrics`` serves.

        The oracle's policy-tier counters are merged in as ``policy_*``
        counters (plus the full ``policy`` block with the bin-hit rate),
        so one scrape shows whether the hot path is actually lookup-bound.
        """
        data = self.service.metrics.as_dict()
        policy = self.service.oracle.policy_info()
        counters = dict(data.get("counters", {}))
        counters.update(
            {
                "policy_lookups_total": policy["lookups"],
                "policy_fallbacks_total": policy["fallbacks"],
                "policy_compiles_total": policy["compiles"],
                "policy_solver_solves_total": policy["solver_solves"],
                "policy_table_bytes": policy["table_bytes"],
                "policy_bin_lookups_total": policy["bin_lookups"],
                "policy_bin_hits_total": policy["bin_hits"],
            }
        )
        data["counters"] = dict(sorted(counters.items()))
        data["policy"] = policy
        return data
