"""Service metrics: thread-safe counters and latency histograms.

Everything the ``/metrics`` endpoint reports lives here. Latencies are
recorded into fixed-bucket histograms (Prometheus-style ``le`` upper
bounds) so percentile estimates are O(buckets) and the memory footprint is
constant regardless of traffic. All timing uses ``time.monotonic`` —
wall-clock reads are banned repo-wide by the determinism lint, and a
monotonic clock is what you want for durations anyway.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

from ..errors import ServeError

__all__ = [
    "DEFAULT_BUCKETS_S",
    "LatencyHistogram",
    "ServiceMetrics",
]

#: Default histogram bucket upper bounds in seconds: sub-millisecond warm
#: cache hits through multi-second cold grid evaluations.
DEFAULT_BUCKETS_S: Tuple[float, ...] = (
    0.0002,
    0.0005,
    0.001,
    0.002,
    0.005,
    0.01,
    0.02,
    0.05,
    0.1,
    0.2,
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram over seconds, with percentile estimation."""

    def __init__(self, buckets_s: Sequence[float] = DEFAULT_BUCKETS_S) -> None:
        bounds = tuple(sorted(float(b) for b in buckets_s))
        if not bounds or any(b <= 0 for b in bounds):
            raise ServeError("histogram buckets must be positive and non-empty")
        self._bounds = bounds
        # one extra bucket counts observations above the last bound (+inf)
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        value = float(seconds)
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Number of observations recorded so far."""
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (0 < q < 1) by bucket interpolation.

        Returns 0.0 when empty. Values in the overflow bucket are reported
        as the last finite bound (an underestimate, flagged in SERVING.md).
        """
        if not 0.0 < q < 1.0:
            raise ServeError(f"percentile q must be in (0, 1), got {q!r}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if i >= len(self._bounds):
                    return self._bounds[-1]
                lower = self._bounds[i - 1] if i > 0 else 0.0
                upper = self._bounds[i]
                if bucket_count == 0:
                    return upper
                fraction = (rank - previous) / bucket_count
                return lower + fraction * (upper - lower)
        return self._bounds[-1]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view: bucket counts, count/sum, p50/p90/p99."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
        buckets = [
            {"le_s": bound, "count": counts[i]}
            for i, bound in enumerate(self._bounds)
        ]
        buckets.append({"le_s": "inf", "count": counts[-1]})
        summary: Dict[str, object] = {
            "count": total,
            "sum_s": total_sum,
            "mean_s": (total_sum / total) if total else 0.0,
            "buckets": buckets,
        }
        for label, q in (("p50_s", 0.5), ("p90_s", 0.9), ("p99_s", 0.99)):
            summary[label] = self.percentile(q)
        return summary


class ServiceMetrics:
    """All counters and histograms of one service instance.

    Counters are created on first increment, so layers can record what
    they know (`http.requests_total`, `queue.rejected_total`,
    `batch.coalesced_total`, ...) without a central registry. The
    catalogue of names the built-in layers emit is documented in
    ``docs/SERVING.md``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the named counter (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(by)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> LatencyHistogram:
        """The named histogram, created with default buckets on first use."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = LatencyHistogram()
                self._histograms[name] = histogram
            return histogram

    def observe(self, name: str, seconds: float) -> None:
        """Record a latency into the named histogram."""
        self.histogram(name).observe(seconds)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every counter and histogram."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            histograms: List[Tuple[str, LatencyHistogram]] = sorted(
                self._histograms.items()
            )
        return {
            "counters": counters,
            "latency": {name: h.as_dict() for name, h in histograms},
        }
