"""Service metrics: thread-safe counters and latency histograms.

Everything the ``/metrics`` endpoint reports lives here. Latencies are
recorded into fixed-bucket histograms (Prometheus-style ``le`` upper
bounds) so percentile estimates are O(buckets) and the memory footprint is
constant regardless of traffic. All timing uses ``time.monotonic`` —
wall-clock reads are banned repo-wide by the determinism lint, and a
monotonic clock is what you want for durations anyway.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

from ..errors import ServeError

__all__ = [
    "DEFAULT_BUCKETS_S",
    "DEFAULT_BUCKETS_MS",
    "DEFAULT_BUCKETS_COUNT",
    "LatencyHistogram",
    "ServiceMetrics",
]

#: Default histogram bucket upper bounds in seconds: sub-millisecond warm
#: cache hits through multi-second cold grid evaluations.
DEFAULT_BUCKETS_S: Tuple[float, ...] = (
    0.0002,
    0.0005,
    0.001,
    0.002,
    0.005,
    0.01,
    0.02,
    0.05,
    0.1,
    0.2,
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
)

#: Bucket bounds for millisecond-unit histograms (``unit="ms"``): single-
#: digit-ms columnar grid evaluations through multi-second scalar fallbacks.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
    2000.0,
    5000.0,
)

#: Bucket bounds for size histograms (``unit="count"``): single-link fleet
#: batches through the 10,000-link protocol maximum.
DEFAULT_BUCKETS_COUNT: Tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
    2000.0,
    5000.0,
    10000.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram with percentile estimation.

    Observations, bucket bounds and every reported statistic share one
    unit — seconds by default, or whatever ``unit`` names (the
    ``le_s`` / ``sum_s`` / ``p50_s`` key suffixes in :meth:`as_dict`
    follow it, e.g. ``le_ms`` for a millisecond histogram). The
    dimensionless ``count`` unit turns the same machinery into a *size*
    histogram (fleet batch sizes in ``/metrics``).
    """

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS_S,
        unit: str = "s",
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(b <= 0 for b in bounds):
            raise ServeError("histogram buckets must be positive and non-empty")
        if unit not in ("s", "ms", "us", "count"):
            raise ServeError(f"unsupported histogram unit {unit!r}")
        self._bounds = bounds
        self._unit = unit
        # one extra bucket counts observations above the last bound (+inf)
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def unit(self) -> str:
        """The time unit every observation and statistic is expressed in."""
        return self._unit

    def observe(self, value_in_unit: float) -> None:
        """Record one latency observation (in this histogram's unit)."""
        value = float(value_in_unit)
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Number of observations recorded so far."""
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (0 < q < 1) by bucket interpolation.

        Returns 0.0 when empty. Values in the overflow bucket are reported
        as the last finite bound (an underestimate, flagged in SERVING.md).
        """
        if not 0.0 < q < 1.0:
            raise ServeError(f"percentile q must be in (0, 1), got {q!r}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if i >= len(self._bounds):
                    return self._bounds[-1]
                lower = self._bounds[i - 1] if i > 0 else 0.0
                upper = self._bounds[i]
                if bucket_count == 0:
                    return upper
                fraction = (rank - previous) / bucket_count
                return lower + fraction * (upper - lower)
        return self._bounds[-1]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view: bucket counts, count/sum, p50/p90/p99.

        Key suffixes follow the histogram's unit (``sum_s`` / ``p50_s``
        for seconds, ``sum_ms`` / ``p50_ms`` for milliseconds, ...).
        """
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
        unit = self._unit
        buckets = [
            {f"le_{unit}": bound, "count": counts[i]}
            for i, bound in enumerate(self._bounds)
        ]
        buckets.append({f"le_{unit}": "inf", "count": counts[-1]})
        summary: Dict[str, object] = {
            "count": total,
            f"sum_{unit}": total_sum,
            f"mean_{unit}": (total_sum / total) if total else 0.0,
            "buckets": buckets,
        }
        for label, q in (
            (f"p50_{unit}", 0.5),
            (f"p90_{unit}", 0.9),
            (f"p99_{unit}", 0.99),
        ):
            summary[label] = self.percentile(q)
        return summary


class ServiceMetrics:
    """All counters and histograms of one service instance.

    Counters are created on first increment, so layers can record what
    they know (`http.requests_total`, `queue.rejected_total`,
    `batch.coalesced_total`, ...) without a central registry. The
    catalogue of names the built-in layers emit is documented in
    ``docs/SERVING.md``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the named counter (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(by)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> LatencyHistogram:
        """The named histogram, created with default buckets on first use."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = LatencyHistogram()
                self._histograms[name] = histogram
            return histogram

    def register_histogram(
        self, name: str, histogram: LatencyHistogram
    ) -> LatencyHistogram:
        """Expose an externally-owned histogram under ``name``.

        Lets a component that already records its own latencies (e.g. the
        oracle's ``grid_eval_ms``) surface them through ``/metrics``
        without double bookkeeping. Re-registering the same object is a
        no-op; registering a different histogram under an existing name
        raises.
        """
        with self._lock:
            existing = self._histograms.get(name)
            if existing is histogram:
                return histogram
            if existing is not None:
                raise ServeError(
                    f"histogram {name!r} is already registered"
                )
            self._histograms[name] = histogram
            return histogram

    def observe(self, name: str, seconds: float) -> None:
        """Record a latency into the named histogram."""
        self.histogram(name).observe(seconds)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every counter and histogram."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            histograms: List[Tuple[str, LatencyHistogram]] = sorted(
                self._histograms.items()
            )
        return {
            "counters": counters,
            "latency": {name: h.as_dict() for name, h in histograms},
        }
