"""Link-configuration oracle service (serving layer over the models).

Turns the empirical models and joint optimizer into an online,
queryable system: given a link (distance or reference SNR), an objective,
and constraints, the oracle returns the best stack configuration — cached,
batched, and backpressured. Layering, top to bottom::

    http      stdlib JSON API (POST /v1/recommend, /v1/fleet/recommend,
              /v1/evaluate, /v1/telemetry, GET /v1/telemetry/state,
              /healthz, /metrics) — repro.serve.http
    client    in-process dict-in/dict-out facade — repro.serve.client
    service   bounded queue, micro-batching, worker pool, deadlines —
              repro.serve.service
    oracle    two-tier sweep-table cache + vectorized solves —
              repro.serve.oracle / repro.serve.cache
    models    repro.core.optimization (unchanged)

Start one with ``wsnlink serve --port 8080`` or in-process::

    from repro.serve import Client, Oracle, OracleService

    oracle = Oracle()
    oracle.precompute([10.0])          # tier-1 table for the 10 m link
    with OracleService(oracle) as service:
        client = Client(service)
        answer = client.recommend({"link": {"distance_m": 10.0},
                                   "objective": "energy"})
"""

from .cache import CacheStats, LruCache
from .client import Client
from .http import OracleHTTPServer, OracleRequestHandler, make_server
from .metrics import (
    DEFAULT_BUCKETS_COUNT,
    DEFAULT_BUCKETS_S,
    LatencyHistogram,
    ServiceMetrics,
)
from .oracle import (
    FleetRecommendResult,
    FleetRoutingSummary,
    Oracle,
    RecommendResult,
    SweepTable,
    TIER_LRU,
    TIER_MISS,
    TIER_POLICY,
    TIER_PRECOMPUTED,
)
from .protocol import (
    FLEET_ROUTING_STRATEGIES,
    MAX_FLEET_LINKS,
    MAX_TELEMETRY_UPLINKS,
    OBJECTIVES,
    EvaluateRequest,
    FleetRecommendRequest,
    LinkSpec,
    RecommendRequest,
    RoutingSpec,
    TelemetryRequest,
    evaluation_as_dict,
    parse_evaluate,
    parse_fleet_recommend,
    parse_recommend,
    parse_routing,
    parse_telemetry,
)
from .service import OracleService

__all__ = [
    "CacheStats",
    "Client",
    "DEFAULT_BUCKETS_COUNT",
    "DEFAULT_BUCKETS_S",
    "EvaluateRequest",
    "FLEET_ROUTING_STRATEGIES",
    "FleetRecommendRequest",
    "FleetRecommendResult",
    "FleetRoutingSummary",
    "LatencyHistogram",
    "LinkSpec",
    "LruCache",
    "MAX_FLEET_LINKS",
    "MAX_TELEMETRY_UPLINKS",
    "OBJECTIVES",
    "Oracle",
    "OracleHTTPServer",
    "OracleRequestHandler",
    "OracleService",
    "RecommendRequest",
    "RecommendResult",
    "RoutingSpec",
    "ServiceMetrics",
    "SweepTable",
    "TIER_LRU",
    "TelemetryRequest",
    "TIER_MISS",
    "TIER_POLICY",
    "TIER_PRECOMPUTED",
    "evaluation_as_dict",
    "make_server",
    "parse_evaluate",
    "parse_fleet_recommend",
    "parse_recommend",
    "parse_routing",
    "parse_telemetry",
]
