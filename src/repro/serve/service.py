"""Request execution: bounded queue, micro-batching, workers, deadlines.

The oracle is CPU-bound (a cold link costs one full grid evaluation), so
admission control has to be explicit: the service holds a *bounded* work
queue and rejects submissions with :class:`~repro.errors.OverloadError`
(carrying a retry-after hint) the moment it is full, instead of letting
latency grow without bound. Accepted requests carry a deadline; a worker
that pops an already-expired request rejects it without doing the work,
and a caller whose wait runs out gets :class:`ServiceTimeoutError` even if
a worker finishes later.

Micro-batching: when a worker pops a ``recommend`` request it also pulls
every other queued ``recommend`` for the *same link* (same cache key), up
to ``max_batch``. The batch shares one sweep-table fetch — one grid
evaluation on a cold link — and each request is then answered by its own
vectorized solve. This is what turns a thundering herd of identical cold
queries into a single model-evaluation pass.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Union

from ..errors import (
    OverloadError,
    ProtocolError,
    ReproError,
    ServeError,
    ServiceTimeoutError,
)
from .metrics import (
    DEFAULT_BUCKETS_COUNT,
    DEFAULT_BUCKETS_MS,
    LatencyHistogram,
    ServiceMetrics,
)
from .oracle import Oracle, RecommendResult
from .protocol import (
    EvaluateRequest,
    FleetRecommendRequest,
    RecommendRequest,
    TelemetryRequest,
)

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, types only
    from ..telemetry.ingest import TelemetryIngestor

__all__ = [
    "OracleService",
]

_Request = Union[
    RecommendRequest, EvaluateRequest, FleetRecommendRequest, TelemetryRequest
]

#: Upper bound on one idle wait in the worker loop. Purely a liveness
#: backstop: ``close()`` notifies the condition, so shutdown is normally
#: immediate — but an unbounded wait would sleep through a missed wakeup
#: forever, and the re-checking while loop makes periodic wakeups free.
_WORKER_WAKE_INTERVAL_S = 1.0


class _Pending:
    """One in-flight request: deadline, completion event, single outcome."""

    __slots__ = (
        "request",
        "deadline_s",
        "enqueued_at_s",
        "_event",
        "_lock",
        "_value",
        "_error",
        "_done",
    )

    def __init__(self, request: _Request, deadline_s: float, now_s: float) -> None:
        self.request = request
        self.deadline_s = deadline_s
        self.enqueued_at_s = now_s
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._value: object = None
        self._error: Optional[BaseException] = None
        self._done = False

    def resolve(self, value: object) -> bool:
        """Complete successfully; False if an outcome was already set."""
        with self._lock:
            if self._done:
                return False
            self._value = value
            self._done = True
        self._event.set()
        return True

    def reject(self, error: BaseException) -> bool:
        """Complete with an error; False if an outcome was already set."""
        with self._lock:
            if self._done:
                return False
            self._error = error
            self._done = True
        self._event.set()
        return True

    def wait(self, timeout_s: float) -> bool:
        """Block until an outcome is set or the timeout elapses."""
        return self._event.wait(timeout_s)

    def outcome(self) -> object:
        """The resolved value, or raise the rejection error."""
        with self._lock:
            error = self._error
            value = self._value
        if error is not None:
            raise error
        return value


class OracleService:
    """Thread-pooled, batching, backpressured front of an :class:`Oracle`.

    Capacity knobs (see ``docs/SERVING.md`` for tuning guidance):

    ``queue_capacity``
        Upper bound on requests admitted but not yet being worked on; the
        overflow policy is reject-with-retry-after, never block.
    ``workers``
        Worker threads executing (batched) oracle calls.
    ``max_batch``
        Most requests one worker will coalesce into a single table fetch.
    ``default_timeout_s``
        Deadline given to requests that do not name their own.
    ``retry_after_s``
        Back-off hint carried by :class:`OverloadError` rejections.

    ``ingestor`` (a :class:`~repro.telemetry.ingest.TelemetryIngestor`,
    duck-typed so the serve layer never imports telemetry) enables
    ``POST /v1/telemetry``: uplink batches flow through the same bounded
    queue and worker pool as every other request, which is exactly what
    gives telemetry its reject-with-``Retry-After`` backpressure.
    """

    def __init__(
        self,
        oracle: Oracle,
        queue_capacity: int = 128,
        workers: int = 2,
        max_batch: int = 16,
        default_timeout_s: float = 30.0,
        retry_after_s: float = 1.0,
        metrics: Optional[ServiceMetrics] = None,
        ingestor: Optional["TelemetryIngestor"] = None,
    ) -> None:
        if queue_capacity < 1:
            raise ServeError(
                f"queue_capacity must be >= 1, got {queue_capacity!r}"
            )
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers!r}")
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch!r}")
        if default_timeout_s <= 0:
            raise ServeError(
                f"default_timeout_s must be positive, got {default_timeout_s!r}"
            )
        self.oracle = oracle
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        # Surface the oracle's cold-path build cost in /metrics: the
        # oracle owns and records the histograms, the service publishes them.
        self.metrics.register_histogram("grid_eval_ms", oracle.grid_eval_ms)
        self.metrics.register_histogram(
            "policy_compile_ms", oracle.policy_compile_ms
        )
        # Fleet batch observability: how many links per batch, how many of
        # them were infeasible, and how long the batched solve took.
        self.metrics.register_histogram(
            "fleet_batch_links",
            LatencyHistogram(DEFAULT_BUCKETS_COUNT, unit="count"),
        )
        self.metrics.register_histogram(
            "fleet_infeasible_links",
            LatencyHistogram(DEFAULT_BUCKETS_COUNT, unit="count"),
        )
        self.metrics.register_histogram(
            "fleet_solve_ms",
            LatencyHistogram(DEFAULT_BUCKETS_MS, unit="ms"),
        )
        self.ingestor = ingestor
        if ingestor is not None:
            self.metrics.register_histogram(
                "telemetry_batch_uplinks",
                LatencyHistogram(DEFAULT_BUCKETS_COUNT, unit="count"),
            )
            self.metrics.register_histogram(
                "telemetry_decode_ms",
                LatencyHistogram(DEFAULT_BUCKETS_MS, unit="ms"),
            )
            self.metrics.register_histogram(
                "telemetry_ingest_ms",
                LatencyHistogram(DEFAULT_BUCKETS_MS, unit="ms"),
            )
        self._queue_capacity = int(queue_capacity)
        self._max_batch = int(max_batch)
        self._default_timeout_s = float(default_timeout_s)
        self._retry_after_s = float(retry_after_s)
        self._queue: Deque[_Pending] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"oracle-worker-{i}", daemon=True
            )
            for i in range(int(workers))
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------ admission

    def submit(
        self, request: _Request, timeout_s: Optional[float] = None
    ) -> _Pending:
        """Admit a request, or reject immediately with backpressure.

        Raises :class:`OverloadError` when the queue is full and
        :class:`ServeError` when the service is closed. The returned
        handle's outcome is produced by a worker thread.
        """
        now = time.monotonic()
        deadline = now + (
            self._default_timeout_s if timeout_s is None else float(timeout_s)
        )
        pending = _Pending(request, deadline_s=deadline, now_s=now)
        with self._not_empty:
            if self._closed:
                raise ServeError("service is closed")
            if len(self._queue) >= self._queue_capacity:
                self.metrics.increment("queue_rejected_total")
                raise OverloadError(
                    f"work queue full ({self._queue_capacity} requests); "
                    f"retry after {self._retry_after_s:g} s",
                    retry_after_s=self._retry_after_s,
                )
            self._queue.append(pending)
            self.metrics.increment("requests_submitted_total")
            self._not_empty.notify()
        return pending

    def call(self, request: _Request, timeout_s: Optional[float] = None) -> object:
        """Submit and block for the outcome (the in-process entry point).

        Returns a :class:`~repro.serve.oracle.RecommendResult` for
        recommend requests and a
        :class:`~repro.core.optimization.ConfigEvaluation` for evaluate
        requests.
        """
        pending = self.submit(request, timeout_s=timeout_s)
        remaining = pending.deadline_s - time.monotonic()
        if not pending.wait(max(remaining, 0.0)):
            # The caller's wait expired; try to claim the outcome slot so a
            # late worker result is discarded rather than silently ignored.
            if pending.reject(
                ServiceTimeoutError(
                    f"request missed its deadline after "
                    f"{pending.deadline_s - pending.enqueued_at_s:g} s"
                )
            ):
                self.metrics.increment("requests_timeout_total")
        return pending.outcome()

    # ------------------------------------------------------------ lifecycle

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop accepting work, fail queued requests, join the workers."""
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            abandoned = list(self._queue)
            self._queue.clear()
            self._not_empty.notify_all()
        for pending in abandoned:
            if pending.reject(ServeError("service closed before execution")):
                self.metrics.increment("requests_failed_total")
        for thread in self._workers:
            thread.join(timeout=timeout_s)

    def __enter__(self) -> "OracleService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ observers

    def queue_depth(self) -> int:
        """Requests admitted but not yet picked up by a worker."""
        with self._lock:
            return len(self._queue)

    @property
    def queue_capacity(self) -> int:
        """The admission bound (requests beyond it are rejected)."""
        return self._queue_capacity

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun."""
        with self._lock:
            return self._closed

    # ------------------------------------------------------------ workers

    def _take_batch(self) -> Optional[List[_Pending]]:
        """Pop the head request plus every coalescible follower.

        Blocks until work arrives; returns None on shutdown. Only
        ``recommend`` requests for the same link key batch together —
        ``evaluate`` requests are microsecond-cheap and run alone.
        """
        with self._not_empty:
            while not self._queue and not self._closed:
                self._not_empty.wait(timeout=_WORKER_WAKE_INTERVAL_S)
            if not self._queue:
                return None
            head = self._queue.popleft()
            batch = [head]
            if isinstance(head.request, RecommendRequest):
                key = head.request.link.key()
                kept: Deque[_Pending] = deque()
                while self._queue and len(batch) < self._max_batch:
                    candidate = self._queue.popleft()
                    if (
                        isinstance(candidate.request, RecommendRequest)
                        and candidate.request.link.key() == key
                    ):
                        batch.append(candidate)
                    else:
                        kept.append(candidate)
                kept.extend(self._queue)
                self._queue.clear()
                self._queue.extend(kept)
            return batch

    def _split_expired(self, batch: List[_Pending]) -> List[_Pending]:
        """Reject already-expired members; return the live remainder."""
        now = time.monotonic()
        live = []
        for pending in batch:
            if pending.deadline_s <= now:
                if pending.reject(
                    ServiceTimeoutError(
                        "request expired in the queue before execution"
                    )
                ):
                    self.metrics.increment("requests_timeout_total")
            else:
                live.append(pending)
        return live

    def _finish(self, pending: _Pending, value: object) -> None:
        if pending.resolve(value):
            self.metrics.increment("requests_completed_total")
            self.metrics.observe(
                "request_total_s", time.monotonic() - pending.enqueued_at_s
            )

    def _fail(self, pending: _Pending, error: BaseException) -> None:
        if pending.reject(error):
            self.metrics.increment("requests_failed_total")

    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            live = self._split_expired(batch)
            if not live:
                continue
            self.metrics.increment("batches_total")
            self.metrics.increment("batched_requests_total", by=len(live))
            if len(live) > 1:
                self.metrics.increment("coalesced_requests_total", by=len(live) - 1)
            head = live[0].request
            if isinstance(head, RecommendRequest):
                self._run_recommend_batch(live)
            elif isinstance(head, FleetRecommendRequest):
                self._run_fleet(live[0])
            elif isinstance(head, TelemetryRequest):
                self._run_telemetry(live[0])
            else:
                self._run_evaluate(live[0])

    def _run_recommend_batch(self, batch: List[_Pending]) -> None:
        # Policy-first: members the precompiled tables can answer never
        # touch the sweep-table cache or the solver; only the remainder
        # (non-default bounds, off-axis SNRs, policy disabled) pays the
        # shared table fetch + per-request solve.
        rest: List[_Pending] = []
        for pending in batch:
            request = pending.request
            assert isinstance(request, RecommendRequest)
            try:
                result = self.oracle.policy_recommend(request)
            except ReproError as exc:
                self._fail(pending, exc)
                continue
            if result is None:
                rest.append(pending)
                continue
            self.metrics.increment(f"cache_{result.cache_tier}_total")
            self._finish(pending, result)
        if not rest:
            return
        head = rest[0].request
        assert isinstance(head, RecommendRequest)
        try:
            table, tier = self.oracle.table_for(head.link)
        except ReproError as exc:
            for pending in rest:
                self._fail(pending, exc)
            return
        self.metrics.increment(f"cache_{tier}_total")
        for pending in rest:
            request = pending.request
            assert isinstance(request, RecommendRequest)
            try:
                evaluation = self.oracle.recommend_from_table(table, request)
            except ReproError as exc:
                self._fail(pending, exc)
                continue
            self._finish(
                pending, RecommendResult(evaluation=evaluation, cache_tier=tier)
            )

    def _run_fleet(self, pending: _Pending) -> None:
        """Answer one fleet batch (never coalesced: a batch is the batch).

        The oracle groups the batch by distinct link internally; this layer
        only adds accounting — how many links arrived, how many had no
        feasible configuration, which cache tiers answered, and how long
        the whole batched solve took.
        """
        request = pending.request
        assert isinstance(request, FleetRecommendRequest)
        started = time.monotonic()
        try:
            result = self.oracle.recommend_fleet(request)
        except ReproError as exc:
            self._fail(pending, exc)
            return
        self.metrics.increment("fleet_requests_total")
        self.metrics.increment("fleet_links_total", by=len(result))
        self.metrics.increment(
            "fleet_infeasible_total", by=result.n_infeasible
        )
        for tier, count in result.tier_counts().items():
            self.metrics.increment(f"fleet_cache_{tier}_total", by=count)
        if result.routing is not None:
            self.metrics.increment("fleet_routed_requests_total")
            self.metrics.increment(
                "fleet_paths_total", by=result.routing.n_paths
            )
            self.metrics.increment(
                "fleet_paths_infeasible_total",
                by=result.routing.n_paths - result.routing.n_paths_feasible,
            )
        self.metrics.histogram("fleet_batch_links").observe(float(len(result)))
        self.metrics.histogram("fleet_infeasible_links").observe(
            float(result.n_infeasible)
        )
        self.metrics.histogram("fleet_solve_ms").observe(
            (time.monotonic() - started) * 1e3
        )
        self._finish(pending, result)

    def _run_telemetry(self, pending: _Pending) -> None:
        """Ingest one uplink batch and account for what it contained."""
        request = pending.request
        assert isinstance(request, TelemetryRequest)
        if self.ingestor is None:
            self._fail(
                pending,
                ProtocolError(
                    "telemetry ingestion is not enabled on this service"
                ),
            )
            return
        started = time.monotonic()
        try:
            if request.frames is not None:
                report = self.ingestor.ingest(request.frames, now_s=started)
            else:
                report = self.ingestor.ingest_uplinks(
                    request.uplinks, request.template_version, now_s=started
                )
        except ReproError as exc:
            self._fail(pending, exc)
            return
        self.metrics.increment("telemetry_batches_total")
        self.metrics.increment("telemetry_uplinks_total", by=report.n_uplinks)
        self.metrics.increment(
            "telemetry_accepted_total", by=report.n_accepted
        )
        self.metrics.increment(
            "telemetry_duplicate_total", by=report.n_duplicate
        )
        self.metrics.increment(
            "telemetry_out_of_order_total", by=report.n_out_of_order
        )
        self.metrics.increment(
            "telemetry_gap_total", by=report.n_gap_uplinks
        )
        self.metrics.increment(
            "telemetry_epoch_wraps_total", by=report.n_epoch_wraps
        )
        self.metrics.increment(
            "telemetry_unknown_link_total", by=report.n_unknown_link
        )
        self.metrics.histogram("telemetry_batch_uplinks").observe(
            float(report.n_uplinks)
        )
        self.metrics.histogram("telemetry_decode_ms").observe(report.decode_ms)
        self.metrics.histogram("telemetry_ingest_ms").observe(
            (time.monotonic() - started) * 1e3
        )
        self._finish(pending, report)

    def _run_evaluate(self, pending: _Pending) -> None:
        request = pending.request
        assert isinstance(request, EvaluateRequest)
        try:
            evaluation = self.oracle.evaluate(request)
        except ReproError as exc:
            self._fail(pending, exc)
            return
        self._finish(pending, evaluation)
