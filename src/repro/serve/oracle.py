"""The oracle: cached, vectorized answers to link-configuration queries.

A :class:`SweepTable` is one link's entire evaluated tuning grid — a
columnar :class:`~repro.core.optimization.GridEvaluation` produced by the
vectorized kernels, so both the build (one broadcast pass over all
configurations) and the epsilon-constraint solve of a query (a masked
argmin) are numpy operations rather than Python scans. An :class:`Oracle`
answers ``recommend`` and ``evaluate`` requests out of a two-tier table
cache:

* **tier 0 (policy, opt-in)** — precompiled
  :class:`~repro.core.optimization.PolicyTable` answers covering the
  whole SNR axis: a default-bounds recommend becomes an O(1) bin lookup
  that never touches the solver, independent of grid size;
* **tier 1 (precomputed)** — tables for the discretized Table-I distances,
  built once at startup (``precompute``) and never evicted;
* **tier 2 (LRU)** — tables for off-grid links (arbitrary distances,
  reference-SNR links), built on first use and bounded by
  ``lru_capacity``.

A cold query costs one columnar grid evaluation (single-digit
milliseconds for the default 4560 configurations — the ``grid_eval_ms``
histogram in ``/metrics`` tracks the real cost); a warm one costs a
dictionary lookup plus a vectorized argmin (microseconds); a policy hit
costs a handful of array reads. The service layer on top batches
compatible cold queries so the grid evaluation is paid once per link,
not once per request.

With the policy enabled the LRU is demoted to a fallback for requests
the tables cannot serve — non-default constraint bounds and SNRs off the
compiled axis — and reference-SNR cache keys are quantized to the policy
bin, so two requests 0.01 dB apart share one table instead of missing
each other (``bin_hit_rate`` in ``/metrics``). Answers for quantized
links are the bin-center answers: exact at bin centers, and within the
same quantization the fleet engine applies everywhere.
"""

# reprolint: hot-path — recommend/evaluate loop timed by BENCH_serve.json
from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..channel.environment import Environment, HALLWAY_2012
from ..config import TABLE_I_SPACE
from ..errors import InfeasibleError, ProtocolError, RoutingError
from ..core.optimization import (
    DEFAULT_SNR_QUANTUM_DB,
    DEFAULT_SNR_RANGE_DB,
    REFERENCE_LEVEL,
    ConfigEvaluation,
    Constraint,
    GridEvaluation,
    ModelEvaluator,
    PolicyTable,
    TuningGrid,
    evaluate_grid_columns,
    solve_epsilon_constraint,
)
from .cache import CacheStats, LruCache
from .metrics import DEFAULT_BUCKETS_MS, LatencyHistogram
from .protocol import (
    OBJECTIVES,
    EvaluateRequest,
    FleetRecommendRequest,
    LinkSpec,
    RecommendRequest,
    RoutingSpec,
)

__all__ = [
    "TIER_POLICY",
    "TIER_PRECOMPUTED",
    "TIER_LRU",
    "TIER_MISS",
    "SweepTable",
    "RecommendResult",
    "FleetRecommendResult",
    "FleetRoutingSummary",
    "Oracle",
]

#: Cache tier names reported per answer (and counted in ``/metrics``).
TIER_POLICY = "policy"
TIER_PRECOMPUTED = "precomputed"
TIER_LRU = "lru"
TIER_MISS = "miss"


@dataclass(frozen=True)
class SweepTable:
    """One link's fully evaluated tuning grid, stored column-wise.

    Wraps the kernels' :class:`GridEvaluation`; scalar
    :class:`ConfigEvaluation` rows are materialized lazily (and cached) the
    first time :attr:`evaluations` is read, so the serving hot path never
    pays per-row object construction.
    """

    grid_eval: GridEvaluation
    build_ms: float = field(default=float("nan"), compare=False)

    def __len__(self) -> int:
        return len(self.grid_eval)

    @classmethod
    def build(
        cls,
        evaluator: ModelEvaluator,
        grid: TuningGrid,
        distance_m: float,
    ) -> "SweepTable":
        """Evaluate the whole grid for one link in one columnar pass."""
        started = time.monotonic()
        grid_eval = evaluate_grid_columns(evaluator, grid, distance_m)
        elapsed_ms = (time.monotonic() - started) * 1e3
        return cls(grid_eval=grid_eval, build_ms=elapsed_ms)

    @cached_property
    def evaluations(self) -> Tuple[ConfigEvaluation, ...]:
        """Scalar rows in grid order (materialized on first access)."""
        return tuple(self.grid_eval.rows())

    @property
    def columns(self) -> Mapping[str, np.ndarray]:
        """Objective name → minimization-form column, for every objective."""
        return {
            name: self.grid_eval.objective_column(name) for name in OBJECTIVES
        }

    def column(self, objective: str) -> np.ndarray:
        """The minimization-form values of one objective across the grid."""
        return self.grid_eval.objective_column(objective)

    def solve(
        self, objective: str, constraints: Sequence[Constraint] = ()
    ) -> ConfigEvaluation:
        """Vectorized epsilon-constraint solve over the cached grid.

        Delegates to the columnar branch of
        :func:`~repro.core.optimization.solve_epsilon_constraint`, so the
        answer (including first-minimal-feasible tie-breaking and
        infeasibility diagnostics) is identical to solving the materialized
        :attr:`evaluations` row list.
        """
        return solve_epsilon_constraint(self.grid_eval, objective, constraints)

    def stats(self) -> Dict[str, object]:
        """Size and build-cost summary, JSON-ready."""
        return {
            "configurations": len(self),
            "build_ms": self.build_ms,
        }


@dataclass(frozen=True)
class RecommendResult:
    """A recommend answer plus where it came from."""

    evaluation: ConfigEvaluation
    cache_tier: str


@dataclass(frozen=True)
class FleetRoutingSummary:
    """Path-level view of one routed fleet batch, JSON-ready pieces.

    Composed from the per-link recommendations over the request's routing
    block: ``n_paths_feasible`` counts leaf→sink paths meeting the
    block's ``max_path_loss`` (a path through an infeasible link never
    counts), ``path_stats`` is the composed
    :meth:`~repro.routing.compose.PathMetrics.stats` summary, and
    ``paths`` (opt-in via ``include_paths``) lists one row per leaf.
    """

    sink: int
    strategy: str
    max_hops: int
    n_paths: int
    n_paths_feasible: int
    max_path_loss: Optional[float]
    path_stats: Dict[str, object]
    paths: Optional[Tuple[Dict[str, object], ...]] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (the fleet response's ``routing`` object)."""
        summary: Dict[str, object] = {
            "sink": self.sink,
            "strategy": self.strategy,
            "max_hops": self.max_hops,
            "n_paths": self.n_paths,
            "n_paths_feasible": self.n_paths_feasible,
            "max_path_loss": self.max_path_loss,
            "path_stats": dict(self.path_stats),
        }
        if self.paths is not None:
            summary["paths"] = [dict(path) for path in self.paths]
        return summary


@dataclass(frozen=True)
class FleetRecommendResult:
    """Positional answers for one fleet batch.

    ``evaluations[i]`` / ``errors[i]`` / ``cache_tiers[i]`` belong to link
    ``i`` of the request; exactly one of evaluation or error is set per
    link (errors are per-link infeasibility messages — anything worse
    fails the whole batch).
    """

    evaluations: Tuple[Optional[ConfigEvaluation], ...]
    errors: Tuple[Optional[str], ...]
    cache_tiers: Tuple[str, ...]
    #: Distinct cache keys in the batch = sweep tables fetched (and, for
    #: shared objectives, vectorized solves run) to answer it.
    n_unique_links: int = 0
    #: Path composition over the request's routing block, when present.
    routing: Optional[FleetRoutingSummary] = None

    def __len__(self) -> int:
        return len(self.evaluations)

    @property
    def n_infeasible(self) -> int:
        """Links that had no feasible configuration."""
        return sum(1 for error in self.errors if error is not None)

    def tier_counts(self) -> Dict[str, int]:
        """Cache-tier name → number of links answered from that tier."""
        counts: Dict[str, int] = {}
        for tier in self.cache_tiers:
            counts[tier] = counts.get(tier, 0) + 1
        return counts


class Oracle:
    """Answers recommend/evaluate queries from the two-tier table cache.

    Thread-safe: tier bookkeeping is done under a lock, while the expensive
    table builds run outside it so concurrent queries for *different* links
    proceed in parallel.
    """

    def __init__(
        self,
        environment: Environment = HALLWAY_2012,
        grid: Optional[TuningGrid] = None,
        lru_capacity: int = 64,
        policy: bool = False,
        snr_quantum_db: float = DEFAULT_SNR_QUANTUM_DB,
        policy_snr_range_db: Tuple[float, float] = DEFAULT_SNR_RANGE_DB,
    ) -> None:
        self.environment = environment
        # Not `grid or TuningGrid()`: an empty grid is falsy and would be
        # silently swapped for the default; let evaluation reject it instead.
        self.grid = grid if grid is not None else TuningGrid()
        self.policy = bool(policy)
        self.snr_quantum_db = float(snr_quantum_db)
        self.policy_snr_range_db = (
            float(policy_snr_range_db[0]),
            float(policy_snr_range_db[1]),
        )
        self._precomputed: Dict[Tuple[object, ...], SweepTable] = {}
        self._lru = LruCache(lru_capacity)
        self._lock = threading.Lock()
        self._precomputed_hits = 0
        self._misses = 0
        self._builds = 0
        #: objective → compiled unconstrained policy (lazy, under
        #: ``_policy_lock`` so a compile never blocks table traffic).
        self._policies: Dict[str, PolicyTable] = {}
        self._policy_lock = threading.Lock()
        self._policy_lookups = 0
        self._policy_fallbacks = 0
        self._policy_compiles = 0
        self._solver_solves = 0
        self._bin_lookups = 0
        self._bin_hits = 0
        #: Cold grid-evaluation latency (ms), one observation per table
        #: build. The service layer registers this into ``/metrics`` as
        #: ``grid_eval_ms`` so cache-miss cost is visible in production.
        self.grid_eval_ms = LatencyHistogram(DEFAULT_BUCKETS_MS, unit="ms")
        #: Policy compile latency (ms), one observation per objective
        #: compiled; surfaced as ``policy_compile_ms`` in ``/metrics``.
        self.policy_compile_ms = LatencyHistogram(DEFAULT_BUCKETS_MS, unit="ms")

    # ------------------------------------------------------------ caching

    def precompute(
        self, distances_m: Sequence[float] = TABLE_I_SPACE.distances_m
    ) -> int:
        """Build tier-1 tables for the given link distances; returns count."""
        built = 0
        for distance in distances_m:
            built += self._precompute_one(LinkSpec(distance_m=float(distance)))
        return built

    def _precompute_one(self, link: LinkSpec) -> int:
        """Install one tier-1 table; 0 when the link already has one."""
        key = link.key()
        with self._lock:
            if key in self._precomputed:
                return 0
        table = self._build_table(link)
        with self._lock:
            if key in self._precomputed:
                return 0  # lost the build race; keep the installed table
            self._precomputed[key] = table
        return 1

    def _build_table(self, link: LinkSpec) -> SweepTable:
        evaluator = ModelEvaluator(snr_by_level=link.snr_map(self.environment))
        with self._lock:
            self._builds += 1
        table = SweepTable.build(
            evaluator, self.grid, link.grid_distance_m()
        )
        self.grid_eval_ms.observe(table.build_ms)
        return table

    def _bin_link(self, link: LinkSpec) -> Optional[LinkSpec]:
        """The link snapped to its policy SNR bin, or None when not binnable.

        Only reference-SNR links on a policy-enabled oracle are binned;
        distance links keep their exact keys.
        """
        if not self.policy or link.snr_db is None:
            return None
        quantum = self.snr_quantum_db
        return LinkSpec(
            snr_db=float(np.round(link.snr_db / quantum) * quantum)
        )

    def table_for(self, link: LinkSpec) -> Tuple[SweepTable, str]:
        """The link's sweep table and the cache tier that supplied it.

        A miss builds the table (outside the lock) and installs it in the
        LRU tier; the caller is told ``"miss"`` so per-request accounting
        can distinguish cold from warm answers. On a policy-enabled
        oracle, reference-SNR cache keys are quantized to the policy SNR
        bin first, so near-identical SNRs share one table.
        """
        binned = self._bin_link(link)
        if binned is None:
            return self._table_for(link)
        table, tier = self._table_for(binned)
        with self._lock:
            self._bin_lookups += 1
            if tier != TIER_MISS:
                self._bin_hits += 1
        return table, tier

    def _table_for(self, link: LinkSpec) -> Tuple[SweepTable, str]:
        key = link.key()
        with self._lock:
            table = self._precomputed.get(key)
            if table is not None:
                self._precomputed_hits += 1
                return table, TIER_PRECOMPUTED
        cached = self._lru.get(key)
        if cached is not None:
            return cached, TIER_LRU  # type: ignore[return-value]
        with self._lock:
            self._misses += 1
        table = self._build_table(link)
        self._lru.put(key, table)
        return table, TIER_MISS

    # ------------------------------------------------------------- policy

    def policy_for(self, objective: str) -> PolicyTable:
        """The compiled unconstrained policy for one objective (lazy)."""
        with self._policy_lock:
            table = self._policies.get(objective)
            if table is None:
                table = PolicyTable.compile(
                    grid=self.grid,
                    objective=objective,
                    snr_quantum_db=self.snr_quantum_db,
                    snr_range_db=self.policy_snr_range_db,
                )
                self.policy_compile_ms.observe(table.compile_ms)
                self._policies[objective] = table
                with self._lock:
                    self._policy_compiles += 1
        return table

    def precompute_policies(
        self, objectives: Sequence[str] = ("energy",)
    ) -> int:
        """Eagerly compile policies for the given objectives; returns count."""
        if not self.policy:
            return 0
        for objective in objectives:
            self.policy_for(objective)
        return len(objectives)

    def _reference_snr_db(self, link: LinkSpec) -> float:
        """The link's SNR at the policy reference PA level (dB)."""
        if link.snr_db is not None:
            return float(link.snr_db)
        return float(link.snr_map(self.environment)[REFERENCE_LEVEL])

    def policy_recommend(
        self, request: RecommendRequest
    ) -> Optional[RecommendResult]:
        """O(1) policy answer, or None when the request needs the solver.

        None — a counted fallback — when the oracle has no policy, the
        request carries non-default constraint bounds, or the link's
        reference SNR falls off the compiled axis. An infeasible bin
        raises the stored :class:`~repro.errors.InfeasibleError`, byte
        for byte what the solver would have said.
        """
        if not self.policy:
            return None
        if request.constraints:
            with self._lock:
                self._policy_fallbacks += 1
            return None
        table = self.policy_for(request.objective)
        snr_db = self._reference_snr_db(request.link)
        if not table.covers(snr_db):
            with self._lock:
                self._policy_fallbacks += 1
            return None
        with self._lock:
            self._policy_lookups += 1
        evaluation = table.lookup(snr_db, request.link.grid_distance_m())
        return RecommendResult(evaluation=evaluation, cache_tier=TIER_POLICY)

    def _policy_answer(
        self,
        link: LinkSpec,
        objective: str,
        constraints: Tuple[Constraint, ...],
    ) -> Optional[Tuple[Optional[ConfigEvaluation], Optional[str], str]]:
        """One fleet link's policy answer in in-band-error form, or None."""
        request = RecommendRequest(
            link=link, objective=objective, constraints=constraints
        )
        try:
            result = self.policy_recommend(request)
        except InfeasibleError as exc:
            return (None, str(exc), TIER_POLICY)
        if result is None:
            return None
        return (result.evaluation, None, TIER_POLICY)

    def _solve_table(
        self,
        table: SweepTable,
        objective: str,
        constraints: Sequence[Constraint],
    ) -> ConfigEvaluation:
        """Every solver invocation funnels through here, counted, so
        ``/metrics`` (and the tests) can prove the warm policy path never
        reaches ``solve_epsilon_constraint``."""
        with self._lock:
            self._solver_solves += 1
        return table.solve(objective, constraints)

    def policy_info(self) -> Dict[str, object]:
        """Policy-tier counters and table stats, JSON-ready."""
        with self._lock:
            lookups = self._policy_lookups
            fallbacks = self._policy_fallbacks
            compiles = self._policy_compiles
            solver_solves = self._solver_solves
            bin_lookups = self._bin_lookups
            bin_hits = self._bin_hits
        with self._policy_lock:
            tables = dict(self._policies)
        return {
            "enabled": self.policy,
            "snr_quantum_db": self.snr_quantum_db,
            "snr_range_db": list(self.policy_snr_range_db),
            "n_tables": len(tables),
            "table_bytes": sum(table.nbytes for table in tables.values()),
            "lookups": lookups,
            "fallbacks": fallbacks,
            "compiles": compiles,
            "solver_solves": solver_solves,
            "bin_lookups": bin_lookups,
            "bin_hits": bin_hits,
            "bin_hit_rate": (bin_hits / bin_lookups) if bin_lookups else 0.0,
            "compile_ms": self.policy_compile_ms.as_dict(),
        }

    def cache_info(self) -> Dict[str, object]:
        """Counters for all tiers, JSON-ready (see ``/metrics``)."""
        with self._lock:
            precomputed = {
                "tables": len(self._precomputed),
                "hits": self._precomputed_hits,
            }
            misses = self._misses
            builds = self._builds
        lru: CacheStats = self._lru.stats()
        return {
            "precomputed": precomputed,
            "lru": lru.as_dict(),
            "misses": misses,
            "table_builds": builds,
            "grid_size": len(self.grid),
            "grid_eval_ms": self.grid_eval_ms.as_dict(),
            "policy": self.policy_info(),
        }

    # ------------------------------------------------------------ queries

    def recommend(self, request: RecommendRequest) -> RecommendResult:
        """Best grid configuration for the request's link and objective.

        Policy-first: with the policy enabled, a default-bounds request
        is answered by an O(1) bin lookup; everything else goes through
        the two-tier table cache and the vectorized solver.
        """
        result = self.policy_recommend(request)
        if result is not None:
            return result
        table, tier = self.table_for(request.link)
        evaluation = self._solve_table(
            table, request.objective, request.constraints
        )
        return RecommendResult(evaluation=evaluation, cache_tier=tier)

    def recommend_from_table(
        self, table: SweepTable, request: RecommendRequest
    ) -> ConfigEvaluation:
        """Solve one request against an already-fetched table.

        Used by the micro-batcher: the table is fetched once for a batch of
        compatible requests, then each request's objective/constraints are
        solved here without touching the cache again.
        """
        return self._solve_table(table, request.objective, request.constraints)

    def recommend_fleet(
        self, request: FleetRecommendRequest
    ) -> FleetRecommendResult:
        """Answer a whole fleet batch with one solve per *distinct* link.

        Links are grouped by cache key, each distinct link costs one
        two-tier table lookup (a columnar grid evaluation at worst) plus
        one vectorized epsilon-constraint solve — the shared objective and
        constraints make every duplicate link a pure scatter. A link with
        no feasible configuration records its
        :class:`~repro.errors.InfeasibleError` message in-band; any other
        failure aborts the batch.
        """
        distinct: Dict[Tuple[object, ...], LinkSpec] = {}
        for link in request.links:
            distinct.setdefault(link.key(), link)
        answers: Dict[Tuple[object, ...], Tuple[
            Optional[ConfigEvaluation], Optional[str], str
        ]] = {}
        for key, link in distinct.items():
            answer = self._policy_answer(
                link, request.objective, request.constraints
            )
            if answer is not None:
                answers[key] = answer
                continue
            table, tier = self.table_for(link)
            try:
                evaluation = self._solve_table(
                    table, request.objective, request.constraints
                )
            except InfeasibleError as exc:
                answers[key] = (None, str(exc), tier)
            else:
                answers[key] = (evaluation, None, tier)
        evaluations = []
        errors = []
        tiers = []
        for link in request.links:
            evaluation, error, tier = answers[link.key()]
            evaluations.append(evaluation)
            errors.append(error)
            tiers.append(tier)
        routing = None
        if request.routing is not None:
            routing = self._routed_summary(request.routing, evaluations)
        return FleetRecommendResult(
            evaluations=tuple(evaluations),
            errors=tuple(errors),
            cache_tiers=tuple(tiers),
            n_unique_links=len(distinct),
            routing=routing,
        )

    def _routed_summary(
        self,
        spec: RoutingSpec,
        evaluations: Sequence[Optional[ConfigEvaluation]],
    ) -> FleetRoutingSummary:
        """Compose the batch's per-link answers into path-level metrics.

        Builds the collection tree over the routing block's edges, then
        runs the vectorized composition kernel over the recommended
        per-link metrics. An infeasible link contributes a dead hop
        (PLR 1, zero goodput), so every path through it reports as
        infeasible rather than silently optimistic. A routing block the
        tree builder rejects (disconnected components, self-loops, a bad
        sink) is a client error, surfaced as
        :class:`~repro.errors.ProtocolError`.
        """
        # Deferred: the routing package sits above the fleet layer, which
        # itself imports this module's sibling (serve.protocol) — a
        # module-level import here would close that cycle.
        from ..routing.compose import compose_paths
        from ..routing.table import build_routes

        try:
            table = build_routes(
                n_nodes=spec.n_nodes,
                edges=spec.edges,
                sink=spec.sink,
                strategy=spec.strategy,
            )
        except RoutingError as exc:
            raise ProtocolError(f"bad routing block: {exc}") from exc
        energy = np.array(
            [e.u_eng_uj_per_bit if e is not None else 0.0 for e in evaluations]
        )
        delay = np.array(
            [e.delay_ms if e is not None else 0.0 for e in evaluations]
        )
        plr = np.array(
            [e.plr_total if e is not None else 1.0 for e in evaluations]
        )
        goodput = np.array(
            [e.max_goodput_kbps if e is not None else 0.0 for e in evaluations]
        )
        paths = compose_paths(
            table,
            energy_uj_per_bit=energy,
            delay_ms=delay,
            plr_total=plr,
            goodput_kbps=goodput,
        )
        leaves = paths.leaf_nodes
        feasible = paths.leaf_feasible(spec.max_path_loss)
        feasible &= paths.delivery_prob[leaves] > 0.0
        rows = None
        if spec.include_paths:
            rows = tuple(
                {
                    "leaf": int(leaf),
                    "hops": int(table.hop_count[leaf]),
                    "loss_prob": float(paths.loss_prob[leaf]),
                    "delay_ms": float(paths.delay_ms[leaf]),
                    "energy_uj_per_bit": float(paths.energy_uj_per_bit[leaf]),
                    "goodput_kbps": float(paths.goodput_kbps[leaf]),
                    "feasible": bool(feasible[row]),
                }
                for row, leaf in enumerate(leaves.tolist())
            )
        return FleetRoutingSummary(
            sink=table.sink,
            strategy=table.strategy,
            max_hops=table.max_hops,
            n_paths=paths.n_paths,
            n_paths_feasible=int(np.count_nonzero(feasible)),
            max_path_loss=spec.max_path_loss,
            path_stats=paths.stats(),
            paths=rows,
        )

    def evaluate(self, request: EvaluateRequest) -> ConfigEvaluation:
        """Model metrics of one explicit configuration on the given link.

        Deliberately bypasses the table cache: a single-configuration
        evaluation costs microseconds, so caching it would only add lock
        traffic to the hot path.
        """
        evaluator = ModelEvaluator(
            snr_by_level=request.link.snr_map(self.environment)
        )
        return evaluator.evaluate(request.config)

    def uncached_recommend(
        self, request: RecommendRequest
    ) -> ConfigEvaluation:
        """Answer a recommend request with a fresh grid evaluation.

        The reference (slow) path: used by tests to prove cached answers
        are identical, and by the throughput benchmark as the uncached
        baseline.
        """
        return self._solve_table(
            self._build_table(request.link),
            request.objective,
            request.constraints,
        )
