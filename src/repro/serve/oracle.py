"""The oracle: cached, vectorized answers to link-configuration queries.

A :class:`SweepTable` is one link's entire evaluated tuning grid — a
columnar :class:`~repro.core.optimization.GridEvaluation` produced by the
vectorized kernels, so both the build (one broadcast pass over all
configurations) and the epsilon-constraint solve of a query (a masked
argmin) are numpy operations rather than Python scans. An :class:`Oracle`
answers ``recommend`` and ``evaluate`` requests out of a two-tier table
cache:

* **tier 1 (precomputed)** — tables for the discretized Table-I distances,
  built once at startup (``precompute``) and never evicted;
* **tier 2 (LRU)** — tables for off-grid links (arbitrary distances,
  reference-SNR links), built on first use and bounded by
  ``lru_capacity``.

A cold query costs one columnar grid evaluation (single-digit
milliseconds for the default 4560 configurations — the ``grid_eval_ms``
histogram in ``/metrics`` tracks the real cost); a warm one costs a
dictionary lookup plus a vectorized argmin (microseconds). The service
layer on top batches compatible cold queries so the grid evaluation is
paid once per link, not once per request.
"""

# reprolint: hot-path — recommend/evaluate loop timed by BENCH_serve.json
from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..channel.environment import Environment, HALLWAY_2012
from ..config import TABLE_I_SPACE
from ..errors import InfeasibleError
from ..core.optimization import (
    ConfigEvaluation,
    Constraint,
    GridEvaluation,
    ModelEvaluator,
    TuningGrid,
    evaluate_grid_columns,
    solve_epsilon_constraint,
)
from .cache import CacheStats, LruCache
from .metrics import DEFAULT_BUCKETS_MS, LatencyHistogram
from .protocol import (
    OBJECTIVES,
    EvaluateRequest,
    FleetRecommendRequest,
    LinkSpec,
    RecommendRequest,
)

__all__ = [
    "TIER_PRECOMPUTED",
    "TIER_LRU",
    "TIER_MISS",
    "SweepTable",
    "RecommendResult",
    "FleetRecommendResult",
    "Oracle",
]

#: Cache tier names reported per answer (and counted in ``/metrics``).
TIER_PRECOMPUTED = "precomputed"
TIER_LRU = "lru"
TIER_MISS = "miss"


@dataclass(frozen=True)
class SweepTable:
    """One link's fully evaluated tuning grid, stored column-wise.

    Wraps the kernels' :class:`GridEvaluation`; scalar
    :class:`ConfigEvaluation` rows are materialized lazily (and cached) the
    first time :attr:`evaluations` is read, so the serving hot path never
    pays per-row object construction.
    """

    grid_eval: GridEvaluation
    build_ms: float = field(default=float("nan"), compare=False)

    def __len__(self) -> int:
        return len(self.grid_eval)

    @classmethod
    def build(
        cls,
        evaluator: ModelEvaluator,
        grid: TuningGrid,
        distance_m: float,
    ) -> "SweepTable":
        """Evaluate the whole grid for one link in one columnar pass."""
        started = time.monotonic()
        grid_eval = evaluate_grid_columns(evaluator, grid, distance_m)
        elapsed_ms = (time.monotonic() - started) * 1e3
        return cls(grid_eval=grid_eval, build_ms=elapsed_ms)

    @cached_property
    def evaluations(self) -> Tuple[ConfigEvaluation, ...]:
        """Scalar rows in grid order (materialized on first access)."""
        return tuple(self.grid_eval.rows())

    @property
    def columns(self) -> Mapping[str, np.ndarray]:
        """Objective name → minimization-form column, for every objective."""
        return {
            name: self.grid_eval.objective_column(name) for name in OBJECTIVES
        }

    def column(self, objective: str) -> np.ndarray:
        """The minimization-form values of one objective across the grid."""
        return self.grid_eval.objective_column(objective)

    def solve(
        self, objective: str, constraints: Sequence[Constraint] = ()
    ) -> ConfigEvaluation:
        """Vectorized epsilon-constraint solve over the cached grid.

        Delegates to the columnar branch of
        :func:`~repro.core.optimization.solve_epsilon_constraint`, so the
        answer (including first-minimal-feasible tie-breaking and
        infeasibility diagnostics) is identical to solving the materialized
        :attr:`evaluations` row list.
        """
        return solve_epsilon_constraint(self.grid_eval, objective, constraints)

    def stats(self) -> Dict[str, object]:
        """Size and build-cost summary, JSON-ready."""
        return {
            "configurations": len(self),
            "build_ms": self.build_ms,
        }


@dataclass(frozen=True)
class RecommendResult:
    """A recommend answer plus where it came from."""

    evaluation: ConfigEvaluation
    cache_tier: str


@dataclass(frozen=True)
class FleetRecommendResult:
    """Positional answers for one fleet batch.

    ``evaluations[i]`` / ``errors[i]`` / ``cache_tiers[i]`` belong to link
    ``i`` of the request; exactly one of evaluation or error is set per
    link (errors are per-link infeasibility messages — anything worse
    fails the whole batch).
    """

    evaluations: Tuple[Optional[ConfigEvaluation], ...]
    errors: Tuple[Optional[str], ...]
    cache_tiers: Tuple[str, ...]
    #: Distinct cache keys in the batch = sweep tables fetched (and, for
    #: shared objectives, vectorized solves run) to answer it.
    n_unique_links: int = 0

    def __len__(self) -> int:
        return len(self.evaluations)

    @property
    def n_infeasible(self) -> int:
        """Links that had no feasible configuration."""
        return sum(1 for error in self.errors if error is not None)

    def tier_counts(self) -> Dict[str, int]:
        """Cache-tier name → number of links answered from that tier."""
        counts: Dict[str, int] = {}
        for tier in self.cache_tiers:
            counts[tier] = counts.get(tier, 0) + 1
        return counts


class Oracle:
    """Answers recommend/evaluate queries from the two-tier table cache.

    Thread-safe: tier bookkeeping is done under a lock, while the expensive
    table builds run outside it so concurrent queries for *different* links
    proceed in parallel.
    """

    def __init__(
        self,
        environment: Environment = HALLWAY_2012,
        grid: Optional[TuningGrid] = None,
        lru_capacity: int = 64,
    ) -> None:
        self.environment = environment
        # Not `grid or TuningGrid()`: an empty grid is falsy and would be
        # silently swapped for the default; let evaluation reject it instead.
        self.grid = grid if grid is not None else TuningGrid()
        self._precomputed: Dict[Tuple[object, ...], SweepTable] = {}
        self._lru = LruCache(lru_capacity)
        self._lock = threading.Lock()
        self._precomputed_hits = 0
        self._misses = 0
        self._builds = 0
        #: Cold grid-evaluation latency (ms), one observation per table
        #: build. The service layer registers this into ``/metrics`` as
        #: ``grid_eval_ms`` so cache-miss cost is visible in production.
        self.grid_eval_ms = LatencyHistogram(DEFAULT_BUCKETS_MS, unit="ms")

    # ------------------------------------------------------------ caching

    def precompute(
        self, distances_m: Sequence[float] = TABLE_I_SPACE.distances_m
    ) -> int:
        """Build tier-1 tables for the given link distances; returns count."""
        built = 0
        for distance in distances_m:
            built += self._precompute_one(LinkSpec(distance_m=float(distance)))
        return built

    def _precompute_one(self, link: LinkSpec) -> int:
        """Install one tier-1 table; 0 when the link already has one."""
        key = link.key()
        with self._lock:
            if key in self._precomputed:
                return 0
        table = self._build_table(link)
        with self._lock:
            if key in self._precomputed:
                return 0  # lost the build race; keep the installed table
            self._precomputed[key] = table
        return 1

    def _build_table(self, link: LinkSpec) -> SweepTable:
        evaluator = ModelEvaluator(snr_by_level=link.snr_map(self.environment))
        with self._lock:
            self._builds += 1
        table = SweepTable.build(
            evaluator, self.grid, link.grid_distance_m()
        )
        self.grid_eval_ms.observe(table.build_ms)
        return table

    def table_for(self, link: LinkSpec) -> Tuple[SweepTable, str]:
        """The link's sweep table and the cache tier that supplied it.

        A miss builds the table (outside the lock) and installs it in the
        LRU tier; the caller is told ``"miss"`` so per-request accounting
        can distinguish cold from warm answers.
        """
        key = link.key()
        with self._lock:
            table = self._precomputed.get(key)
            if table is not None:
                self._precomputed_hits += 1
                return table, TIER_PRECOMPUTED
        cached = self._lru.get(key)
        if cached is not None:
            return cached, TIER_LRU  # type: ignore[return-value]
        with self._lock:
            self._misses += 1
        table = self._build_table(link)
        self._lru.put(key, table)
        return table, TIER_MISS

    def cache_info(self) -> Dict[str, object]:
        """Counters for both tiers, JSON-ready (see ``/metrics``)."""
        with self._lock:
            precomputed = {
                "tables": len(self._precomputed),
                "hits": self._precomputed_hits,
            }
            misses = self._misses
            builds = self._builds
        lru: CacheStats = self._lru.stats()
        return {
            "precomputed": precomputed,
            "lru": lru.as_dict(),
            "misses": misses,
            "table_builds": builds,
            "grid_size": len(self.grid),
            "grid_eval_ms": self.grid_eval_ms.as_dict(),
        }

    # ------------------------------------------------------------ queries

    def recommend(self, request: RecommendRequest) -> RecommendResult:
        """Best grid configuration for the request's link and objective."""
        table, tier = self.table_for(request.link)
        evaluation = table.solve(request.objective, request.constraints)
        return RecommendResult(evaluation=evaluation, cache_tier=tier)

    def recommend_from_table(
        self, table: SweepTable, request: RecommendRequest
    ) -> ConfigEvaluation:
        """Solve one request against an already-fetched table.

        Used by the micro-batcher: the table is fetched once for a batch of
        compatible requests, then each request's objective/constraints are
        solved here without touching the cache again.
        """
        return table.solve(request.objective, request.constraints)

    def recommend_fleet(
        self, request: FleetRecommendRequest
    ) -> FleetRecommendResult:
        """Answer a whole fleet batch with one solve per *distinct* link.

        Links are grouped by cache key, each distinct link costs one
        two-tier table lookup (a columnar grid evaluation at worst) plus
        one vectorized epsilon-constraint solve — the shared objective and
        constraints make every duplicate link a pure scatter. A link with
        no feasible configuration records its
        :class:`~repro.errors.InfeasibleError` message in-band; any other
        failure aborts the batch.
        """
        distinct: Dict[Tuple[object, ...], LinkSpec] = {}
        for link in request.links:
            distinct.setdefault(link.key(), link)
        answers: Dict[Tuple[object, ...], Tuple[
            Optional[ConfigEvaluation], Optional[str], str
        ]] = {}
        for key, link in distinct.items():
            table, tier = self.table_for(link)
            try:
                evaluation = table.solve(request.objective, request.constraints)
            except InfeasibleError as exc:
                answers[key] = (None, str(exc), tier)
            else:
                answers[key] = (evaluation, None, tier)
        evaluations = []
        errors = []
        tiers = []
        for link in request.links:
            evaluation, error, tier = answers[link.key()]
            evaluations.append(evaluation)
            errors.append(error)
            tiers.append(tier)
        return FleetRecommendResult(
            evaluations=tuple(evaluations),
            errors=tuple(errors),
            cache_tiers=tuple(tiers),
            n_unique_links=len(distinct),
        )

    def evaluate(self, request: EvaluateRequest) -> ConfigEvaluation:
        """Model metrics of one explicit configuration on the given link.

        Deliberately bypasses the table cache: a single-configuration
        evaluation costs microseconds, so caching it would only add lock
        traffic to the hot path.
        """
        evaluator = ModelEvaluator(
            snr_by_level=request.link.snr_map(self.environment)
        )
        return evaluator.evaluate(request.config)

    def uncached_recommend(
        self, request: RecommendRequest
    ) -> ConfigEvaluation:
        """Answer a recommend request with a fresh grid evaluation.

        The reference (slow) path: used by tests to prove cached answers
        are identical, and by the throughput benchmark as the uncached
        baseline.
        """
        return self._build_table(request.link).solve(
            request.objective, request.constraints
        )
