"""Stdlib HTTP front-end for the oracle service.

Endpoints (JSON in, JSON out; schemas in ``docs/SERVING.md``):

* ``POST /v1/recommend`` — best configuration for a link under an
  objective and optional epsilon-constraints;
* ``POST /v1/fleet/recommend`` — best configurations for a whole batch of
  links sharing one objective/constraint policy (per-link infeasibility is
  reported in-band, not as a 409);
* ``POST /v1/evaluate`` — model metrics of one explicit configuration;
* ``POST /v1/telemetry`` — one device uplink batch, either raw binary
  frames (``Content-Type: application/octet-stream``) or JSON uplinks;
* ``GET /v1/telemetry/state`` — measured-fleet snapshot (404 when the
  service runs without an ingestor);
* ``GET /healthz`` — liveness plus queue/cache occupancy;
* ``GET /metrics`` — counters and latency histograms.

Error mapping: malformed payloads and out-of-domain parameters are 400,
an infeasible constraint set is 409, backpressure rejections are 503 with
a ``Retry-After`` header, and deadline expiries are 504. Error bodies are
structured (``error.type`` / ``error.code`` / ``error.message`` and,
when the offending request field is known, ``error.field``), and every
4xx protocol rejection increments ``requests_rejected_protocol``. The
server is the stdlib :class:`~http.server.ThreadingHTTPServer` — no
third-party dependencies, one thread per connection, with the real
concurrency bound enforced by the service's worker pool and bounded
queue behind it.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..errors import (
    InfeasibleError,
    OverloadError,
    ProtocolError,
    ReproError,
    ServiceTimeoutError,
)
from .client import Client
from .service import OracleService

__all__ = [
    "OracleHTTPServer",
    "OracleRequestHandler",
    "make_server",
]

#: Largest accepted request body; anything bigger is rejected with 413.
MAX_BODY_BYTES = 1 << 20


def _error_code(error: BaseException) -> str:
    """Stable snake_case wire code of an exception class.

    ``ProtocolError`` → ``protocol_error``, ``InfeasibleError`` →
    ``infeasible_error`` — derived, so a new error class cannot forget
    to register a code.
    """
    return re.sub(r"(?<!^)(?=[A-Z])", "_", type(error).__name__).lower()


class OracleHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server owning the in-process client it serves."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        client: Client,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, OracleRequestHandler)
        self.client = client
        self.quiet = quiet

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return self.server_address[1]


class OracleRequestHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the in-process client."""

    server: OracleHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing

    def log_message(self, format: str, *args: object) -> None:
        """Default request logging is suppressed unless the server opts in."""
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        metrics = self.server.client.service.metrics
        metrics.increment("http_requests_total")
        metrics.increment(f"http_status_{status}_total")

    def _send_error_json(
        self,
        status: int,
        error: BaseException,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        detail: Dict[str, object] = {
            "type": type(error).__name__,
            "code": _error_code(error),
            "message": str(error),
        }
        field = getattr(error, "field", None)
        if field is not None:
            detail["field"] = field
        if status in (400, 413):
            self.server.client.service.metrics.increment(
                "requests_rejected_protocol"
            )
        self._send_json(status, {"error": detail}, headers)

    def _read_raw_body(self) -> Optional[bytes]:
        """Raw request body bytes, or None after an error response was sent."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(
                400, ProtocolError("bad Content-Length", field="Content-Length")
            )
            return None
        if length <= 0:
            self._send_error_json(400, ProtocolError("empty request body"))
            return None
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, ProtocolError("request body too large")
            )
            return None
        return self.rfile.read(length)

    def _read_body(self) -> Optional[object]:
        """Decoded JSON body, or None after an error response was sent."""
        raw = self._read_raw_body()
        if raw is None:
            return None
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            self._send_error_json(
                400, ProtocolError(f"bad JSON: {exc}", field="body")
            )
            return None

    # ------------------------------------------------------------- endpoints

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        client = self.server.client
        if self.path == "/healthz":
            self._send_json(200, client.healthz())
        elif self.path == "/metrics":
            self._send_json(200, client.metrics())
        elif self.path == "/v1/telemetry/state":
            if client.service.ingestor is None:
                self._send_error_json(
                    404,
                    ProtocolError(
                        "telemetry ingestion is not enabled on this service"
                    ),
                )
            else:
                self._send_json(200, client.telemetry_state())
        else:
            self._send_error_json(
                404, ProtocolError(f"no route {self.path}")
            )

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        client = self.server.client
        if self.path == "/v1/recommend":
            handler = client.recommend
        elif self.path == "/v1/fleet/recommend":
            handler = client.recommend_fleet
        elif self.path == "/v1/evaluate":
            handler = client.evaluate
        elif self.path == "/v1/telemetry":
            handler = client.telemetry
        else:
            self._send_error_json(
                404, ProtocolError(f"no route {self.path}")
            )
            return
        content_type = self.headers.get("Content-Type", "")
        binary = (
            self.path == "/v1/telemetry"
            and content_type.split(";")[0].strip().lower()
            == "application/octet-stream"
        )
        payload = self._read_raw_body() if binary else self._read_body()
        if payload is None:
            return
        started = time.monotonic()
        try:
            response = handler(payload)
        except OverloadError as exc:
            self._send_error_json(
                503, exc, {"Retry-After": f"{exc.retry_after_s:g}"}
            )
            return
        except ServiceTimeoutError as exc:
            self._send_error_json(504, exc)
            return
        except InfeasibleError as exc:
            self._send_error_json(409, exc)
            return
        except ValueError as exc:
            # ProtocolError, ConfigurationError, ModelError — the bad-input
            # errors all double as ValueError (see errors.py).
            self._send_error_json(400, exc)
            return
        except ReproError as exc:
            self._send_error_json(500, exc)
            return
        finally:
            self.server.client.service.metrics.observe(
                "http_request_s", time.monotonic() - started
            )
        self._send_json(200, response)


def make_server(
    service: OracleService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> OracleHTTPServer:
    """Bind an :class:`OracleHTTPServer` over a service (port 0 = ephemeral).

    The caller owns both lifetimes: ``serve_forever()``/``shutdown()`` for
    the server, ``service.close()`` for the workers.
    """
    return OracleHTTPServer((host, port), Client(service), quiet=quiet)
