"""Compiled uplink codecs: scalar ``struct`` and vectorized numpy paths.

An :class:`UplinkCodec` compiles one :class:`~repro.telemetry.template.
PayloadTemplate` into two equivalent implementations of the same wire
format:

* a **scalar** path (``encode`` / ``decode``) built on one precompiled
  :class:`struct.Struct` — what a device firmware or a debugging tool
  does, one frame at a time;
* a **batch** path (``encode_batch`` / ``decode_batch``) that views an
  entire payload of N concatenated frames as a numpy structured array in
  one ``np.frombuffer`` pass and converts each field column with one
  vectorized cast — the ingest tier's hot path, benchmarked (and held to
  a ≥ 20x speedup over a per-frame ``struct.unpack`` loop) by
  ``benchmarks/bench_telemetry.py``.

Both paths apply strict bounds checking: encoding a value whose raw
fixed-point representation leaves the field's integer domain raises
:class:`~repro.errors.TelemetryError`, and decoding a payload that is
truncated, misaligned, or stamped with the wrong version byte raises
:class:`~repro.errors.ProtocolError` instead of mis-decoding.

Decoded column dtypes: unscaled integer fields come back as ``int64``
(``u64`` as ``uint64``, which int64 cannot hold), scaled integers and
floats as ``float64``.
"""

# reprolint: hot-path — batch uplink decode timed by BENCH_telemetry.json

from __future__ import annotations

import struct
from typing import Dict, Mapping, Tuple

import numpy as np

from ..errors import ProtocolError, TelemetryError
from .template import FIELD_KINDS, PayloadTemplate, TEMPLATE_REGISTRY

__all__ = [
    "UplinkCodec",
    "decode_uplink_batch",
    "default_codecs",
]


class UplinkCodec:
    """Encode/decode frames of one template, scalar or batched."""

    def __init__(self, template: PayloadTemplate) -> None:
        self._template = template
        self._struct = struct.Struct(template.struct_format)
        self._dtype = template.numpy_dtype()
        self._fields = tuple(
            (field.name, FIELD_KINDS[field.kind], float(field.scale))
            for field in template.fields
        )

    @property
    def template(self) -> PayloadTemplate:
        """The template this codec was compiled from."""
        return self._template

    @property
    def frame_bytes(self) -> int:
        """Size of one encoded frame."""
        return self._template.frame_bytes

    # ------------------------------------------------------------- scalar

    def encode(self, values: Mapping[str, float]) -> bytes:
        """Pack one uplink (field name → value) into its wire frame."""
        known = self._template.field_names
        unknown = set(values) - set(known)
        if unknown:
            raise TelemetryError(
                f"unknown field(s) for template {self._template.name!r}: "
                f"{sorted(unknown)}"
            )
        raws = []
        for name, kind, scale in self._fields:
            if name not in values:
                raise TelemetryError(
                    f"uplink is missing field {name!r} of template "
                    f"{self._template.name!r}"
                )
            value = values[name]
            if kind.is_float:
                raws.append(float(value))
                continue
            scaled = value / scale if scale != 1.0 else value
            try:
                raw = round(scaled)
            except (TypeError, ValueError, OverflowError) as exc:
                raise TelemetryError(
                    f"field {name!r} value {value!r} is not encodable"
                ) from exc
            if not kind.raw_min <= raw <= kind.raw_max:
                raise TelemetryError(
                    f"field {name!r} value {value!r} leaves the "
                    f"{kind.raw_min * scale:g}..{kind.raw_max * scale:g} "
                    f"domain of its wire type"
                )
            raws.append(raw)
        return self._struct.pack(self._template.version, *raws)

    def decode(self, frame: bytes) -> Dict[str, float]:
        """Unpack one wire frame into a field name → value mapping."""
        if len(frame) != self.frame_bytes:
            raise ProtocolError(
                f"frame is {len(frame)} bytes but template "
                f"{self._template.name!r} frames are {self.frame_bytes}",
                field="payload",
            )
        unpacked = self._struct.unpack(frame)
        if unpacked[0] != self._template.version:
            raise ProtocolError(
                f"frame version byte is {unpacked[0]} but template "
                f"{self._template.name!r} is version {self._template.version}",
                field="payload",
            )
        values: Dict[str, float] = {}
        for (name, kind, scale), raw in zip(self._fields, unpacked[1:]):
            if kind.is_float:
                values[name] = float(raw)
            elif scale != 1.0:
                values[name] = raw * scale
            else:
                values[name] = int(raw)
        return values

    # ------------------------------------------------------------- batch

    def encode_batch(self, columns: Mapping[str, np.ndarray]) -> bytes:
        """Pack aligned field columns into N concatenated wire frames."""
        known = self._template.field_names
        unknown = set(columns) - set(known)
        if unknown:
            raise TelemetryError(
                f"unknown column(s) for template {self._template.name!r}: "
                f"{sorted(unknown)}"
            )
        missing = set(known) - set(columns)
        if missing:
            raise TelemetryError(
                f"missing column(s) for template {self._template.name!r}: "
                f"{sorted(missing)}"
            )
        arrays = {
            name: np.asarray(columns[name]) for name in known
        }
        lengths = {array.shape for array in arrays.values()}
        if len(lengths) > 1 or any(array.ndim != 1 for array in arrays.values()):
            raise TelemetryError(
                "uplink columns must be aligned 1-D arrays, got shapes "
                f"{sorted(str(shape) for shape in lengths)}"
            )
        n_uplinks = len(next(iter(arrays.values())))
        records = np.empty(n_uplinks, dtype=self._dtype)
        records["_version"] = self._template.version
        for name, kind, scale in self._fields:
            column = arrays[name]
            if kind.is_float:
                # Each iteration writes one whole struct field (a full
                # vectorized column), not one element.
                records[name] = column.astype(  # reprolint: disable=RPR103
                    np.float64, copy=False
                )
                continue
            if scale == 1.0 and np.issubdtype(column.dtype, np.integer):
                raw = column
            else:
                as_float = column.astype(np.float64, copy=False)
                if not np.all(np.isfinite(as_float)):
                    raise TelemetryError(
                        f"column {name!r} carries non-finite values"
                    )
                raw = np.rint(as_float / scale)
            if n_uplinks and (
                int(raw.min()) < kind.raw_min or int(raw.max()) > kind.raw_max
            ):
                raise TelemetryError(
                    f"column {name!r} leaves the {kind.raw_min * scale:g}.."
                    f"{kind.raw_max * scale:g} domain of its wire type"
                )
            records[name] = raw  # reprolint: disable=RPR103 — whole column
        return records.tobytes()

    def decode_batch(self, payload: bytes) -> Dict[str, np.ndarray]:
        """Unpack N concatenated frames into struct-of-arrays columns.

        One ``np.frombuffer`` view plus one vectorized cast per field —
        no per-frame Python work. Raises
        :class:`~repro.errors.ProtocolError` on misaligned payloads or
        any frame whose version byte disagrees with the template.
        """
        frame = self.frame_bytes
        if len(payload) % frame:
            raise ProtocolError(
                f"payload is {len(payload)} bytes, not a multiple of the "
                f"{frame}-byte {self._template.name!r} frame — truncated?",
                field="payload",
            )
        records = np.frombuffer(payload, dtype=self._dtype)
        versions = records["_version"]
        if versions.size and not np.all(versions == self._template.version):
            bad = int(np.argmax(versions != self._template.version))
            raise ProtocolError(
                f"frame {bad} carries version byte {int(versions[bad])} but "
                f"template {self._template.name!r} is version "
                f"{self._template.version}",
                field="payload",
            )
        columns: Dict[str, np.ndarray] = {}
        for name, kind, scale in self._fields:
            raw = records[name]
            if kind.is_float:
                columns[name] = raw.astype(np.float64)
            elif scale != 1.0:
                columns[name] = raw.astype(np.float64) * scale
            elif kind.numpy_code == "u8":
                columns[name] = raw.astype(np.uint64)
            else:
                columns[name] = raw.astype(np.int64)
        return columns


def default_codecs() -> Dict[int, UplinkCodec]:
    """Compiled codecs for every registered template, keyed by version."""
    return {
        version: UplinkCodec(template)
        for version, template in TEMPLATE_REGISTRY.items()
    }


def decode_uplink_batch(
    payload: bytes, codecs: Mapping[int, UplinkCodec]
) -> Tuple[int, Dict[str, np.ndarray]]:
    """Dispatch a binary batch on its leading version byte and decode it.

    All frames of one batch must share one template (frame sizes differ
    across templates, so a mixed batch cannot even be framed); the codec
    whose version matches byte 0 decodes the whole payload. Returns
    ``(version, columns)``.
    """
    if not payload:
        raise ProtocolError("telemetry payload is empty", field="payload")
    version = payload[0]
    codec = codecs.get(version)
    if codec is None:
        raise ProtocolError(
            f"unknown telemetry template version {version}; known: "
            f"{sorted(codecs)}",
            field="payload",
        )
    return version, codec.decode_batch(payload)
