"""Device-fleet uplink simulator: seeded traffic through the real codec.

The delay-analysis companion study (PAPERS.md, arXiv 2207.01730) models
periodic and bursty sensor reporting; this module replays exactly those
arrival shapes against the ingest tier. A
:class:`DeviceFleetSimulator` owns a *truth* :class:`~repro.fleet.state.
FleetState` (optionally evolved by a :class:`~repro.fleet.drift.
FleetDrift`), and each ``tick()`` emits one binary uplink batch encoded
with the production codec — the same bytes a real device fleet would put
on the wire, including (when enabled) measurement noise, dropped uplinks
(sequence gaps at the receiver) and duplicated frames.

Reporting modes per tick:

* ``periodic`` — every link reports exactly once;
* ``jittered`` — every link reports with probability ``report_prob``
  (independent per tick, the Bernoulli thinning of a periodic process);
* ``bursty`` — a link stays silent except with probability
  ``burst_prob``, when it emits ``burst_len`` consecutive readings.

All randomness is drawn from seeded :class:`~repro.sim.rng.RngStreams`
substreams, so a simulator is bit-reproducible given (seed, mode, state).

:class:`TelemetrySnrSource` adapts a simulator + ingestor pair to the
fleet runner's SNR-source interface (``step(state)`` +
``step_interval_s``), making *measured* state a drop-in replacement for
the synthetic drift model in :func:`~repro.fleet.runner.run_fleet`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TelemetryError
from ..fleet.drift import FleetDrift
from ..fleet.state import FleetState
from ..sim.rng import RngStreams
from .codec import UplinkCodec
from .ingest import IngestReport, TelemetryIngestor
from .template import PayloadTemplate, UPLINK_TEMPLATE_V1

__all__ = [
    "DeviceFleetSimulator",
    "TelemetrySnrSource",
]

#: Wire span of the 16-bit uplink sequence counter.
_SEQ_SPAN = 1 << 16

#: Reporting modes a simulator understands.
_MODES = ("periodic", "jittered", "bursty")


class DeviceFleetSimulator:
    """Emits seeded uplink batches from a truth fleet state.

    The simulator holds the per-device sequence counters (64-bit
    internally, wrapped to 16 bits on the wire — sessions longer than
    65,536 reports per link would need receiver-side unwrapping, which
    the ingestor deliberately does not do). ``drop_prob`` consumes
    sequence numbers without emitting the frame, which is what produces
    receiver-visible gaps; ``duplicate_prob`` re-emits a frame verbatim.
    """

    def __init__(
        self,
        truth: FleetState,
        template: PayloadTemplate = UPLINK_TEMPLATE_V1,
        mode: str = "periodic",
        seed: int = 0,
        report_prob: float = 0.8,
        burst_prob: float = 0.1,
        burst_len: int = 5,
        noise_db: float = 0.0,
        drop_prob: float = 0.0,
        duplicate_prob: float = 0.0,
        drift: Optional[FleetDrift] = None,
    ) -> None:
        if mode not in _MODES:
            raise TelemetryError(
                f"unknown reporting mode {mode!r}; valid: {list(_MODES)}"
            )
        for name, prob in (
            ("report_prob", report_prob),
            ("burst_prob", burst_prob),
            ("drop_prob", drop_prob),
            ("duplicate_prob", duplicate_prob),
        ):
            if not 0.0 <= prob <= 1.0:
                raise TelemetryError(
                    f"{name} must be in [0, 1], got {prob!r}"
                )
        if burst_len < 1:
            raise TelemetryError(
                f"burst_len must be >= 1, got {burst_len!r}"
            )
        if noise_db < 0:
            raise TelemetryError(
                f"noise_db must be >= 0, got {noise_db!r}"
            )
        self.truth = truth
        self.mode = mode
        self.seed = int(seed)
        self.report_prob = float(report_prob)
        self.burst_prob = float(burst_prob)
        self.burst_len = int(burst_len)
        self.noise_db = float(noise_db)
        self.drop_prob = float(drop_prob)
        self.duplicate_prob = float(duplicate_prob)
        self._drift = drift
        self._codec = UplinkCodec(template)
        self._rng = RngStreams(self.seed).stream("telemetry-sim")
        self._seq = np.zeros(len(truth), dtype=np.int64)
        self._n_ticks = 0

    @property
    def codec(self) -> UplinkCodec:
        """The compiled wire codec frames are emitted through."""
        return self._codec

    @property
    def n_ticks(self) -> int:
        """Ticks emitted so far."""
        return self._n_ticks

    def _emitting_uplinks(self) -> np.ndarray:
        """Per-uplink link indices this tick (repeated for bursts)."""
        n_links = len(self.truth)
        if self.mode == "periodic":
            return np.arange(n_links, dtype=np.int64)
        if self.mode == "jittered":
            reporting = self._rng.random(n_links) < self.report_prob
            return np.flatnonzero(reporting).astype(np.int64)
        bursting = np.flatnonzero(
            self._rng.random(n_links) < self.burst_prob
        ).astype(np.int64)
        return np.repeat(bursting, self.burst_len)

    def tick(self) -> bytes:
        """Advance one reporting interval and emit its encoded batch.

        Steps the attached drift first (when present), so the batch
        reports the *current* channel. May legitimately return ``b""``
        in bursty/jittered modes when no device reports this tick.
        """
        if self._drift is not None:
            self._drift.step(self.truth)
        self._n_ticks += 1
        link = self._emitting_uplinks()
        if len(link) == 0:
            return b""
        # Consecutive per-link sequence numbers, vectorized: within the
        # (sorted) link array, an uplink's offset is its position minus
        # the start of its link's run.
        run_start = np.concatenate(([True], link[1:] != link[:-1]))
        starts = np.flatnonzero(run_start)
        counts = np.diff(np.append(starts, len(link)))
        offsets = np.arange(len(link)) - np.repeat(starts, counts)
        seq = self._seq[link] + offsets
        np.add.at(self._seq, link[run_start], counts)
        measured_snr_db = self.truth.snr_db[link]
        if self.noise_db > 0.0:
            measured_snr_db = measured_snr_db + self._rng.normal(
                0.0, self.noise_db, size=len(link)
            )
        if self.drop_prob > 0.0:
            kept = self._rng.random(len(link)) >= self.drop_prob
            link = link[kept]
            seq = seq[kept]
            measured_snr_db = measured_snr_db[kept]
            if len(link) == 0:
                return b""
        columns = self._columns(link, seq % _SEQ_SPAN, measured_snr_db)
        payload = self._codec.encode_batch(columns)
        if self.duplicate_prob > 0.0:
            duplicated = self._rng.random(len(link)) < self.duplicate_prob
            if duplicated.any():
                repeats = duplicated.astype(np.int64) + 1
                frames = np.frombuffer(
                    payload, dtype=np.uint8
                ).reshape(len(link), self._codec.frame_bytes)
                payload = np.repeat(frames, repeats, axis=0).tobytes()
        return payload

    def _columns(
        self,
        link: np.ndarray,
        seq: np.ndarray,
        measured_snr_db: np.ndarray,
    ) -> dict:
        """Template field columns for one tick's measurements."""
        names = set(self._codec.template.field_names)
        columns = {"link_id": link, "seq": seq}
        if "snr_db" in names:
            columns["snr_db"] = measured_snr_db
        if "rssi_dbm" in names:
            noise_dbm = self.truth.noise_dbm[link]
            columns["rssi_dbm"] = noise_dbm + measured_snr_db
            columns["noise_dbm"] = noise_dbm
        if "plr" in names:
            columns["plr"] = np.zeros(len(link))
        missing = names - set(columns)
        if missing:
            raise TelemetryError(
                f"simulator cannot populate template field(s) "
                f"{sorted(missing)}"
            )
        return columns


class TelemetrySnrSource:
    """Adapter: measured telemetry as the fleet runner's SNR source.

    Each ``step(state)`` emits one simulator tick, ingests it, and
    leaves ``state.snr_db`` holding the estimator's view — the same
    contract as :meth:`FleetDrift.step`, so :func:`~repro.fleet.runner.
    run_fleet` accepts either. The state passed to ``step`` must be the
    ingestor's own state (the estimator writes *that* object in place).
    """

    def __init__(
        self,
        simulator: DeviceFleetSimulator,
        ingestor: TelemetryIngestor,
        step_interval_s: float = 1.0,
    ) -> None:
        if step_interval_s <= 0:
            raise TelemetryError(
                f"step_interval_s must be positive, got {step_interval_s!r}"
            )
        self.simulator = simulator
        self.ingestor = ingestor
        self.step_interval_s = float(step_interval_s)
        self.last_report: Optional[IngestReport] = None

    def step(self, state: FleetState) -> np.ndarray:
        """Emit + ingest one tick and return the updated SNR column."""
        if state is not self.ingestor.state:
            raise TelemetryError(
                "TelemetrySnrSource must step the state its ingestor is "
                "bound to — measured updates land on that object"
            )
        payload = self.simulator.tick()
        if payload:
            self.last_report = self.ingestor.ingest(payload)
        return state.snr_db
