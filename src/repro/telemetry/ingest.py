"""Uplink ingestion: decode, per-source sequence tracking, state update.

The :class:`TelemetryIngestor` is the receiver side of the telemetry
loop: a binary (or JSON) uplink batch goes through one vectorized decode,
one vectorized per-link sequence-tracking pass, and one vectorized
estimator apply — then ``FleetState.snr_db`` reflects what the devices
measured. The serve tier submits batches through the oracle service's
bounded queue, so backpressure (reject + ``Retry-After``) is inherited
from the same admission discipline every other request type uses.

Sequence tracking is per source link on the uplink's ``seq`` counter:

* ``seq`` above the link's running maximum → **accepted** (and any
  skipped numbers are counted as a **gap**, except on a link's very
  first contact);
* ``seq`` equal to the running maximum → **duplicate** (retransmission);
* ``seq`` below it → **out-of-order** (late arrival; dropped, because
  the estimate has already folded in newer measurements).

The whole classification — including *within-batch* ordering, where one
batch may carry many uplinks per link — is computed without a Python
loop: measurements are stably sorted by link, each link segment is
seeded with the stored running maximum, and a single combined-key
``np.maximum.accumulate`` yields every measurement's "highest sequence
seen before me". Only the accepted, strictly seq-increasing subsequence
reaches the estimator.

``seq`` is a 16-bit wire counter, and the ingestor **unwraps** it with a
per-link epoch counter (RFC 1982-style serial arithmetic): each uplink's
sequence is interpreted as the signed 16-bit distance from the link's
stored unwrapped maximum, so a counter that overflows 65535 → 0 keeps
classifying correctly and sessions longer than 65,536 uplinks per link
just keep going — ``epoch_wraps`` in the totals counts the rollovers.
The remaining limitation is the serial-arithmetic one: a link may
advance at most 32,767 sequence numbers past its stored maximum within
one batch; a larger jump is indistinguishable from a late arrival and
classifies as out-of-order (see ``docs/TELEMETRY.md``).
"""

# reprolint: hot-path — per-batch ingest apply timed by BENCH_telemetry.json

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ProtocolError, TelemetryError
from ..fleet.state import FleetState
from ..serve.protocol import MAX_TELEMETRY_UPLINKS
from .codec import UplinkCodec, decode_uplink_batch, default_codecs
from .estimator import SnrEstimator

__all__ = [
    "IngestReport",
    "TelemetryIngestor",
]

#: Width of the wire sequence counter (and the derived wrap constants).
_SEQ_BITS = 16
_SEQ_MASK = (1 << _SEQ_BITS) - 1
_SEQ_HALF = 1 << (_SEQ_BITS - 1)

#: Combined-key stride of the sequence tracker: ``link * stride + v``
#: must order (link, v) pairs lexicographically, so the stride exceeds
#: the largest per-batch key ``v`` (an unwrap distance shifted by
#: ``_SEQ_HALF``, at most ``_SEQ_MASK + _SEQ_HALF < 2**17``).
_LINK_STRIDE = np.int64(1) << 17

#: Counter names accumulated across batches (the ``telemetry_*`` metric
#: suffixes the serve tier publishes).
_TOTAL_KEYS = (
    "batches",
    "uplinks",
    "accepted",
    "duplicate",
    "out_of_order",
    "gap_uplinks",
    "unknown_link",
    "epoch_wraps",
)


@dataclass(frozen=True)
class IngestReport:
    """What one ingested batch did: per-class counts and stage timings."""

    n_uplinks: int
    n_accepted: int
    n_duplicate: int
    n_out_of_order: int
    n_gap_uplinks: int
    n_unknown_link: int
    n_links_updated: int
    template_version: int
    decode_ms: float
    apply_ms: float
    n_epoch_wraps: int = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (the ``POST /v1/telemetry`` response body)."""
        return {
            "n_uplinks": self.n_uplinks,
            "n_accepted": self.n_accepted,
            "n_duplicate": self.n_duplicate,
            "n_out_of_order": self.n_out_of_order,
            "n_gap_uplinks": self.n_gap_uplinks,
            "n_unknown_link": self.n_unknown_link,
            "n_links_updated": self.n_links_updated,
            "n_epoch_wraps": self.n_epoch_wraps,
            "template_version": self.template_version,
            "decode_ms": self.decode_ms,
            "apply_ms": self.apply_ms,
        }


class TelemetryIngestor:
    """Turns uplink batches into fleet-state updates, with bookkeeping.

    One lock guards the sequence table, the cumulative totals, and the
    bound state/estimator pair — a batch's classify → estimate → record
    pipeline is atomic with respect to concurrent batches and snapshot
    reads. Decoding happens outside the lock (it touches only the
    immutable payload).
    """

    def __init__(
        self,
        state: FleetState,
        estimator: Optional[SnrEstimator] = None,
        codecs: Optional[Mapping[int, UplinkCodec]] = None,
        max_batch_uplinks: int = MAX_TELEMETRY_UPLINKS,
    ) -> None:
        if max_batch_uplinks < 1:
            raise TelemetryError(
                f"max_batch_uplinks must be >= 1, got {max_batch_uplinks!r}"
            )
        self._state = state
        self._estimator = estimator if estimator is not None else SnrEstimator()
        self._codecs = dict(codecs) if codecs is not None else default_codecs()
        self._max_batch_uplinks = int(max_batch_uplinks)
        #: Per-link running maximum of the *unwrapped* sequence number
        #: (epoch * 2**16 + wire seq); −1 marks a link never heard from.
        self._last_seq = np.full(len(state), -1, dtype=np.int64)
        self._totals: Dict[str, int] = {key: 0 for key in _TOTAL_KEYS}
        self._now_s = 0.0
        self._lock = threading.Lock()

    @property
    def state(self) -> FleetState:
        """The fleet state this ingestor feeds."""
        return self._state

    @property
    def estimator(self) -> SnrEstimator:
        """The estimator folding measurements into the state."""
        return self._estimator

    # ------------------------------------------------------------- ingest

    def ingest(
        self, payload: bytes, now_s: Optional[float] = None
    ) -> IngestReport:
        """Decode and apply one binary uplink batch.

        ``now_s`` is the receive timestamp driving staleness bookkeeping
        (the serve tier passes ``time.monotonic()``); omitted, an
        internal counter advances one second per batch so offline replays
        stay deterministic.
        """
        started = time.perf_counter()
        version, columns = decode_uplink_batch(payload, self._codecs)
        decode_ms = (time.perf_counter() - started) * 1e3
        n_uplinks = len(next(iter(columns.values())))
        if n_uplinks > self._max_batch_uplinks:
            raise ProtocolError(
                f"a telemetry batch carries at most "
                f"{self._max_batch_uplinks} uplinks, got {n_uplinks}",
                field="payload",
            )
        link, seq, snr_db = self._measurement_columns(columns, version)
        return self._apply(link, seq, snr_db, version, now_s, decode_ms)

    def ingest_uplinks(
        self,
        uplinks: Sequence[Mapping[str, object]],
        template_version: int,
        now_s: Optional[float] = None,
    ) -> IngestReport:
        """Apply one JSON uplink batch (field mappings + template version).

        The uplinks are packed through the wire codec and decoded back
        before applying, so a JSON batch and its binary equivalent
        quantize identically — fixed-point fields lose exactly the same
        precision either way.
        """
        codec = self._codecs.get(template_version)
        if codec is None:
            raise ProtocolError(
                f"unknown telemetry template version {template_version}; "
                f"known: {sorted(self._codecs)}",
                field="template_version",
            )
        if len(uplinks) > self._max_batch_uplinks:
            raise ProtocolError(
                f"a telemetry batch carries at most "
                f"{self._max_batch_uplinks} uplinks, got {len(uplinks)}",
                field="uplinks",
            )
        names = codec.template.field_names
        started = time.perf_counter()
        try:
            columns = {
                name: np.asarray([uplink[name] for uplink in uplinks])
                for name in names
            }
        except KeyError as exc:
            raise ProtocolError(
                f"an uplink is missing field {exc.args[0]!r} of template "
                f"{codec.template.name!r}",
                field=str(exc.args[0]),
            ) from exc
        for uplink in uplinks:
            unknown = set(uplink) - set(names)
            if unknown:
                raise ProtocolError(
                    f"unknown uplink field(s) for template "
                    f"{codec.template.name!r}: {sorted(unknown)}",
                    field=sorted(unknown)[0],
                )
        try:
            payload = codec.encode_batch(columns)
        except TelemetryError as exc:
            raise ProtocolError(str(exc), field="uplinks") from exc
        columns = codec.decode_batch(payload)
        decode_ms = (time.perf_counter() - started) * 1e3
        link, seq, snr_db = self._measurement_columns(
            columns, template_version
        )
        return self._apply(
            link, seq, snr_db, template_version, now_s, decode_ms
        )

    # ---------------------------------------------------------- internals

    def _measurement_columns(
        self, columns: Mapping[str, np.ndarray], version: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Extract (link, seq, snr) measurement arrays from decoded columns."""
        link = columns.get("link_id")
        seq = columns.get("seq")
        if link is None or seq is None:
            raise TelemetryError(
                f"template version {version} carries no link_id/seq fields; "
                "the ingestor cannot track its sources"
            )
        if "snr_db" in columns:
            snr_db = columns["snr_db"]
        elif "rssi_dbm" in columns and "noise_dbm" in columns:
            snr_db = columns["rssi_dbm"] - columns["noise_dbm"]
        else:
            raise TelemetryError(
                f"template version {version} carries neither snr_db nor "
                "rssi_dbm+noise_dbm; no SNR measurement can be derived"
            )
        return (
            np.asarray(link, dtype=np.int64),
            np.asarray(seq, dtype=np.int64),
            np.asarray(snr_db, dtype=np.float64),
        )

    def _apply(
        self,
        link: np.ndarray,
        seq: np.ndarray,
        snr_db: np.ndarray,
        version: int,
        now_s: Optional[float],
        decode_ms: float,
    ) -> IngestReport:
        started = time.perf_counter()
        with self._lock:
            if now_s is None:
                self._now_s += 1.0
            else:
                self._now_s = float(now_s)
            tick_s = self._now_s
            n_uplinks = len(link)
            known = (link >= 0) & (link < len(self._state))
            n_unknown = int(n_uplinks - int(known.sum()))
            if n_unknown:
                link = link[known]
                seq = seq[known]
                snr_db = snr_db[known]
            n_accepted = n_duplicate = n_out_of_order = 0
            n_gap = n_updated = n_epoch_wraps = 0
            if len(link):
                order = np.argsort(link, kind="stable")
                links = link[order]
                seqs = seq[order]
                values = snr_db[order]
                # Unwrap each wire sequence against its link's stored
                # unwrapped maximum (serial arithmetic): the signed
                # 16-bit distance from the anchor, so a 65535 → 0
                # rollover reads as +1, not −65535. Links never heard
                # from have no anchor and use the raw sequence (epoch 0).
                anchors = self._last_seq[links]
                known_anchor = anchors >= 0
                delta = (
                    (seqs - (anchors & _SEQ_MASK) + _SEQ_HALF) & _SEQ_MASK
                ) - _SEQ_HALF
                unwrapped = np.where(known_anchor, anchors + delta, seqs)
                # Per-batch combined sort keys stay bounded (< 2**17):
                # anchored members use delta + half, first contacts the
                # raw sequence + half — both order exactly as `unwrapped`
                # does within a link segment.
                relative = np.where(known_anchor, delta, seqs) + _SEQ_HALF
                combined = links * _LINK_STRIDE + relative
                new_segment = np.empty(len(links), dtype=bool)
                new_segment[0] = True
                np.not_equal(links[1:], links[:-1], out=new_segment[1:])
                # An anchored link's seed sits at distance 0 (duplicate
                # of the stored maximum); an unseeded link's sits one
                # below every possible first-contact key.
                seeded = links * _LINK_STRIDE + np.where(
                    known_anchor,
                    np.int64(_SEQ_HALF),
                    np.int64(_SEQ_HALF - 1),
                )
                shifted = np.empty_like(combined)
                shifted[0] = np.iinfo(np.int64).min
                shifted[1:] = combined[:-1]
                # Segment isolation needs no masking: a segment's seed
                # (>= link*stride + half - 1) always exceeds every
                # combined key of smaller links, so the global running
                # max restarts at each segment boundary by construction.
                highest_before = np.maximum.accumulate(
                    np.where(new_segment, seeded, shifted)
                )
                accepted = combined > highest_before
                duplicate = combined == highest_before
                first_contact = (
                    highest_before == links * _LINK_STRIDE + (_SEQ_HALF - 1)
                )
                # Combined-key differences equal unwrapped-sequence
                # differences within a segment (the link base and the
                # half shift cancel), so the gap count survives wraps.
                gaps = np.where(
                    accepted & ~first_contact,
                    combined - highest_before - 1,
                    0,
                )
                n_accepted = int(accepted.sum())
                n_duplicate = int(duplicate.sum())
                n_out_of_order = len(links) - n_accepted - n_duplicate
                n_gap = int(gaps.sum())
                if n_accepted:
                    accepted_links = links[accepted]
                    wrap_links = np.unique(accepted_links)
                    epochs_before = self._last_seq[wrap_links] >> _SEQ_BITS
                    np.maximum.at(
                        self._last_seq, accepted_links, unwrapped[accepted]
                    )
                    epochs_after = self._last_seq[wrap_links] >> _SEQ_BITS
                    n_epoch_wraps = int(
                        (
                            epochs_after
                            - np.where(epochs_before >= 0, epochs_before, 0)
                        ).sum()
                    )
                    n_updated = self._estimator.apply(
                        self._state,
                        accepted_links,
                        values[accepted],
                        now_s=tick_s,
                    )
            self._estimator.decay_stale(self._state, tick_s)
            totals = self._totals
            totals["batches"] += 1
            totals["uplinks"] += n_uplinks
            totals["accepted"] += n_accepted
            totals["duplicate"] += n_duplicate
            totals["out_of_order"] += n_out_of_order
            totals["gap_uplinks"] += n_gap
            totals["unknown_link"] += n_unknown
            totals["epoch_wraps"] += n_epoch_wraps
        apply_ms = (time.perf_counter() - started) * 1e3
        return IngestReport(
            n_uplinks=n_uplinks,
            n_accepted=n_accepted,
            n_duplicate=n_duplicate,
            n_out_of_order=n_out_of_order,
            n_gap_uplinks=n_gap,
            n_unknown_link=n_unknown,
            n_links_updated=n_updated,
            template_version=version,
            decode_ms=decode_ms,
            apply_ms=apply_ms,
            n_epoch_wraps=n_epoch_wraps,
        )

    # ----------------------------------------------------------- observers

    def totals(self) -> Dict[str, int]:
        """Cumulative per-class uplink counts across all batches."""
        with self._lock:
            return dict(self._totals)

    def state_snapshot(self) -> Dict[str, object]:
        """JSON-ready fleet-measurement summary (``GET /v1/telemetry/state``).

        Reports aggregate SNR statistics rather than per-link columns —
        a 10,000-link fleet stays a small constant-size response.
        """
        with self._lock:
            snr_db = self._state.snr_db
            base_db = self._state.base_snr_db
            measured = self._estimator.measured_mask()
            if measured is None or not measured.any():
                innovation_db = 0.0
            else:
                innovation_db = float(
                    np.abs(snr_db[measured] - base_db[measured]).mean()
                )
            return {
                "n_links": len(self._state),
                "n_links_measured": self._estimator.n_links_measured,
                "snr_mean_db": float(snr_db.mean()),
                "snr_min_db": float(snr_db.min()),
                "snr_max_db": float(snr_db.max()),
                "base_snr_mean_db": float(base_db.mean()),
                "mean_abs_innovation_db": innovation_db,
                "estimator": self._estimator.snapshot(),
                "totals": dict(self._totals),
            }
