"""Declarative binary payload templates for device uplinks.

A sensor node reports its link measurements in a handful of packed bytes,
not JSON — the measurement study this subsystem models (PAPERS.md,
arXiv 1411.5210) collects RSSI/noise/loss observations over exactly such
constrained uplinks. A :class:`PayloadTemplate` describes that wire
format declaratively: an ordered tuple of :class:`PayloadField` entries
(name, width/signedness kind, fixed-point scale) plus a template-wide
endianness and a version byte. The codec layer
(:mod:`repro.telemetry.codec`) compiles a template into both a scalar
``struct`` codec and a vectorized numpy batch decoder; this module only
*describes* frames and owns the field-kind table both compilers share.

Wire layout of one frame::

    byte 0        template version (0–255)
    bytes 1..N    the fields, in declaration order, packed with the
                  template's endianness and no padding

Integer fields carry fixed-point quantities: the decoded value is
``raw * scale`` (e.g. an ``i16`` RSSI with ``scale=0.01`` spans
±327.67 dBm at 0.01 dBm resolution). Float fields must keep ``scale=1``
— they already carry their value exactly, and the *exact* uplink template
below relies on that for the bit-for-bit estimator invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from ..errors import TelemetryError

__all__ = [
    "FIELD_KINDS",
    "MAX_TEMPLATE_VERSION",
    "PayloadField",
    "PayloadTemplate",
    "TEMPLATE_REGISTRY",
    "UPLINK_TEMPLATE_EXACT",
    "UPLINK_TEMPLATE_V1",
]

#: Largest representable template version (one header byte).
MAX_TEMPLATE_VERSION = 255


@dataclass(frozen=True)
class _FieldKind:
    """One wire type: struct/numpy codes, width, and the raw value domain."""

    struct_code: str
    numpy_code: str
    width_bytes: int
    raw_min: int
    raw_max: int
    is_float: bool


def _int_kind(struct_code: str, numpy_code: str, width_bytes: int,
              signed: bool) -> _FieldKind:
    """Build an integer field kind from its width and signedness."""
    span = 1 << (8 * width_bytes)
    if signed:
        return _FieldKind(struct_code, numpy_code, width_bytes,
                          -(span // 2), span // 2 - 1, is_float=False)
    return _FieldKind(struct_code, numpy_code, width_bytes, 0, span - 1,
                      is_float=False)


#: Field kind name → wire type. Raw bounds are the representable integer
#: range (floats use them only as a formality; range checking for floats
#: is finiteness, not magnitude).
FIELD_KINDS: Mapping[str, _FieldKind] = {
    "u8": _int_kind("B", "u1", 1, signed=False),
    "u16": _int_kind("H", "u2", 2, signed=False),
    "u32": _int_kind("I", "u4", 4, signed=False),
    "u64": _int_kind("Q", "u8", 8, signed=False),
    "i8": _int_kind("b", "i1", 1, signed=True),
    "i16": _int_kind("h", "i2", 2, signed=True),
    "i32": _int_kind("i", "i4", 4, signed=True),
    "i64": _int_kind("q", "i8", 8, signed=True),
    "f32": _FieldKind("f", "f4", 4, 0, 0, is_float=True),
    "f64": _FieldKind("d", "f8", 8, 0, 0, is_float=True),
}


@dataclass(frozen=True)
class PayloadField:
    """One field of an uplink frame: a named, scaled wire quantity.

    ``scale`` is the fixed-point quantum of integer kinds — decoded value
    = ``raw * scale``, encoded raw = ``round(value / scale)`` — and must
    stay 1 for float kinds (they carry their value verbatim).
    """

    name: str
    kind: str
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise TelemetryError(
                f"field name must be an identifier, got {self.name!r}"
            )
        if self.name.startswith("_"):
            raise TelemetryError(
                f"field names starting with '_' are reserved, got {self.name!r}"
            )
        if self.kind not in FIELD_KINDS:
            raise TelemetryError(
                f"unknown field kind {self.kind!r}; valid: "
                f"{sorted(FIELD_KINDS)}"
            )
        if not self.scale > 0:
            raise TelemetryError(
                f"field {self.name!r} scale must be positive, got {self.scale!r}"
            )
        if FIELD_KINDS[self.kind].is_float and self.scale != 1.0:
            raise TelemetryError(
                f"float field {self.name!r} must keep scale=1 "
                f"(floats carry their value verbatim), got {self.scale!r}"
            )

    @property
    def width_bytes(self) -> int:
        """Packed width of this field on the wire."""
        return FIELD_KINDS[self.kind].width_bytes


@dataclass(frozen=True)
class PayloadTemplate:
    """An ordered, versioned frame layout the codecs compile.

    Frames are fixed-size: one version byte plus the packed fields in
    declaration order, no padding. Two templates with the same version
    must never coexist in one registry — the version byte is the only
    in-band dispatch key a receiver has.
    """

    name: str
    version: int
    fields: Tuple[PayloadField, ...]
    endianness: str = "big"

    def __post_init__(self) -> None:
        if not 0 <= self.version <= MAX_TEMPLATE_VERSION:
            raise TelemetryError(
                f"template version must be 0..{MAX_TEMPLATE_VERSION}, "
                f"got {self.version!r}"
            )
        if not self.fields:
            raise TelemetryError(
                f"template {self.name!r} declares no fields"
            )
        names = [field.name for field in self.fields]
        if len(set(names)) != len(names):
            raise TelemetryError(
                f"template {self.name!r} has duplicate field names: {names}"
            )
        if self.endianness not in ("big", "little"):
            raise TelemetryError(
                f"endianness must be 'big' or 'little', got {self.endianness!r}"
            )

    @property
    def frame_bytes(self) -> int:
        """Size of one encoded frame (version byte + packed fields)."""
        return 1 + sum(field.width_bytes for field in self.fields)

    @property
    def field_names(self) -> Tuple[str, ...]:
        """Field names in wire order."""
        return tuple(field.name for field in self.fields)

    @property
    def struct_format(self) -> str:
        """The ``struct`` format string of one whole frame."""
        prefix = ">" if self.endianness == "big" else "<"
        return prefix + "B" + "".join(
            FIELD_KINDS[field.kind].struct_code for field in self.fields
        )

    def numpy_dtype(self) -> np.dtype:
        """Structured dtype of one frame (``_version`` + every field)."""
        prefix = ">" if self.endianness == "big" else "<"
        return np.dtype(
            [("_version", "u1")]
            + [
                (field.name, prefix + FIELD_KINDS[field.kind].numpy_code)
                for field in self.fields
            ]
        )


#: The compact production uplink: fixed-point RSSI/noise at 0.01 dBm
#: resolution and packet loss at 1e-4 resolution — 13 bytes per frame.
UPLINK_TEMPLATE_V1 = PayloadTemplate(
    name="uplink-v1",
    version=1,
    fields=(
        PayloadField("link_id", "u32"),
        PayloadField("seq", "u16"),
        PayloadField("rssi_dbm", "i16", scale=0.01),
        PayloadField("noise_dbm", "i16", scale=0.01),
        PayloadField("plr", "u16", scale=1e-4),
    ),
)

#: The lossless diagnostic uplink: SNR and PLR as raw float64 — 23 bytes
#: per frame. This is what makes the pinned estimator invariant testable:
#: a noiseless f64 SNR survives encode→decode→estimate bit-for-bit,
#: which no fixed-point field can promise.
UPLINK_TEMPLATE_EXACT = PayloadTemplate(
    name="uplink-exact",
    version=2,
    fields=(
        PayloadField("link_id", "u32"),
        PayloadField("seq", "u16"),
        PayloadField("snr_db", "f64"),
        PayloadField("plr", "f64"),
    ),
)

#: Version byte → template, the receiver-side dispatch table.
TEMPLATE_REGISTRY: Dict[int, PayloadTemplate] = {
    UPLINK_TEMPLATE_V1.version: UPLINK_TEMPLATE_V1,
    UPLINK_TEMPLATE_EXACT.version: UPLINK_TEMPLATE_EXACT,
}
