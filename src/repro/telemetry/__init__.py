"""Streaming uplink telemetry: codecs, ingestion, estimation, simulation.

The paper's configuration guidelines assume the oracle knows each link's
SNR; this package closes the loop that produces that knowledge from what
devices actually measure::

    simulator   seeded device fleet replaying uplinks  (telemetry.simulator)
      → codec   declarative binary payload templates, scalar struct codec
                and one-pass vectorized batch decoder  (telemetry.template,
                telemetry.codec)
        → ingest  per-source sequence tracking (duplicates, reordering,
                  gaps) feeding only fresh measurements forward
                  (telemetry.ingest)
          → estimator  vectorized EWMA with outlier clamping and
                       staleness decay, writing FleetState.snr_db
                       (telemetry.estimator)
            → engine   the existing fleet solver consumes measured state
                       unchanged (repro.fleet)

The serve tier exposes the receiving end as ``POST /v1/telemetry``
(binary or JSON batches) with ``telemetry_*`` counters in ``/metrics``;
``wsnlink telemetry`` drives the simulator/codec/ingest pipeline from
the command line. Wire format and estimator semantics are documented in
``docs/TELEMETRY.md``; decode/ingest throughput is pinned by
``benchmarks/bench_telemetry.py`` (``BENCH_telemetry.json``).

The pinned determinism invariant: an estimator with ``alpha=1`` fed
noiseless uplinks through the exact (float64) template reproduces the
drift-model trajectory bit-for-bit — measured state is a strict
generalization of synthetic state, not an approximation of it.
"""

from .codec import UplinkCodec, decode_uplink_batch, default_codecs
from .estimator import SnrEstimator
from .ingest import IngestReport, TelemetryIngestor
from .simulator import DeviceFleetSimulator, TelemetrySnrSource
from .template import (
    FIELD_KINDS,
    MAX_TEMPLATE_VERSION,
    PayloadField,
    PayloadTemplate,
    TEMPLATE_REGISTRY,
    UPLINK_TEMPLATE_EXACT,
    UPLINK_TEMPLATE_V1,
)

__all__ = [
    "DeviceFleetSimulator",
    "FIELD_KINDS",
    "IngestReport",
    "MAX_TEMPLATE_VERSION",
    "PayloadField",
    "PayloadTemplate",
    "SnrEstimator",
    "TEMPLATE_REGISTRY",
    "TelemetryIngestor",
    "TelemetrySnrSource",
    "UPLINK_TEMPLATE_EXACT",
    "UPLINK_TEMPLATE_V1",
    "UplinkCodec",
    "decode_uplink_batch",
    "default_codecs",
]
