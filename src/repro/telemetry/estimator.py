"""Measurement-driven SNR estimation: vectorized EWMA over fleet columns.

The fleet engine solves against ``FleetState.snr_db``; until now that
column was written only by the synthetic :class:`~repro.fleet.drift.
FleetDrift`. :class:`SnrEstimator` replaces it with *measured* state: a
batch of decoded uplinks updates every reported link's estimate in one
vectorized pass, however many measurements each link contributed.

Per link, the estimate follows the standard exponentially-weighted moving
average ``e ← (1−α)·e + α·x`` applied once per measurement *in sequence
order*. A batch that carries k measurements for one link therefore lands
on the closed form

    e' = (1−α)^k · e + Σ_j α (1−α)^(k−1−j) · x_j

which this module evaluates for all links at once with a segmented
``np.add.reduceat`` — no Python loop over links or measurements.

Two robustness features, both off by default and both *disabled* in the
pinned bit-for-bit configuration (``α = 1``, no clamp, no staleness):

* **outlier clamping** — each measurement's innovation is clamped to
  ``±clamp_db`` around the link's pre-batch estimate, so one corrupt
  reading cannot teleport a link;
* **staleness decay** — a link that has not reported for longer than
  ``staleness_s`` relaxes exponentially (time constant ``decay_tau_s``)
  from its last measured estimate toward its long-run ``base_snr_db``.
  The decayed value is recomputed from the stored at-update estimate as
  a pure function of age, so repeated ``decay_stale`` calls never
  compound.

With ``alpha=1.0`` the closed form degenerates to pass-through of each
link's last measurement (``0**0 == 1`` keeps the single-measurement
weight exact), which is what makes a noiseless uplink stream reproduce
the drift trajectory bit-for-bit — the invariant pinned by
``tests/test_telemetry_e2e.py``.
"""

# reprolint: hot-path — vectorized estimator apply timed by BENCH_telemetry.json

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import TelemetryError
from ..fleet.state import FleetState

__all__ = [
    "SnrEstimator",
]


class SnrEstimator:
    """EWMA SNR estimator writing ``FleetState.snr_db`` in place.

    The estimator lazily binds to the first state it is applied to (its
    per-link bookkeeping columns are sized then) and refuses a state of a
    different size afterwards — mixing fleets would silently misattribute
    measurements.
    """

    def __init__(
        self,
        alpha: float = 0.25,
        clamp_db: Optional[float] = None,
        staleness_s: Optional[float] = None,
        decay_tau_s: float = 60.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise TelemetryError(
                f"alpha must be in (0, 1], got {alpha!r}"
            )
        if clamp_db is not None and not clamp_db > 0:
            raise TelemetryError(
                f"clamp_db must be positive (or None), got {clamp_db!r}"
            )
        if staleness_s is not None and not staleness_s >= 0:
            raise TelemetryError(
                f"staleness_s must be >= 0 (or None), got {staleness_s!r}"
            )
        if not decay_tau_s > 0:
            raise TelemetryError(
                f"decay_tau_s must be positive, got {decay_tau_s!r}"
            )
        self.alpha = float(alpha)
        self.clamp_db = None if clamp_db is None else float(clamp_db)
        self.staleness_s = None if staleness_s is None else float(staleness_s)
        self.decay_tau_s = float(decay_tau_s)
        self._updated_at_s: Optional[np.ndarray] = None
        self._snr_at_update: Optional[np.ndarray] = None

    # ----------------------------------------------------------- binding

    def _bind(self, state: FleetState) -> None:
        if self._updated_at_s is None:
            self._updated_at_s = np.full(len(state), -np.inf)
            self._snr_at_update = state.snr_db.copy()
        elif len(self._updated_at_s) != len(state):
            raise TelemetryError(
                f"estimator is bound to a {len(self._updated_at_s)}-link "
                f"fleet but was applied to {len(state)} links"
            )

    @property
    def n_links_measured(self) -> int:
        """Links that have received at least one measurement."""
        if self._updated_at_s is None:
            return 0
        return int(np.isfinite(self._updated_at_s).sum())

    def measured_mask(self) -> Optional[np.ndarray]:
        """Boolean per-link mask of measured links (None before binding)."""
        if self._updated_at_s is None:
            return None
        return np.isfinite(self._updated_at_s)

    # ------------------------------------------------------------- apply

    def apply(
        self,
        state: FleetState,
        link_index: np.ndarray,
        snr_db: np.ndarray,
        now_s: float,
    ) -> int:
        """Fold one batch of measurements into ``state.snr_db``.

        ``link_index``/``snr_db`` are aligned measurement arrays, already
        validated against the fleet size, in per-link sequence order
        (the ingestor's accepted subsequence guarantees this). Returns
        the number of distinct links updated.
        """
        self._bind(state)
        link_index = np.asarray(link_index, dtype=np.int64)
        snr_db = np.asarray(snr_db, dtype=np.float64)
        if link_index.shape != snr_db.shape or link_index.ndim != 1:
            raise TelemetryError(
                "link_index and snr_db must be aligned 1-D arrays, got "
                f"shapes {link_index.shape} and {snr_db.shape}"
            )
        if link_index.size == 0:
            return 0
        order = np.argsort(link_index, kind="stable")
        links = link_index[order]
        values = snr_db[order]
        new_segment = np.empty(len(links), dtype=bool)
        new_segment[0] = True
        np.not_equal(links[1:], links[:-1], out=new_segment[1:])
        starts = np.flatnonzero(new_segment)
        counts = np.diff(np.append(starts, len(links)))
        leaders = links[starts]
        estimate = state.snr_db[leaders]
        if self.clamp_db is not None:
            center = np.repeat(estimate, counts)
            values = np.clip(
                values, center - self.clamp_db, center + self.clamp_db
            )
        alpha = self.alpha
        decay = 1.0 - alpha
        position = np.arange(len(links)) - np.repeat(starts, counts)
        remaining = np.repeat(counts, counts) - 1 - position
        weights = alpha * np.power(decay, remaining)
        contribution = np.add.reduceat(weights * values, starts)
        updated = np.power(decay, counts) * estimate + contribution
        state.snr_db[leaders] = updated
        self._updated_at_s[leaders] = now_s
        self._snr_at_update[leaders] = updated
        return int(len(leaders))

    # ----------------------------------------------------------- staleness

    def decay_stale(self, state: FleetState, now_s: float) -> int:
        """Relax links silent for longer than ``staleness_s`` toward base.

        The decayed estimate is ``base + (snr_at_update − base) ·
        exp(−(age − staleness_s) / decay_tau_s)`` — a pure function of
        the stored at-update estimate and the link's age, so calling this
        repeatedly at the same ``now_s`` is idempotent. No-op (returns 0)
        when staleness handling is disabled or nothing is stale.
        """
        if self.staleness_s is None or self._updated_at_s is None:
            return 0
        age_s = now_s - self._updated_at_s
        stale = np.isfinite(self._updated_at_s) & (age_s > self.staleness_s)
        if not stale.any():
            return 0
        factor = np.exp(
            -(age_s[stale] - self.staleness_s) / self.decay_tau_s
        )
        base = state.base_snr_db[stale]
        state.snr_db[stale] = base + (
            self._snr_at_update[stale] - base
        ) * factor
        return int(stale.sum())

    # ------------------------------------------------------------- misc

    def reset(self) -> None:
        """Forget all bindings and per-link bookkeeping."""
        self._updated_at_s = None
        self._snr_at_update = None

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of the estimator's configuration and coverage."""
        return {
            "alpha": self.alpha,
            "clamp_db": self.clamp_db,
            "staleness_s": self.staleness_s,
            "decay_tau_s": self.decay_tau_s,
            "n_links_measured": self.n_links_measured,
        }
