"""Unit conversions used throughout the library.

Conventions
-----------
* Power ratios are expressed in dB; absolute powers in dBm or milliwatts.
* Time is carried in **seconds** inside the simulator; configuration fields
  and paper-facing APIs use milliseconds and are suffixed ``_ms``.
* Data sizes are carried in bytes at the framing layer and bits in rate
  computations; rates are bits per second, with ``kbps`` helpers for the
  paper's tables.

These are deliberately plain functions (no unit-object wrappers): the hot
paths of the Monte-Carlo link simulator call them per packet, and they must
also broadcast transparently over numpy arrays.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .errors import UnitsError

__all__ = [
    "Number",
    "BOLTZMANN_J_PER_K",
    "REFERENCE_TEMPERATURE_K",
    "DBM_REFERENCE_MW",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_mw",
    "mw_to_dbm",
    "dbm_to_watts",
    "watts_to_dbm",
    "ms_to_s",
    "s_to_ms",
    "us_to_s",
    "s_to_us",
    "bytes_to_bits",
    "bits_to_bytes",
    "bps_to_kbps",
    "kbps_to_bps",
    "joules_to_microjoules",
    "microjoules_to_joules",
    "transmission_time_s",
    "thermal_noise_dbm",
]

Number = Union[float, int, np.ndarray]

#: Boltzmann constant in J/K, used for thermal-noise sanity checks.
BOLTZMANN_J_PER_K = 1.380649e-23

#: Reference temperature (K) for thermal noise floor computations.
REFERENCE_TEMPERATURE_K = 290.0

#: The dBm reference level: dBm is dB relative to exactly 1 mW.
DBM_REFERENCE_MW = 1.0


def db_to_linear(value_db: Number) -> Number:
    """Convert a dB power *ratio* to its linear equivalent.

    Numpy-transparent: the one expression broadcasts over arrays and stays
    a plain ``float`` for scalar input.
    """
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: Number) -> Number:
    """Convert a linear power ratio to dB. Values must be positive."""
    if np.any(np.asarray(value) <= 0):
        raise UnitsError(f"linear power ratio must be positive, got {value!r}")
    result = 10.0 * np.log10(value)
    return result if isinstance(value, np.ndarray) else float(result)


def dbm_to_mw(power_dbm: Number) -> Number:
    """Convert absolute power in dBm to milliwatts."""
    return db_to_linear(power_dbm)


def mw_to_dbm(power_mw: Number) -> Number:
    """Convert absolute power in milliwatts to dBm.

    dBm is a dB ratio *referenced to 1 mW*; the reference division is kept
    explicit so the absolute level is constructed rather than conflated
    with the relative-ratio helper :func:`linear_to_db`.
    """
    if np.any(np.asarray(power_mw) <= 0):
        raise UnitsError(f"power must be positive, got {power_mw!r}")
    result = 10.0 * np.log10(power_mw / DBM_REFERENCE_MW)
    return result if isinstance(power_mw, np.ndarray) else float(result)


def dbm_to_watts(power_dbm: Number) -> Number:
    """Convert absolute power in dBm to watts."""
    return dbm_to_mw(power_dbm) / 1e3


def watts_to_dbm(power_w: Number) -> Number:
    """Convert absolute power in watts to dBm."""
    return mw_to_dbm(power_w * 1e3)


def ms_to_s(milliseconds: Number) -> Number:
    """Milliseconds to seconds."""
    return milliseconds / 1e3


def s_to_ms(seconds: Number) -> Number:
    """Seconds to milliseconds."""
    return seconds * 1e3


def us_to_s(microseconds: Number) -> Number:
    """Microseconds to seconds."""
    return microseconds / 1e6


def s_to_us(seconds: Number) -> Number:
    """Seconds to microseconds."""
    return seconds * 1e6


def bytes_to_bits(n_bytes: Number) -> Number:
    """Bytes to bits."""
    return n_bytes * 8


def bits_to_bytes(n_bits: Number) -> Number:
    """Bits to (possibly fractional) bytes."""
    return n_bits / 8


def bps_to_kbps(rate_bps: Number) -> Number:
    """Bits/s to kilobits/s (decimal kilo, as in the paper's 250 kb/s)."""
    return rate_bps / 1e3


def kbps_to_bps(rate_kbps: Number) -> Number:
    """Kilobits/s to bits/s."""
    return rate_kbps * 1e3


def joules_to_microjoules(energy_j: Number) -> Number:
    """Joules to microjoules (the paper reports µJ/bit)."""
    return energy_j * 1e6


def microjoules_to_joules(energy_uj: Number) -> Number:
    """Microjoules to joules."""
    return energy_uj / 1e6


def transmission_time_s(n_bytes: Number, data_rate_bps: float) -> Number:
    """Air time in seconds for ``n_bytes`` at ``data_rate_bps``.

    >>> transmission_time_s(125, 250_000)  # 1000 bits at 250 kb/s
    0.004
    """
    if data_rate_bps <= 0:
        raise UnitsError(f"data rate must be positive, got {data_rate_bps!r}")
    return bytes_to_bits(n_bytes) / data_rate_bps


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Ideal thermal noise floor in dBm for a given bandwidth.

    Used only as a sanity anchor for the measured −95 dBm noise floor: the
    2 MHz 802.15.4 channel has kTB ≈ −111 dBm, so a −95 dBm measured floor
    implies roughly 16 dB of receiver noise figure plus ambient interference.
    """
    if bandwidth_hz <= 0:
        raise UnitsError(f"bandwidth must be positive, got {bandwidth_hz!r}")
    noise_w = BOLTZMANN_J_PER_K * REFERENCE_TEMPERATURE_K * bandwidth_hz
    return watts_to_dbm(noise_w) + noise_figure_db
