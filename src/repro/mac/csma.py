"""Unslotted CSMA-CA channel access (IEEE 802.15.4 beaconless mode).

The paper's motes use the TinyOS 2.1 CC2420 stack in beaconless mode with
unslotted CSMA-CA: before each transmission the radio waits a random initial
backoff, performs a clear-channel assessment (CCA), and on a busy channel
draws a (shorter) congestion backoff and tries again.

On the paper's single-link testbed the channel is almost always clear — the
interesting randomness is the initial backoff, whose *mean* (5.28 ms) is a
named constant of the paper's service-time model. The CCA-busy probability is
configurable so the interference extension can inject contention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..radio import timing

__all__ = [
    "UNIT_BACKOFF_PERIOD_S",
    "CCA_TIME_S",
    "CsmaParameters",
    "ChannelAccess",
    "UnslottedCsma",
]

#: One 802.15.4 unit backoff period: 20 symbols = 320 µs.
UNIT_BACKOFF_PERIOD_S = 20 * 16e-6

#: CCA detection time: 8 symbols = 128 µs.
CCA_TIME_S = 8 * 16e-6


@dataclass(frozen=True)
class CsmaParameters:
    """Tunables of the unslotted CSMA-CA algorithm.

    ``max_initial_backoff_s`` defaults to twice the paper's mean T_BO, so a
    uniform draw reproduces the paper's 5.28 ms average. ``cca_busy_prob`` is
    the probability a CCA finds the channel busy (0 on the paper's isolated
    link); ``max_cca_attempts`` bounds the congestion-backoff loop, after
    which the frame is dropped with a channel-access failure.
    """

    max_initial_backoff_s: float = timing.MAX_INITIAL_BACKOFF_S
    congestion_backoff_max_s: float = 10 * UNIT_BACKOFF_PERIOD_S
    cca_busy_prob: float = 0.0
    max_cca_attempts: int = 5

    def __post_init__(self) -> None:
        if self.max_initial_backoff_s < 0:
            raise SimulationError("max_initial_backoff_s must be >= 0")
        if self.congestion_backoff_max_s < 0:
            raise SimulationError("congestion_backoff_max_s must be >= 0")
        if not 0.0 <= self.cca_busy_prob < 1.0:
            raise SimulationError(
                f"cca_busy_prob must be in [0, 1), got {self.cca_busy_prob!r}"
            )
        if self.max_cca_attempts < 1:
            raise SimulationError("max_cca_attempts must be >= 1")

    @property
    def mean_initial_backoff_s(self) -> float:
        """Mean of the uniform initial backoff (the paper's T_BO)."""
        return self.max_initial_backoff_s / 2.0


@dataclass(frozen=True)
class ChannelAccess:
    """Outcome of one CSMA-CA channel-access procedure.

    ``delay_s`` is the total time from access start until the radio may key
    up (all backoffs + CCA times); ``granted`` is False when every CCA in the
    budget found the channel busy.
    """

    delay_s: float
    granted: bool
    cca_attempts: int


class UnslottedCsma:
    """Samples CSMA-CA channel-access delays for one transmitter."""

    def __init__(self, params: CsmaParameters, rng: np.random.Generator) -> None:
        self.params = params
        self._rng = rng

    def initial_backoff_s(self) -> float:
        """Draw one initial backoff, quantized to unit backoff periods."""
        raw = self._rng.uniform(0.0, self.params.max_initial_backoff_s)
        periods = round(raw / UNIT_BACKOFF_PERIOD_S)
        return periods * UNIT_BACKOFF_PERIOD_S

    def congestion_backoff_s(self) -> float:
        """Draw one congestion backoff after a busy CCA."""
        raw = self._rng.uniform(0.0, self.params.congestion_backoff_max_s)
        periods = round(raw / UNIT_BACKOFF_PERIOD_S)
        return periods * UNIT_BACKOFF_PERIOD_S

    def access_channel(self) -> ChannelAccess:
        """Run the full unslotted CSMA-CA procedure for one frame."""
        delay = self.initial_backoff_s()
        attempts = 0
        while attempts < self.params.max_cca_attempts:
            attempts += 1
            delay += CCA_TIME_S
            if self._rng.random() >= self.params.cca_busy_prob:
                return ChannelAccess(delay_s=delay, granted=True, cca_attempts=attempts)
            delay += self.congestion_backoff_s()
        return ChannelAccess(delay_s=delay, granted=False, cca_attempts=attempts)
