"""Acknowledgement handling.

The TinyOS CC2420 stack uses software acknowledgements: after a data frame
the sender turns around and listens for up to T_waitACK = 8.192 ms; the
receiver, having decoded the frame, turns around and transmits a short ACK
frame. An attempt counts as acknowledged only if the data frame *and* the
ACK frame both survive the channel — which is exactly why the paper defines
PER as unacknowledged transmissions over total transmissions (Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..radio import frame as frame_mod
from ..radio import timing

__all__ = [
    "AckPolicy",
    "AttemptResult",
    "ack_frame_bytes",
]


@dataclass(frozen=True)
class AckPolicy:
    """ACK behaviour of the link layer.

    ``enabled`` is effectively always true in the paper's experiments (PER
    is measured from ACKs); it is configurable for completeness and for
    broadcast-style extensions. ``ack_loss_modelled`` controls whether the
    reverse-path ACK frame is itself subject to channel errors.
    """

    enabled: bool = True
    ack_loss_modelled: bool = True
    timeout_s: float = timing.ACK_WAIT_TIMEOUT_S

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise SimulationError(f"ACK timeout must be positive, got {self.timeout_s!r}")


@dataclass(frozen=True)
class AttemptResult:
    """Outcome of one data-frame attempt as seen by the sender's MAC.

    ``data_delivered`` is ground truth (did the receiver decode the data
    frame); ``acked`` is the sender's view (data delivered *and* ACK
    decoded). The gap between the two is ACK loss: the receiver got the
    packet but the sender retransmits anyway, producing the duplicate
    deliveries real 802.15.4 traces contain.
    """

    data_delivered: bool
    acked: bool
    attempt_duration_s: float

    def __post_init__(self) -> None:
        if self.acked and not self.data_delivered:
            raise SimulationError("an attempt cannot be ACKed without delivery")
        if self.attempt_duration_s < 0:
            raise SimulationError("attempt duration must be >= 0")


def ack_frame_bytes() -> int:
    """On-air size of an acknowledgement frame (bytes)."""
    return frame_mod.ACK_FRAME_BYTES
