"""MAC substrate: unslotted CSMA-CA, acknowledgements, retransmission policy.

Reconstructs the beaconless IEEE 802.15.4 MAC of the TinyOS 2.1 CC2420 stack
the paper's motes ran (Sec. II-B), with the two MAC-layer tuning knobs the
paper sweeps: N_maxTries and D_retry.
"""

from .ack import AckPolicy, AttemptResult, ack_frame_bytes
from .csma import (
    CCA_TIME_S,
    ChannelAccess,
    CsmaParameters,
    UNIT_BACKOFF_PERIOD_S,
    UnslottedCsma,
)
from .retransmission import RetryDecision, RetryPolicy

__all__ = [
    "AckPolicy",
    "AttemptResult",
    "CCA_TIME_S",
    "ChannelAccess",
    "CsmaParameters",
    "RetryDecision",
    "RetryPolicy",
    "UNIT_BACKOFF_PERIOD_S",
    "UnslottedCsma",
    "ack_frame_bytes",
]
