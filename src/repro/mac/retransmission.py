"""Retry policy: the MAC-layer N_maxTries / D_retry knobs.

The paper's MAC exposes two retransmission parameters: the maximum number of
transmissions ``N_maxTries`` (1 = no retransmission) and the retry delay
``D_retry`` inserted before each retransmission. This module encodes the
decision logic as a small value type used by both the event-driven simulator
and the closed-form service-time model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SimulationError

__all__ = [
    "RetryDecision",
    "RetryPolicy",
]


class RetryDecision(enum.Enum):
    """What the MAC does after a transmission attempt."""

    #: The frame was acknowledged; the packet leaves the MAC successfully.
    SUCCESS = "success"
    #: Not acknowledged but attempts remain; retransmit after D_retry.
    RETRY = "retry"
    #: Not acknowledged and the attempt budget is exhausted; drop the packet
    #: (this is the paper's radio loss, PLR_radio).
    DROP = "drop"


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable retransmission policy for one configuration."""

    n_max_tries: int = 1
    d_retry_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_max_tries < 1:
            raise SimulationError(
                f"n_max_tries must be >= 1, got {self.n_max_tries!r}"
            )
        if self.d_retry_s < 0:
            raise SimulationError(f"d_retry_s must be >= 0, got {self.d_retry_s!r}")

    @property
    def retransmissions_enabled(self) -> bool:
        """Whether the MAC may send a frame more than once."""
        return self.n_max_tries > 1

    def decide(self, tries_done: int, acked: bool) -> RetryDecision:
        """Decide the next step after attempt number ``tries_done`` (1-based)."""
        if tries_done < 1:
            raise SimulationError(
                f"tries_done must be >= 1, got {tries_done!r}"
            )
        if tries_done > self.n_max_tries:
            raise SimulationError(
                f"attempt {tries_done} exceeds the budget of {self.n_max_tries}"
            )
        if acked:
            return RetryDecision.SUCCESS
        if tries_done < self.n_max_tries:
            return RetryDecision.RETRY
        return RetryDecision.DROP
