"""Command-line interface: ``wsnlink`` (or ``python -m repro.cli``).

Subcommands
-----------
``run-config``    simulate one stack configuration and print its metrics
``sweep``         run a campaign slice and save it as a JSON-lines dataset
``fit``           regenerate the empirical-model fits and compare to the paper
``case-study``    reproduce the Table IV energy-goodput trade-off comparison
``guidelines``    print per-metric tuning recommendations for a link
``validate``      compare model predictions against a saved campaign dataset
``export-trace``  simulate one configuration and export its per-packet log
``link-budget``   SNR margins per power level and coverage distances
``sensitivity``   which stack parameters matter for which metric on a link
``lint``          run the reprolint static-analysis rules over source paths
``serve``         run the link-configuration oracle as an HTTP JSON service
``fleet``         simulate a whole deployment: drifting links, batched solves
``telemetry``     device-uplink tooling: simulate, decode, ingest-bench
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from . import __version__
from .analysis import compute_metrics
from .campaign import CampaignRunner, points_as_arrays, sweep_snr_payload
from .channel import HALLWAY_2012
from .config import StackConfig, TABLE_I_SPACE
from .core import GuidelineEngine, constants, fit_ntries_model, fit_per_model
from .core.fitting import fit_plr_radio_model
from .core.optimization import (
    joint_wins,
    paper_table_iv_points,
    run_case_study_models,
    run_case_study_simulation,
    snr_map_from_environment,
)
from .sim import SimulationOptions, simulate_link

__all__ = [
    "build_parser",
    "main",
]


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--distance-m", type=float, default=10.0)
    parser.add_argument("--ptx-level", type=int, default=31)
    parser.add_argument("--n-max-tries", type=int, default=1)
    parser.add_argument("--d-retry-ms", type=float, default=0.0)
    parser.add_argument("--q-max", type=int, default=1)
    parser.add_argument("--t-pkt-ms", type=float, default=100.0)
    parser.add_argument("--payload-bytes", type=int, default=110)


def _config_from_args(args: argparse.Namespace) -> StackConfig:
    return StackConfig(
        distance_m=args.distance_m,
        ptx_level=args.ptx_level,
        n_max_tries=args.n_max_tries,
        d_retry_ms=args.d_retry_ms,
        q_max=args.q_max,
        t_pkt_ms=args.t_pkt_ms,
        payload_bytes=args.payload_bytes,
    )


def _cmd_run_config(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    options = SimulationOptions(n_packets=args.packets, seed=args.seed)
    metrics = compute_metrics(simulate_link(config, options=options))
    print(f"configuration: {config}")
    print(f"mean SNR        : {metrics.mean_snr_db:8.2f} dB")
    print(f"PER             : {metrics.per:8.4f}")
    print(f"PLR radio/queue : {metrics.plr_radio:8.4f} / {metrics.plr_queue:.4f}")
    print(f"goodput         : {metrics.goodput_kbps:8.2f} kb/s")
    print(f"mean delay      : {metrics.mean_delay_s * 1e3:8.2f} ms")
    print(f"mean service    : {metrics.mean_service_time_s * 1e3:8.2f} ms")
    print(f"U_eng           : {metrics.energy_per_info_bit_uj:8.4f} uJ/bit")
    print(f"mean tries      : {metrics.mean_tries:8.3f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    space = TABLE_I_SPACE
    filters = {}
    if args.distance_m is not None:
        filters["distances_m"] = [args.distance_m]
    if args.q_max is not None:
        filters["q_max_values"] = [args.q_max]
    if filters:
        space = space.subspace(**filters)
    configs = list(space)
    if args.limit is not None:
        configs = configs[: args.limit]
    progress = (
        (lambda i, n, s: print(f"  [{i + 1}/{n}] {s.config}", file=sys.stderr))
        if args.verbose
        else None
    )
    if args.resume:
        from .campaign import run_campaign_checkpointed

        dataset = run_campaign_checkpointed(
            configs,
            args.output,
            packets_per_config=args.packets,
            base_seed=args.seed,
            engine=args.engine,
            description=f"cli sweep ({len(configs)} configs)",
            progress=progress,
        )
        print(f"checkpoint {args.output} holds {len(dataset)} summaries")
        return 0
    runner = CampaignRunner(
        packets_per_config=args.packets,
        base_seed=args.seed,
        engine=args.engine,
        progress=progress,
    )
    dataset = runner.run(configs, description=f"cli sweep ({len(configs)} configs)")
    dataset.save(args.output)
    print(f"wrote {len(dataset)} summaries to {args.output}")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    snrs = list(np.arange(5.0, 26.0, 2.0))
    payloads = [5, 20, 35, 50, 65, 80, 110]
    points = sweep_snr_payload(
        snrs, payloads, n_packets=args.packets, n_max_tries=1, seed=args.seed
    )
    payload, snr, per, _, _ = points_as_arrays(points)
    per_fit = fit_per_model(payload, snr, per)
    print("PER (Eq. 3):")
    print(f"  fitted : {per_fit.summary()}")
    print(
        f"  paper  : alpha={constants.PER_FIT.alpha}, beta={constants.PER_FIT.beta}"
    )
    retry_points = sweep_snr_payload(
        snrs, payloads, n_packets=args.packets, n_max_tries=8, seed=args.seed + 1
    )
    payload, snr, _, _, tries = points_as_arrays(retry_points)
    ntries_fit = fit_ntries_model(payload, snr, tries)
    print("N_tries (Eq. 7):")
    print(f"  fitted : {ntries_fit.summary()}")
    print(
        f"  paper  : alpha={constants.NTRIES_FIT.alpha}, "
        f"beta={constants.NTRIES_FIT.beta}"
    )
    plr_points = sweep_snr_payload(
        snrs, payloads, n_packets=args.packets, n_max_tries=3, seed=args.seed + 2
    )
    payload, snr, _, plr, _ = points_as_arrays(plr_points)
    plr_fit = fit_plr_radio_model(payload, snr, plr, n_max_tries=3)
    print("PLR_radio (Eq. 8):")
    print(f"  fitted : {plr_fit.summary()}")
    print(
        f"  paper  : alpha={constants.PLR_RADIO_FIT.alpha}, "
        f"beta={constants.PLR_RADIO_FIT.beta}"
    )
    return 0


def _cmd_case_study(args: argparse.Namespace) -> int:
    def show(title: str, points) -> None:
        print(title)
        print(f"  {'strategy':34s} {'Ptx':>3s} {'l_D':>4s} {'N':>2s} "
              f"{'goodput kb/s':>12s} {'U_eng uJ/bit':>12s}")
        for p in points:
            print(
                f"  {p.strategy:34s} {p.config.ptx_level:3d} "
                f"{p.config.payload_bytes:4d} {p.config.n_max_tries:2d} "
                f"{p.goodput_kbps:12.2f} {p.u_eng_uj_per_bit:12.3f}"
            )

    show("paper (Table IV):", paper_table_iv_points())
    model_points = run_case_study_models()
    show("empirical models:", model_points)
    print(f"joint tuning dominates all baselines (models): {joint_wins(model_points)}")
    if args.simulate:
        sim_points = run_case_study_simulation(
            model_points, n_packets=args.packets, seed=args.seed
        )
        show("event simulator (bulk traffic):", sim_points)
        print(
            f"joint tuning dominates all baselines (simulated): "
            f"{joint_wins(sim_points)}"
        )
    return 0


def _cmd_guidelines(args: argparse.Namespace) -> int:
    engine = GuidelineEngine()
    snr_map = snr_map_from_environment(HALLWAY_2012, args.distance_m)
    print(f"link: {args.distance_m} m in {HALLWAY_2012.name}")
    print("SNR by power level: "
          + ", ".join(f"{lvl}:{snr:.1f}dB" for lvl, snr in sorted(snr_map.items())))
    for title, rec in (
        ("energy (Sec. IV-C)", engine.recommend_for_energy(snr_map)),
        ("goodput (Sec. V-C)", engine.recommend_for_goodput(snr_map)),
        (
            "delay (Sec. VI-B)",
            engine.recommend_for_delay(
                snr_db=max(snr_map.values()),
                t_pkt_ms=args.t_pkt_ms,
                payload_bytes=args.payload_bytes,
                n_max_tries=args.n_max_tries,
            ),
        ),
        (
            "loss (Sec. VII-B)",
            engine.recommend_for_loss(
                snr_db=max(snr_map.values()),
                t_pkt_ms=args.t_pkt_ms,
                payload_bytes=args.payload_bytes,
            ),
        ),
    ):
        print(f"\n{title}:")
        print(f"  recommend: {rec.changes()}")
        print(f"  predicted: { {k: round(v, 4) for k, v in rec.predicted.items()} }")
        for line in rec.rationale:
            print(f"  - {line}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .campaign import CampaignDataset
    from .core import ModelValidator, needs_refit

    dataset = CampaignDataset.load(args.dataset)
    print(f"validating {len(dataset)} configuration summaries from "
          f"{args.dataset}")
    report = ModelValidator().validate_all(dataset)
    for validation in report.values():
        print(f"  {validation.summary()}")
    refit = needs_refit(report, args.threshold)
    print(f"published coefficients describe this environment: {not refit}")
    if refit:
        print("recommendation: re-fit Eqs. 3/7/8 against this dataset "
              "(see `wsnlink fit` and repro.core.fitting)")
    return 0


def _cmd_export_trace(args: argparse.Namespace) -> int:
    from .sim import save_trace

    config = _config_from_args(args)
    options = SimulationOptions(n_packets=args.packets, seed=args.seed)
    trace = simulate_link(config, options=options)
    save_trace(
        trace,
        args.output,
        config=config,
        include_transmissions=not args.packets_only,
        description=f"cli export ({args.packets} packets, seed {args.seed})",
    )
    print(f"wrote {len(trace.packets)} packet records "
          f"({trace.n_transmissions} transmissions) to {args.output}")
    return 0


def _cmd_link_budget(args: argparse.Namespace) -> int:
    from .channel import LinkBudget
    from .core import classify_snr

    budget = LinkBudget(HALLWAY_2012)
    print(f"link budget at {args.distance_m} m in {HALLWAY_2012.name} "
          f"(long-run mean channel; subtract a fading margin for planning)")
    print(f"{'P_tx':>5} {'dBm':>6} {'path loss':>10} {'RSSI':>8} "
          f"{'SNR':>7} {'zone':>14} {'margin@sens':>11}")
    for row in budget.table(args.distance_m):
        print(
            f"{row.ptx_level:>5} {row.tx_power_dbm:>6.0f} "
            f"{row.path_loss_db:>10.1f} {row.mean_rssi_dbm:>8.1f} "
            f"{row.mean_snr_db:>7.1f} {classify_snr(row.mean_snr_db).value:>14} "
            f"{row.sensitivity_margin_db:>11.1f}"
        )
    level = budget.cheapest_level_for_snr(args.distance_m, args.required_snr)
    if level is None:
        print(f"\nno power level reaches {args.required_snr} dB at "
              f"{args.distance_m} m")
    else:
        print(f"\ncheapest level for {args.required_snr} dB: {level}")
    coverage = budget.coverage_map(args.required_snr)
    if coverage:
        print(f"coverage at {args.required_snr} dB (median path loss): "
              + ", ".join(f"P{lvl}:{d:.0f}m" for lvl, d in sorted(coverage.items())))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from .core.optimization import (
        ModelEvaluator,
        analyze_sensitivity,
        rank_parameters,
        snr_map_from_environment,
    )

    snr_map = snr_map_from_environment(HALLWAY_2012, args.distance_m)
    evaluator = ModelEvaluator(snr_by_level=snr_map)
    base = StackConfig(
        distance_m=args.distance_m,
        ptx_level=31,
        payload_bytes=args.payload_bytes,
        n_max_tries=args.n_max_tries,
        t_pkt_ms=args.t_pkt_ms,
        q_max=30,
    )
    sens = analyze_sensitivity(evaluator, base)
    print(f"one-at-a-time sensitivity at {args.distance_m} m "
          f"(base SNR {snr_map[31]:.1f} dB at max power)")
    for metric in ("energy", "goodput", "delay", "loss"):
        print(f"\n{metric}:")
        for row in rank_parameters(sens, metric):
            print(f"  {row.parameter:<16} span {row.span:10.3f}   "
                  f"best={row.best_setting!r:>8} worst={row.worst_setting!r}")
    return 0


def _explain_rule(rule_id: str) -> int:
    """Print one rule's full card: description, rationale, good/bad example.

    Everything comes off the rule class itself (docstring, ``rationale``,
    ``example_bad``/``example_good``), so this output cannot drift from
    the implementation the way hand-maintained docs can.
    """
    from .lintkit import all_rules

    wanted = rule_id.strip().upper()
    by_id = {rule.rule_id: rule for rule in all_rules()}
    rule = by_id.get(wanted)
    if rule is None:
        known = ", ".join(sorted(by_id))
        print(f"error: unknown rule id {rule_id!r} (known: {known})",
              file=sys.stderr)
        return 2
    print(f"{rule.rule_id} — {rule.name} ({rule.severity.value})")
    print(f"  {rule.description}")
    doc = (rule.__doc__ or "").strip()
    if doc:
        print()
        print(f"  {doc}")
    if rule.rationale:
        print()
        print("why it matters:")
        print(f"  {rule.rationale}")
    if rule.example_bad:
        print()
        print("bad:")
        for line in rule.example_bad.rstrip("\n").splitlines():
            print(f"    {line}")
    if rule.example_good:
        print()
        print("good:")
        for line in rule.example_good.rstrip("\n").splitlines():
            print(f"    {line}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from collections import Counter
    from pathlib import Path

    from .errors import LintError
    from .lintkit import (
        Linter,
        all_rules,
        filter_findings,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        save_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name} ({rule.severity.value}): "
                  f"{rule.description}")
        return 0
    if args.explain:
        return _explain_rule(args.explain)
    select = None
    if args.select:
        select = {
            rule_id.strip()
            for chunk in args.select
            for rule_id in chunk.split(",")
            if rule_id.strip()
        }
        if not select:
            print("error: --select was given but names no rule ids",
                  file=sys.stderr)
            return 2
    try:
        linter = Linter(select=select)
        findings = linter.lint_paths(
            [Path(p) for p in args.paths], jobs=args.jobs
        )
        if args.write_baseline or args.update_baseline:
            baseline_path = Path(args.baseline)
            old = (
                load_baseline(baseline_path)
                if args.update_baseline and baseline_path.is_file()
                else Counter()
            )
            save_baseline(findings, baseline_path)
            if args.update_baseline:
                new = Counter(finding.key() for finding in findings)
                added = sum((new - old).values())
                removed = sum((old - new).values())
                print(f"updated {args.baseline}: {len(findings)} "
                      f"finding(s) (+{added} added, -{removed} removed)")
            else:
                print(f"wrote {len(findings)} finding(s) to {args.baseline}")
            return 0
        grandfathered = []
        if Path(args.baseline).is_file():
            findings, grandfathered = filter_findings(
                findings, load_baseline(Path(args.baseline))
            )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings, statistics=args.statistics))
    elif args.format == "sarif":
        print(render_sarif(findings, rules=[type(r) for r in linter.rules]))
    else:
        print(render_text(findings, statistics=args.statistics))
        if grandfathered:
            print(f"({len(grandfathered)} grandfathered finding(s) "
                  f"suppressed by {args.baseline})")
    return 1 if findings else 0


def _precompute_distances(text: str):
    """Parse ``--precompute``: 'table1', 'none', or comma-separated metres."""
    from .config import TABLE_I_SPACE as space
    from .errors import ConfigurationError

    cleaned = text.strip().lower()
    if cleaned == "none":
        return ()
    if cleaned == "table1":
        return space.distances_m
    try:
        distances = tuple(
            float(part) for part in cleaned.split(",") if part.strip()
        )
    except ValueError:
        raise ConfigurationError(
            f"--precompute must be 'table1', 'none', or comma-separated "
            f"distances in metres, got {text!r}"
        ) from None
    if not distances:
        raise ConfigurationError(
            f"--precompute names no distances: {text!r}"
        )
    return distances


def _cmd_serve(args: argparse.Namespace) -> int:
    from .core.optimization import TuningGrid
    from .serve import Oracle, OracleService, make_server

    grid = TuningGrid(
        payload_values_bytes=tuple(range(2, 115, args.payload_step))
    )
    oracle = Oracle(
        environment=HALLWAY_2012,
        grid=grid,
        lru_capacity=args.lru_capacity,
        policy=args.policy,
        snr_quantum_db=args.snr_quantum_db,
    )
    if args.precompute:
        print(
            f"precomputing {len(args.precompute)} sweep table(s) "
            f"({len(grid)} configurations each) ...",
            file=sys.stderr,
        )
        oracle.precompute(args.precompute)
    if args.policy:
        # Only the default objective eagerly (keeps startup inside the CI
        # health-check budget); other objectives compile on first use.
        oracle.precompute_policies(("energy",))
    ingestor = None
    if args.telemetry_links:
        from .fleet import FleetState
        from .sim.rng import RngStreams
        from .telemetry import SnrEstimator, TelemetryIngestor

        rng = RngStreams(args.telemetry_seed).stream("telemetry-serve")
        base_snr_db = rng.uniform(5.0, 25.0, size=args.telemetry_links)
        ingestor = TelemetryIngestor(
            FleetState.from_base_snr(base_snr_db),
            SnrEstimator(alpha=args.telemetry_alpha),
        )
    service = OracleService(
        oracle,
        queue_capacity=args.queue_capacity,
        workers=args.workers,
        max_batch=args.max_batch,
        default_timeout_s=args.timeout_s,
        retry_after_s=args.retry_after_s,
        ingestor=ingestor,
    )
    server = make_server(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    telemetry_note = (
        f", telemetry={args.telemetry_links} links" if ingestor else ""
    )
    policy_note = (
        f", policy@{args.snr_quantum_db:g}dB" if args.policy else ""
    )
    print(
        f"wsnlink oracle listening on http://{args.host}:{server.port} "
        f"(workers={args.workers}, queue={args.queue_capacity}, "
        f"max_batch={args.max_batch}, grid={len(grid)} configs"
        f"{policy_note}{telemetry_note})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupt received, shutting down", file=sys.stderr)
    finally:
        server.server_close()
        service.close()
    return 0


def _parse_constraint(text: str):
    """Parse ``--constraint``: ``objective=max`` (e.g. ``delay=40``)."""
    from .core.optimization import Constraint
    from .errors import ConfigurationError

    objective, separator, bound = text.partition("=")
    if not separator or not objective.strip():
        raise ConfigurationError(
            f"--constraint must look like objective=max "
            f"(e.g. delay=40), got {text!r}"
        )
    try:
        upper_bound = float(bound)
    except ValueError:
        raise ConfigurationError(
            f"--constraint bound must be a number, got {bound!r}"
        ) from None
    return Constraint(objective=objective.strip(), upper_bound=upper_bound)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .core.optimization import TuningGrid
    from .fleet import FleetDrift, FleetEngine, build_topology, run_fleet

    topology = build_topology(
        args.topology, args.links, seed=args.seed, link_mode=args.link_mode
    )
    grid = TuningGrid(
        payload_values_bytes=tuple(range(2, 115, args.payload_step))
    )
    routed = args.routing is not None
    if routed:
        from .routing import RoutedFleetEngine, routes_for_topology

        table = routes_for_topology(
            topology, sink=args.sink, strategy=args.routing
        )
        engine = RoutedFleetEngine(
            table,
            grid=grid,
            objective=args.objective,
            constraints=tuple(args.constraint or ()),
            path_loss_eps=args.path_loss_eps,
            hysteresis=args.hysteresis,
            snr_quantum_db=args.snr_quantum_db,
            strict=args.strict,
            use_policy=args.policy,
        )
    else:
        engine = FleetEngine(
            grid=grid,
            objective=args.objective,
            constraints=tuple(args.constraint or ()),
            hysteresis=args.hysteresis,
            snr_quantum_db=args.snr_quantum_db,
            strict=args.strict,
            use_policy=args.policy,
        )
    drift = FleetDrift(
        topology, seed=args.seed, step_interval_s=args.step_interval_s
    )
    stats = topology.stats()
    print(
        f"fleet: {stats['n_links']} links over {stats['n_nodes']} nodes "
        f"({topology.kind} topology, seed {topology.seed}), "
        f"{len(engine)} configurations per solve"
    )
    if routed:
        info = engine.routing_info()
        print(
            f"routing: {info['strategy']} strategy rooted at sink "
            f"{info['sink']}, {info['n_paths']} leaf paths, max "
            f"{info['max_hops']} hops"
            + (
                f", path loss budget {args.path_loss_eps}"
                if args.path_loss_eps is not None
                else ""
            )
        )

    def show(report) -> None:
        line = report.stats()
        message = (
            f"  step {line['step']:>4}: {line['n_unique_snr_bins']:>4} SNR "
            f"bins, {line['n_reconfigured']:>5} reconfigured, "
            f"{line['n_infeasible']:>5} infeasible, "
            f"mean {args.objective} {line['objective_mean']:.4f}"
        )
        if routed:
            message += (
                f", {report.n_paths_feasible}/{report.n_paths} paths ok"
            )
        print(message)

    result = run_fleet(
        topology,
        engine,
        drift,
        args.steps,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        progress=show,
    )
    if result.n_steps_replayed:
        print(f"replayed {result.n_steps_replayed} checkpointed step(s), "
              f"executed {result.n_steps_executed}")
    configured = int((result.state.config_index >= 0).sum())
    print(
        f"final: {configured}/{len(result.state)} links configured after "
        f"{result.n_steps_total} step(s)"
    )
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint}")
    return 0


def _build_simulator(args: argparse.Namespace):
    """A (simulator, serving_state) pair from shared telemetry CLI flags."""
    from .fleet import FleetDrift, FleetState, grid_topology
    from .telemetry import DeviceFleetSimulator, TEMPLATE_REGISTRY

    topology = grid_topology(args.links, seed=args.seed)
    truth = FleetState.from_topology(topology)
    serving = FleetState.from_topology(topology)
    drift = (
        FleetDrift(topology, seed=args.seed, step_interval_s=1.0)
        if args.drift
        else None
    )
    simulator = DeviceFleetSimulator(
        truth,
        template=TEMPLATE_REGISTRY[args.template],
        mode=args.mode,
        seed=args.seed,
        report_prob=args.report_prob,
        burst_prob=args.burst_prob,
        burst_len=args.burst_len,
        noise_db=args.noise_db,
        drop_prob=args.drop_prob,
        duplicate_prob=args.duplicate_prob,
        drift=drift,
    )
    return simulator, serving


def _cmd_telemetry_simulate(args: argparse.Namespace) -> int:
    simulator, _ = _build_simulator(args)
    frame_bytes = simulator.codec.frame_bytes
    n_uplinks = 0
    n_bytes = 0
    chunks = []
    for _ in range(args.ticks):
        payload = simulator.tick()
        if not payload:
            continue
        n_uplinks += len(payload) // frame_bytes
        n_bytes += len(payload)
        if args.out is not None:
            chunks.append(payload)
        if args.post is not None:
            import json as json_module
            import urllib.request

            request = urllib.request.Request(
                args.post.rstrip("/") + "/v1/telemetry",
                data=payload,
                headers={"Content-Type": "application/octet-stream"},
            )
            with urllib.request.urlopen(request) as response:
                report = json_module.loads(response.read())["report"]
            print(
                f"  tick {simulator.n_ticks:>4}: "
                f"{report['n_accepted']}/{report['n_uplinks']} accepted, "
                f"{report['n_links_updated']} links updated"
            )
    if args.out is not None:
        with open(args.out, "wb") as handle:
            for chunk in chunks:
                handle.write(chunk)
    print(
        f"simulated {args.ticks} tick(s) over {args.links} link(s) "
        f"({args.mode}, template v{args.template}): {n_uplinks} uplinks, "
        f"{n_bytes} bytes ({frame_bytes} B/frame)"
    )
    if args.out is not None:
        print(f"frames written to {args.out}")
    return 0


def _cmd_telemetry_decode(args: argparse.Namespace) -> int:
    from .telemetry import (
        TEMPLATE_REGISTRY,
        decode_uplink_batch,
        default_codecs,
    )

    with open(args.path, "rb") as handle:
        payload = handle.read()
    version, columns = decode_uplink_batch(payload, default_codecs())
    template = TEMPLATE_REGISTRY[version]
    n_uplinks = len(next(iter(columns.values())))
    print(
        f"{args.path}: {n_uplinks} uplink(s), template "
        f"'{template.name}' v{version} ({template.frame_bytes} B/frame)"
    )
    if args.json:
        import json as json_module

        names = list(columns)
        for row in range(n_uplinks):
            record = {
                name: columns[name][row].item() for name in names
            }
            print(json_module.dumps(record))
        return 0
    for name, column in columns.items():
        print(
            f"  {name:>12}: min {column.min():>10.4g}  "
            f"mean {column.mean():>10.4g}  max {column.max():>10.4g}"
        )
    return 0


def _cmd_telemetry_ingest_bench(args: argparse.Namespace) -> int:
    import time

    from .telemetry import SnrEstimator, TelemetryIngestor

    simulator, serving = _build_simulator(args)
    ingestor = TelemetryIngestor(
        serving, SnrEstimator(alpha=args.alpha)
    )
    n_uplinks = 0
    decode_ms = 0.0
    apply_ms = 0.0
    started = time.perf_counter()
    for _ in range(args.ticks):
        payload = simulator.tick()
        if not payload:
            continue
        report = ingestor.ingest(payload)
        n_uplinks += report.n_uplinks
        decode_ms += report.decode_ms
        apply_ms += report.apply_ms
    elapsed_s = time.perf_counter() - started
    totals = ingestor.totals()
    rate = n_uplinks / elapsed_s if elapsed_s > 0 else float("inf")
    print(
        f"ingested {n_uplinks} uplink(s) in {args.ticks} tick(s) over "
        f"{args.links} link(s): {elapsed_s * 1e3:.2f} ms total "
        f"({rate:,.0f} uplinks/s)"
    )
    print(
        f"  decode {decode_ms:.2f} ms, apply {apply_ms:.2f} ms; "
        f"accepted {totals['accepted']}, duplicate {totals['duplicate']}, "
        f"out-of-order {totals['out_of_order']}, "
        f"gap uplinks {totals['gap_uplinks']}"
    )
    snapshot = ingestor.state_snapshot()
    print(
        f"  fleet: {snapshot['n_links_measured']}/{snapshot['n_links']} "
        f"links measured, mean SNR {snapshot['snr_mean_db']:.2f} dB "
        f"(mean |innovation| {snapshot['mean_abs_innovation_db']:.3f} dB)"
    )
    return 0


def _add_telemetry_sim_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``telemetry simulate`` and ``telemetry ingest-bench``."""
    parser.add_argument("--links", type=int, default=64,
                        help="number of links in the simulated fleet")
    parser.add_argument("--ticks", type=int, default=10,
                        help="reporting intervals to replay")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for topology, traffic, and noise")
    parser.add_argument("--mode", choices=("periodic", "jittered", "bursty"),
                        default="periodic",
                        help="per-tick reporting shape")
    parser.add_argument("--template", type=int, choices=(1, 2), default=1,
                        help="payload template version (1 = fixed-point "
                             "RSSI/noise, 2 = exact float64 SNR)")
    parser.add_argument("--report-prob", type=float, default=0.8,
                        help="per-tick report probability (jittered mode)")
    parser.add_argument("--burst-prob", type=float, default=0.1,
                        help="per-tick burst probability (bursty mode)")
    parser.add_argument("--burst-len", type=int, default=5,
                        help="readings per burst (bursty mode)")
    parser.add_argument("--noise-db", type=float, default=0.0,
                        help="gaussian measurement noise std (dB)")
    parser.add_argument("--drop-prob", type=float, default=0.0,
                        help="probability an uplink is lost in transit "
                             "(producing receiver-visible sequence gaps)")
    parser.add_argument("--duplicate-prob", type=float, default=0.0,
                        help="probability a frame is delivered twice")
    parser.add_argument("--drift", action="store_true",
                        help="evolve the truth SNRs with the fleet drift "
                             "model between ticks")


def build_parser() -> argparse.ArgumentParser:
    """The ``wsnlink`` argument parser with all subcommands attached."""
    parser = argparse.ArgumentParser(
        prog="wsnlink",
        description=(
            "WSN link multi-layer parameter configuration: simulator, "
            "empirical models and joint optimization (ICDCS 2015 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run-config", help="simulate one configuration")
    _add_config_arguments(p)
    p.add_argument("--packets", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_run_config)

    p = sub.add_parser("sweep", help="run a campaign slice")
    p.add_argument("--distance-m", type=float, default=None)
    p.add_argument("--q-max", type=int, default=None)
    p.add_argument("--limit", type=int, default=None, help="max configs to run")
    p.add_argument("--packets", type=int, default=300)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--engine", choices=("des", "fast"), default="des")
    p.add_argument("--output", default="campaign.jsonl")
    p.add_argument("--resume", action="store_true",
                   help="checkpoint to --output row-by-row and continue an "
                        "interrupted run instead of starting over")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("fit", help="re-fit the empirical models")
    p.add_argument("--packets", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fit)

    p = sub.add_parser("case-study", help="Table IV trade-off comparison")
    p.add_argument("--simulate", action="store_true")
    p.add_argument("--packets", type=int, default=1000)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_case_study)

    p = sub.add_parser("guidelines", help="tuning recommendations for a link")
    p.add_argument("--distance-m", type=float, default=35.0)
    p.add_argument("--t-pkt-ms", type=float, default=30.0)
    p.add_argument("--payload-bytes", type=int, default=110)
    p.add_argument("--n-max-tries", type=int, default=3)
    p.set_defaults(func=_cmd_guidelines)

    p = sub.add_parser("validate", help="model-vs-dataset validation report")
    p.add_argument("--dataset", required=True, help="JSON-lines campaign file")
    p.add_argument("--threshold", type=float, default=0.5,
                   help="relative-error threshold for the refit flag")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("export-trace", help="simulate and export per-packet log")
    _add_config_arguments(p)
    p.add_argument("--packets", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default="trace.jsonl")
    p.add_argument("--packets-only", action="store_true",
                   help="omit per-transmission rows")
    p.set_defaults(func=_cmd_export_trace)

    p = sub.add_parser("link-budget", help="SNR margins and coverage")
    p.add_argument("--distance-m", type=float, default=20.0)
    p.add_argument("--required-snr", type=float, default=19.0,
                   help="SNR requirement for cheapest-level/coverage queries")
    p.set_defaults(func=_cmd_link_budget)

    p = sub.add_parser("sensitivity", help="per-knob metric sensitivity")
    p.add_argument("--distance-m", type=float, default=35.0)
    p.add_argument("--payload-bytes", type=int, default=80)
    p.add_argument("--n-max-tries", type=int, default=3)
    p.add_argument("--t-pkt-ms", type=float, default=50.0)
    p.set_defaults(func=_cmd_sensitivity)

    p = sub.add_parser("lint", help="reprolint static analysis (RPR rules)")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to lint (default: src/repro)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text")
    p.add_argument("--select", action="append", metavar="RPR00x[,RPR00y]",
                   help="run only these rule ids (repeatable)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan the rule phase out over N worker processes "
                        "(default: 1, serial)")
    p.add_argument("--baseline", default="reprolint-baseline.json",
                   help="baseline file of grandfathered findings")
    p.add_argument("--write-baseline", action="store_true",
                   help="write current findings to the baseline and exit")
    p.add_argument("--update-baseline", action="store_true",
                   help="regenerate the baseline and report what changed")
    p.add_argument("--statistics", action="store_true",
                   help="append per-rule finding counts to the report")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--explain", metavar="RPRnnn",
                   help="print one rule's rationale and a minimal good/bad "
                        "example, then exit")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("serve", help="run the link-configuration oracle "
                                     "as an HTTP JSON service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--workers", type=int, default=2,
                   help="oracle worker threads")
    p.add_argument("--queue-capacity", type=int, default=128,
                   help="bounded work queue size; overflow is rejected "
                        "with 503 + Retry-After")
    p.add_argument("--max-batch", type=int, default=16,
                   help="max same-link recommend requests coalesced into "
                        "one grid evaluation")
    p.add_argument("--timeout-s", type=float, default=30.0,
                   help="per-request deadline")
    p.add_argument("--retry-after-s", type=float, default=1.0,
                   help="back-off hint on 503 rejections")
    p.add_argument("--lru-capacity", type=int, default=64,
                   help="off-grid links kept in the LRU table cache")
    p.add_argument("--payload-step", type=int, default=2,
                   help="payload quantization of the tuning grid (bytes); "
                        "larger steps trade answer granularity for "
                        "faster cold builds")
    p.add_argument("--precompute", type=_precompute_distances,
                   default="table1", metavar="table1|none|D1,D2,...",
                   help="tier-1 sweep tables built at startup "
                        "(default: the Table I distances)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    p.add_argument("--telemetry-links", type=int, default=0,
                   help="enable POST /v1/telemetry backed by a measured "
                        "fleet of this many links (0 disables telemetry)")
    p.add_argument("--telemetry-seed", type=int, default=0,
                   help="seed for the measured fleet's base SNRs")
    p.add_argument("--telemetry-alpha", type=float, default=0.25,
                   help="EWMA weight of the serving SNR estimator")
    p.add_argument("--policy", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="serve default-bounds recommends from precompiled "
                        "O(1) SNR policy tables (--no-policy restores the "
                        "solver-per-request path)")
    p.add_argument("--snr-quantum-db", type=float, default=0.25,
                   help="SNR bin width of the policy tables and the "
                        "quantized cache keys")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("fleet", help="simulate a deployment of drifting "
                                     "links with batched reconfiguration")
    p.add_argument("--links", type=int, default=100,
                   help="number of links in the deployment")
    p.add_argument("--steps", type=int, default=10,
                   help="drift/solve steps to run")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for topology placement and channel drift")
    p.add_argument("--topology", choices=("grid", "random"), default="grid",
                   help="node placement: jittered grid or random geometric")
    p.add_argument("--link-mode", choices=("distance", "snr"),
                   default="distance",
                   help="bind each edge as a distance link (channel model) "
                        "or a reference-SNR link (Table IV convention)")
    p.add_argument("--objective", default="energy",
                   choices=("energy", "goodput", "delay", "loss",
                            "loss_radio", "rho"))
    p.add_argument("--constraint", type=_parse_constraint, action="append",
                   metavar="OBJ=MAX",
                   help="epsilon-constraint, e.g. delay=40 (repeatable)")
    p.add_argument("--hysteresis", type=float, default=0.05,
                   help="relative objective improvement required before a "
                        "link switches configuration")
    p.add_argument("--snr-quantum-db", type=float, default=0.25,
                   help="SNR bin width shared across links (0 = exact "
                        "per-link solves)")
    p.add_argument("--step-interval-s", type=float, default=1.0,
                   help="simulated seconds between drift steps")
    p.add_argument("--payload-step", type=int, default=2,
                   help="payload quantization of the tuning grid (bytes)")
    p.add_argument("--strict", action="store_true",
                   help="fail the run when any link is infeasible instead "
                        "of marking it unconfigured")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="append each step durably to this JSONL file")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted run from --checkpoint "
                        "(bit-identical to an uninterrupted run)")
    p.add_argument("--policy", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="gather per-step answers from a precompiled SNR "
                        "policy table (--no-policy solves each step's "
                        "bins exactly; answers are identical)")
    p.add_argument("--routing", choices=("tree", "mesh"), default=None,
                   help="route the fleet to a sink and optimize end to "
                        "end: 'tree' builds a minimum-hop collection "
                        "tree, 'mesh' a shortest-path tree over all "
                        "edges (euclidean cost)")
    p.add_argument("--sink", type=int, default=None,
                   help="sink node index for --routing (default: the "
                        "highest-degree node)")
    p.add_argument("--path-loss-eps", type=float, default=None,
                   metavar="EPS",
                   help="end-to-end loss budget: require P(loss) <= EPS "
                        "on every leaf-to-sink path (implies a per-hop "
                        "loss constraint on the solver)")
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser("telemetry", help="device-uplink tooling: simulate "
                                         "traffic, decode frames, benchmark "
                                         "the ingest pipeline")
    tsub = p.add_subparsers(dest="telemetry_command", required=True)

    ps = tsub.add_parser("simulate", help="replay a simulated device fleet "
                                          "to a file or a running server")
    _add_telemetry_sim_arguments(ps)
    ps.add_argument("--out", default=None, metavar="PATH",
                    help="write the emitted binary frames to this file")
    ps.add_argument("--post", default=None, metavar="URL",
                    help="POST each tick's batch to this wsnlink server "
                         "(e.g. http://127.0.0.1:8080)")
    ps.set_defaults(func=_cmd_telemetry_simulate)

    ps = tsub.add_parser("decode", help="decode a binary frame file and "
                                        "print column stats or JSON lines")
    ps.add_argument("path", help="file of concatenated uplink frames")
    ps.add_argument("--json", action="store_true",
                    help="print one JSON object per uplink instead of "
                         "column statistics")
    ps.set_defaults(func=_cmd_telemetry_decode)

    ps = tsub.add_parser("ingest-bench", help="run simulator → codec → "
                                              "ingest → estimator in-process "
                                              "and report throughput")
    _add_telemetry_sim_arguments(ps)
    ps.add_argument("--alpha", type=float, default=0.25,
                    help="EWMA weight of the SNR estimator")
    ps.set_defaults(func=_cmd_telemetry_ingest_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``wsnlink`` console script."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
