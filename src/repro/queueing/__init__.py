"""Queueing substrate: the bounded transmit FIFO and analytic helpers.

The FIFO implements the paper's Q_max parameter (packets waiting for
(re-)transmission above the MAC, Sec. II-B); the analytic helpers implement
the utilization reasoning of Sec. VI (Eq. 9) and the M/G/1 / M/M/1/K anchors
used by the delay and loss guidelines.
"""

from .analysis import (
    QueueingRegime,
    mg1_mean_wait_s,
    mm1k_blocking_probability,
    mm1k_mean_queue_length,
    utilization,
)
from .fifo import BoundedFifoQueue, QueueStats

__all__ = [
    "BoundedFifoQueue",
    "QueueStats",
    "QueueingRegime",
    "mg1_mean_wait_s",
    "mm1k_blocking_probability",
    "mm1k_mean_queue_length",
    "utilization",
]
