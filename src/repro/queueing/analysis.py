"""Analytic queueing helpers behind the paper's delay analysis (Sec. VI).

The paper explains its delay observations through the system utilization

``ρ = T_service / T_pkt``                                       (Eq. 9)

— the ratio of average service time to packet inter-arrival time — and the
classical facts that queueing delay stays small for ρ < 1, explodes as
ρ → 1, and is unbounded for ρ ≥ 1 without dropping. This module provides the
utilization computation plus standard M/G/1 and M/G/1/K estimates used to
sanity-check the event-driven simulator and to power the delay guidelines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError

__all__ = [
    "utilization",
    "QueueingRegime",
    "mg1_mean_wait_s",
    "mm1k_blocking_probability",
    "mm1k_mean_queue_length",
]


def utilization(service_time_s: float, interarrival_s: float) -> float:
    """System utilization ρ = T_service / T_pkt (Eq. 9)."""
    if service_time_s < 0:
        raise SimulationError(
            f"service time must be >= 0, got {service_time_s!r}"
        )
    if interarrival_s <= 0:
        raise SimulationError(
            f"inter-arrival time must be positive, got {interarrival_s!r}"
        )
    return service_time_s / interarrival_s


@dataclass(frozen=True)
class QueueingRegime:
    """Qualitative delay regime implied by a utilization value."""

    rho: float

    #: Above this, delay grows steeply even though the system is stable.
    HEAVY_TRAFFIC_THRESHOLD = 0.8

    @property
    def stable(self) -> bool:
        """ρ < 1: queueing delay is bounded."""
        return self.rho < 1.0

    @property
    def heavy_traffic(self) -> bool:
        """0.8 ≤ ρ < 1: stable but delay is blowing up quickly."""
        return self.HEAVY_TRAFFIC_THRESHOLD <= self.rho < 1.0

    @property
    def overloaded(self) -> bool:
        """ρ ≥ 1: the queue grows without bound (or drops at Q_max)."""
        return self.rho >= 1.0

    def describe(self) -> str:
        """Human-readable regime label, as used by the guideline engine."""
        if self.overloaded:
            return "overloaded (rho >= 1): queue fills; expect queueing loss and delays bounded only by Q_max"
        if self.heavy_traffic:
            return "heavy traffic (0.8 <= rho < 1): stable but queueing delay grows steeply"
        return "light traffic (rho < 0.8): negligible queueing delay"


def mg1_mean_wait_s(
    mean_service_s: float,
    service_scv: float,
    interarrival_s: float,
) -> float:
    """Pollaczek-Khinchine mean waiting time for an M/G/1 queue.

    ``W = ρ · (1 + c_s²) / (2 · (1 − ρ)) · T_service`` where ``c_s²`` is the
    squared coefficient of variation of the service time. Returns ``inf``
    when ρ ≥ 1. The paper's traffic is periodic rather than Poisson, so this
    overestimates waiting somewhat; it is used as a conservative regime
    indicator, not as ground truth.
    """
    if service_scv < 0:
        raise SimulationError(f"service SCV must be >= 0, got {service_scv!r}")
    rho = utilization(mean_service_s, interarrival_s)
    if rho >= 1.0:
        return math.inf
    return rho * (1.0 + service_scv) / (2.0 * (1.0 - rho)) * mean_service_s


def mm1k_blocking_probability(rho: float, capacity: int) -> float:
    """Blocking (drop) probability of an M/M/1/K queue.

    Used as a closed-form anchor for PLR_queue: the probability an arrival
    finds the K-capacity system full. Handles the ρ = 1 limit exactly.
    """
    if rho < 0:
        raise SimulationError(f"rho must be >= 0, got {rho!r}")
    if capacity < 1:
        raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
    k = capacity
    if math.isclose(rho, 1.0, rel_tol=1e-12, abs_tol=1e-12):
        return 1.0 / (k + 1)
    return (1.0 - rho) * rho**k / (1.0 - rho ** (k + 1))


def mm1k_mean_queue_length(rho: float, capacity: int) -> float:
    """Mean number in an M/M/1/K system (service position included)."""
    if rho < 0:
        raise SimulationError(f"rho must be >= 0, got {rho!r}")
    if capacity < 1:
        raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
    k = capacity
    if math.isclose(rho, 1.0, rel_tol=1e-12, abs_tol=1e-12):
        return k / 2.0
    numerator = rho * (1.0 - (k + 1.0) * rho**k + k * rho ** (k + 1))
    return numerator / ((1.0 - rho) * (1.0 - rho ** (k + 1)))
