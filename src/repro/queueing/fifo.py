"""Bounded FIFO transmit queue (the paper's Q_max knob).

The paper's stack buffers application packets in a FIFO queue above the MAC;
its capacity ``Q_max`` is one of the seven swept parameters (1 or 30 in the
campaign). A packet arriving at a full queue is dropped and counted as
queueing loss (PLR_queue, Sec. VII).

The queue tracks its own statistics — arrivals, drops, occupancy integral —
so the simulator can report queueing loss rate and time-average occupancy
without re-walking traces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, List, Optional, TypeVar

from ..errors import SimulationError

__all__ = [
    "T",
    "QueueStats",
    "BoundedFifoQueue",
]

T = TypeVar("T")


@dataclass(frozen=True)
class QueueStats:
    """Snapshot of queue counters."""

    arrivals: int
    accepted: int
    dropped: int
    departures: int
    time_average_occupancy: float
    peak_occupancy: int

    @property
    def drop_rate(self) -> float:
        """Fraction of arrivals dropped (PLR_queue); 0 for no arrivals."""
        if self.arrivals == 0:
            return 0.0
        return self.dropped / self.arrivals


class BoundedFifoQueue(Generic[T]):
    """A capacity-limited FIFO with occupancy-time accounting.

    ``now_s`` must be passed non-decreasingly to the mutating operations so
    the occupancy integral (∫ occupancy dt) is well defined.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(f"queue capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._arrivals = 0
        self._accepted = 0
        self._dropped = 0
        self._departures = 0
        self._peak = 0
        self._occupancy_integral = 0.0
        self._last_update_s = 0.0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def _advance(self, now_s: float) -> None:
        if now_s < self._last_update_s:
            raise SimulationError(
                f"queue time went backwards: {now_s} < {self._last_update_s}"
            )
        self._occupancy_integral += len(self._items) * (now_s - self._last_update_s)
        self._last_update_s = now_s

    def offer(self, item: T, now_s: float) -> bool:
        """Try to enqueue; returns False (and counts a drop) when full."""
        self._advance(now_s)
        self._arrivals += 1
        if self.is_full:
            self._dropped += 1
            return False
        self._items.append(item)
        self._accepted += 1
        self._peak = max(self._peak, len(self._items))
        return True

    def poll(self, now_s: float) -> Optional[T]:
        """Dequeue the head item, or None when empty."""
        self._advance(now_s)
        if not self._items:
            return None
        self._departures += 1
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """The head item without removing it, or None when empty."""
        return self._items[0] if self._items else None

    def drain(self, now_s: float) -> List[T]:
        """Remove and return all queued items (end-of-run cleanup)."""
        self._advance(now_s)
        items = list(self._items)
        self._departures += len(items)
        self._items.clear()
        return items

    def stats(self, now_s: Optional[float] = None) -> QueueStats:
        """Counters snapshot; pass ``now_s`` to include time up to now."""
        if now_s is not None:
            self._advance(now_s)
        elapsed = self._last_update_s
        avg = self._occupancy_integral / elapsed if elapsed > 0 else 0.0
        return QueueStats(
            arrivals=self._arrivals,
            accepted=self._accepted,
            dropped=self._dropped,
            departures=self._departures,
            time_average_occupancy=avg,
            peak_occupancy=self._peak,
        )
