"""The composed point-to-point link channel.

:class:`LinkChannel` ties an :class:`~repro.channel.environment.Environment`
to a concrete (distance, TX power level) pair and exposes:

* per-transmission channel snapshots (RSSI, noise floor, SNR, LQI) with the
  environment's temporal dynamics;
* frame success/error sampling against the environment's BER model;
* the long-run mean SNR, which is the x-axis of almost every figure in the
  paper.

One :class:`LinkChannel` owns one RNG stream, so two channels constructed
with the same seed produce identical trajectories regardless of what else
the simulation does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ChannelError
from ..radio import cc2420, lqi as lqi_mod
from .environment import Environment
from .fading import ShadowingProcess

__all__ = [
    "ChannelSample",
    "LinkChannel",
    "TransmissionOutcome",
]


@dataclass(frozen=True)
class ChannelSample:
    """One per-transmission channel observation."""

    time_s: float
    rssi_dbm: float
    noise_dbm: float
    lqi: float

    @property
    def snr_db(self) -> float:
        """Instantaneous SNR (dB)."""
        return self.rssi_dbm - self.noise_dbm

    @property
    def decodable(self) -> bool:
        """Whether the signal is above the receiver sensitivity at all."""
        return self.rssi_dbm > cc2420.SENSITIVITY_DBM


class LinkChannel:
    """Stateful channel between one sender and one receiver."""

    def __init__(
        self,
        environment: Environment,
        distance_m: float,
        ptx_level: int,
        rng: np.random.Generator,
    ) -> None:
        if distance_m <= 0:
            raise ChannelError(f"distance must be positive, got {distance_m!r}")
        self.environment = environment
        self.distance_m = distance_m
        self.ptx_level = ptx_level
        self._rng = rng
        self._tx_power_dbm = cc2420.output_power_dbm(ptx_level)
        self._mean_rssi_dbm = environment.pathloss.mean_rssi_dbm(
            self._tx_power_dbm, distance_m
        )
        self._fading = ShadowingProcess(
            slow_sigma_db=environment.slow_sigma_at(distance_m),
            slow_tau_s=environment.slow_tau_s,
            fast_sigma_db=environment.fast_sigma_db,
            rng=rng,
            human=environment.human_shadowing_at(distance_m),
        )

    @property
    def tx_power_dbm(self) -> float:
        """Programmed output power (dBm)."""
        return self._tx_power_dbm

    @property
    def mean_rssi_dbm(self) -> float:
        """Long-run mean RSSI (before register clamping), dBm."""
        return self._mean_rssi_dbm

    @property
    def mean_snr_db(self) -> float:
        """Long-run mean SNR (dB) against the environment's mean noise."""
        return self._mean_rssi_dbm - self.environment.noise.mean_dbm

    def sample(self, time_s: float) -> ChannelSample:
        """Observe the channel for one transmission at ``time_s``.

        Time must be non-decreasing across calls on the same channel.
        """
        attenuation = self._fading.attenuation_db(time_s)
        rssi = cc2420.clamp_rssi(self._mean_rssi_dbm - attenuation)
        noise = float(self.environment.noise.sample(self._rng))
        snr = rssi - noise
        lqi = lqi_mod.sample_lqi(snr, self._rng)
        return ChannelSample(time_s=time_s, rssi_dbm=rssi, noise_dbm=noise, lqi=lqi)

    def frame_error_probability(self, snr_db: float, frame_bytes: int) -> float:
        """PER of a ``frame_bytes`` frame at an instantaneous SNR."""
        return float(
            self.environment.ber.frame_error_probability(snr_db, frame_bytes)
        )

    def transmit_frame(self, time_s: float, frame_bytes: int) -> "TransmissionOutcome":
        """Sample one frame transmission: channel snapshot + success draw.

        A frame whose RSSI is at or below sensitivity is always lost.
        """
        sample = self.sample(time_s)
        if not sample.decodable:
            return TransmissionOutcome(sample=sample, delivered=False)
        p_err = self.frame_error_probability(sample.snr_db, frame_bytes)
        delivered = bool(self._rng.random() >= p_err)
        return TransmissionOutcome(sample=sample, delivered=delivered)


@dataclass(frozen=True)
class TransmissionOutcome:
    """Result of one frame transmission attempt over the channel."""

    sample: ChannelSample
    delivered: bool
