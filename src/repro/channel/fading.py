"""Temporal RSSI dynamics: slow shadowing plus fast per-packet fading.

The paper's Fig. 4 shows that RSSI is not stable indoors, that its deviation
does not correlate with output power, and that the 35 m position (near a
kitchen and meeting room, so exposed to human shadowing) is markedly more
variable than the others.

We decompose the per-packet RSSI deviation into:

* a **slow shadowing** component — an Ornstein-Uhlenbeck (continuous-time
  AR(1)) process in dB with time constant ``tau_s``, capturing furniture/
  door/position effects that persist across many packets;
* a **fast fading** component — i.i.d. Gaussian dB jitter per transmission,
  capturing multipath flutter;
* optional **human shadowing events** — a Poisson process of transient
  attenuation dips (people walking through the Fresnel zone), used at the
  35 m position to reproduce its elevated deviation.

Everything is seeded explicitly; the same RNG stream yields the same channel
trajectory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ChannelError

__all__ = [
    "HumanShadowingConfig",
    "ShadowingProcess",
]


@dataclass(frozen=True)
class HumanShadowingConfig:
    """Poisson process of transient attenuation dips.

    Each event attenuates the link by an exponentially distributed depth for
    an exponentially distributed duration.
    """

    rate_per_s: float = 0.02
    mean_depth_db: float = 6.0
    mean_duration_s: float = 4.0

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ChannelError(f"rate must be >= 0, got {self.rate_per_s!r}")
        if self.mean_depth_db < 0:
            raise ChannelError(f"depth must be >= 0, got {self.mean_depth_db!r}")
        if self.mean_duration_s <= 0:
            raise ChannelError(
                f"duration must be positive, got {self.mean_duration_s!r}"
            )


class ShadowingProcess:
    """Stateful slow + fast fading generator, advanced by wall-clock time.

    Parameters
    ----------
    slow_sigma_db:
        Stationary standard deviation of the slow (OU) component.
    slow_tau_s:
        Correlation time constant of the slow component.
    fast_sigma_db:
        Standard deviation of the i.i.d. fast component.
    human:
        Optional human-shadowing event process.
    rng:
        Random generator owning this process's stream.
    """

    def __init__(
        self,
        slow_sigma_db: float,
        slow_tau_s: float,
        fast_sigma_db: float,
        rng: np.random.Generator,
        human: Optional[HumanShadowingConfig] = None,
    ) -> None:
        if slow_sigma_db < 0 or fast_sigma_db < 0:
            raise ChannelError("fading sigmas must be >= 0")
        if slow_tau_s <= 0:
            raise ChannelError(f"slow_tau_s must be positive, got {slow_tau_s!r}")
        self.slow_sigma_db = slow_sigma_db
        self.slow_tau_s = slow_tau_s
        self.fast_sigma_db = fast_sigma_db
        self.human = human
        self._rng = rng
        self._time_s = 0.0
        self._slow_db = (
            rng.normal(0.0, slow_sigma_db) if slow_sigma_db > 0 else 0.0
        )
        # Human-shadowing state: when the current event (if any) ends and how
        # deep it is, plus when the next event begins.
        self._event_depth_db = 0.0
        self._event_end_s = 0.0
        self._next_event_s = self._draw_next_event(0.0)

    def _draw_next_event(self, now_s: float) -> float:
        if self.human is None or self.human.rate_per_s <= 0:
            return math.inf
        return now_s + self._rng.exponential(1.0 / self.human.rate_per_s)

    def _advance_slow(self, dt_s: float) -> None:
        if self.slow_sigma_db == 0 or dt_s <= 0:
            return
        rho = math.exp(-dt_s / self.slow_tau_s)
        innovation_std = self.slow_sigma_db * math.sqrt(max(0.0, 1.0 - rho * rho))
        self._slow_db = rho * self._slow_db + self._rng.normal(0.0, innovation_std)

    def _advance_events(self, now_s: float) -> None:
        if self.human is None:
            return
        # Expire the active event, then start any events whose time has come
        # (only the most recent pending event matters at packet timescales).
        if now_s >= self._event_end_s:
            self._event_depth_db = 0.0
        while now_s >= self._next_event_s:
            start = self._next_event_s
            self._event_depth_db = self._rng.exponential(self.human.mean_depth_db)
            self._event_end_s = start + self._rng.exponential(
                self.human.mean_duration_s
            )
            self._next_event_s = self._draw_next_event(start)
            if now_s >= self._event_end_s:
                self._event_depth_db = 0.0

    def attenuation_db(self, now_s: float) -> float:
        """Total fading attenuation (dB, may be negative) at ``now_s``.

        Time must be non-decreasing across calls; each call also draws a
        fresh fast-fading term, so one call corresponds to one transmission.
        """
        if now_s < self._time_s:
            raise ChannelError(
                f"time must be non-decreasing: {now_s} < {self._time_s}"
            )
        self._advance_slow(now_s - self._time_s)
        self._advance_events(now_s)
        self._time_s = now_s
        fast = (
            self._rng.normal(0.0, self.fast_sigma_db)
            if self.fast_sigma_db > 0
            else 0.0
        )
        # Events only ever attenuate (positive dB loss); slow/fast are
        # symmetric around the frozen position offset.
        return -(self._slow_db + fast) + self._event_depth_db

    def sample_block(self, start_s: float, interval_s: float, count: int) -> np.ndarray:
        """Vectorized helper: attenuation for ``count`` evenly spaced packets."""
        if count < 0:
            raise ChannelError(f"count must be >= 0, got {count!r}")
        if interval_s <= 0:
            raise ChannelError(f"interval must be positive, got {interval_s!r}")
        # Sequential by construction (each call advances the fading state),
        # so build a list and convert once rather than filling an ndarray.
        return np.array(
            [
                self.attenuation_db(start_s + i * interval_s)
                for i in range(count)
            ],
            dtype=float,
        )
