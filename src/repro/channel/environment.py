"""Radio environments: the composition of path loss, noise, fading and BER.

An :class:`Environment` bundles everything needed to turn a (distance, TX
power) pair into per-packet SNR samples and frame error probabilities. The
:data:`HALLWAY_2012` preset reconstructs the paper's 2 m × 40 m university
hallway: log-normal path loss fitted at n = 2.19 / σ = 3.2, a ≈ −95 dBm
average noise floor, moderate slow/fast fading, extra human shadowing at the
35 m position, and the calibrated empirical-exponential BER (see
``repro.radio.ber``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from ..errors import ChannelError
from ..radio.ber import AnalyticOQPSKBer, BitErrorModel, EmpiricalExpBer
from .fading import HumanShadowingConfig
from .noise import ConstantNoiseFloor, NoiseFloorModel
from .pathloss import LogNormalShadowing

__all__ = [
    "Environment",
    "HALLWAY_2012",
    "QUIET_HALLWAY",
]


@dataclass(frozen=True)
class Environment:
    """A complete radio environment for the link simulator."""

    name: str = "hallway-2012"
    pathloss: LogNormalShadowing = field(default_factory=LogNormalShadowing)
    noise: object = field(default_factory=NoiseFloorModel)
    ber: BitErrorModel = field(default_factory=EmpiricalExpBer)
    #: Stationary std of slow (OU) shadowing (dB).
    slow_sigma_db: float = 1.2
    #: Correlation time constant of slow shadowing (s).
    slow_tau_s: float = 20.0
    #: Std of per-transmission fast fading (dB).
    fast_sigma_db: float = 1.0
    #: Extra slow-shadowing std added at specific positions (dB).
    extra_slow_sigma_by_distance: Mapping[float, float] = field(
        default_factory=lambda: {35.0: 1.8}
    )
    #: Human-shadowing event process per position (None = no events).
    human_shadowing_by_distance: Mapping[float, HumanShadowingConfig] = field(
        default_factory=lambda: {35.0: HumanShadowingConfig()}
    )

    def __post_init__(self) -> None:
        if self.slow_sigma_db < 0 or self.fast_sigma_db < 0:
            raise ChannelError("fading sigmas must be >= 0")
        if self.slow_tau_s <= 0:
            raise ChannelError(f"slow_tau_s must be positive, got {self.slow_tau_s!r}")

    def slow_sigma_at(self, distance_m: float) -> float:
        """Slow-shadowing std at a position, including positional extras."""
        return self.slow_sigma_db + float(
            self.extra_slow_sigma_by_distance.get(distance_m, 0.0)
        )

    def human_shadowing_at(self, distance_m: float) -> Optional[HumanShadowingConfig]:
        """Human-shadowing event process at a position, if any."""
        return self.human_shadowing_by_distance.get(distance_m)

    def with_constant_noise(self, level_dbm: float = -95.0) -> "Environment":
        """Variant with the paper's naive constant noise floor (Fig. 5)."""
        return replace(
            self,
            name=f"{self.name}+constant-noise",
            noise=ConstantNoiseFloor(level_dbm),
        )

    def with_analytic_ber(self, implementation_loss_db: float = 10.0) -> "Environment":
        """Variant using the analytic O-QPSK BER (sharp-cliff ablation)."""
        return replace(
            self,
            name=f"{self.name}+analytic-ber",
            ber=AnalyticOQPSKBer(implementation_loss_db=implementation_loss_db),
        )

    def quiet(self) -> "Environment":
        """Variant with all temporal dynamics disabled (mean channel only).

        Useful for tests and for model-vs-simulation comparisons where the
        SNR must be exactly the configured value.
        """
        return replace(
            self,
            name=f"{self.name}+quiet",
            slow_sigma_db=0.0,
            fast_sigma_db=0.0,
            extra_slow_sigma_by_distance={},
            human_shadowing_by_distance={},
        )


#: The reconstructed paper environment.
HALLWAY_2012 = Environment()

#: A dynamics-free variant used heavily by tests.
QUIET_HALLWAY = HALLWAY_2012.quiet()
