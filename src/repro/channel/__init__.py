"""Channel substrate: path loss, noise floor, fading, composed link channel.

Reconstructs the paper's hallway radio environment (Sec. II-B, Sec. III-A):
log-normal shadowing with n = 2.19 / σ = 3.2 (Fig. 3), a −95 dBm-average
fluctuating noise floor (Fig. 5), position-dependent RSSI variability with
human shadowing at 35 m (Fig. 4).
"""

from .budget import LinkBudget, LinkBudgetRow
from .environment import Environment, HALLWAY_2012, QUIET_HALLWAY
from .fading import HumanShadowingConfig, ShadowingProcess
from .link import ChannelSample, LinkChannel, TransmissionOutcome
from .noise import CONSTANT_NOISE_DBM, ConstantNoiseFloor, NoiseFloorModel, NoiseMode
from .pathloss import (
    CAMPAIGN_POSITION_OFFSETS_DB,
    DEFAULT_PATH_LOSS_EXPONENT,
    DEFAULT_SHADOWING_SIGMA_DB,
    LogNormalShadowing,
    fit_path_loss,
)

__all__ = [
    "CAMPAIGN_POSITION_OFFSETS_DB",
    "CONSTANT_NOISE_DBM",
    "ChannelSample",
    "ConstantNoiseFloor",
    "DEFAULT_PATH_LOSS_EXPONENT",
    "DEFAULT_SHADOWING_SIGMA_DB",
    "Environment",
    "HALLWAY_2012",
    "HumanShadowingConfig",
    "LinkBudget",
    "LinkBudgetRow",
    "LinkChannel",
    "LogNormalShadowing",
    "NoiseFloorModel",
    "NoiseMode",
    "QUIET_HALLWAY",
    "ShadowingProcess",
    "TransmissionOutcome",
    "fit_path_loss",
]
