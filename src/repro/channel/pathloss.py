"""Log-normal shadowing path loss (the paper's Fig. 3).

The paper fits its hallway measurements to the log-normal shadowing model
with path-loss exponent n = 2.19 and deviation σ = 3.2 dB. We reproduce the
same structure:

``PL(d) = PL(d_0) + 10 · n · log10(d / d_0) + X_d``

where ``X_d`` is a per-position shadowing offset. For the six measurement
positions of the reconstructed campaign the offsets are *frozen constants*
(one realization of the hallway, chosen so that 35 m is the weakest link and
re-fitting the model recovers n ≈ 2.19 with σ ≈ 3 dB); for any other
distance a deterministic offset is drawn from N(0, σ) seeded by the distance,
so the same distance always sees the same hallway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping

import numpy as np

from ..errors import ChannelError

__all__ = [
    "DEFAULT_PATH_LOSS_EXPONENT",
    "DEFAULT_SHADOWING_SIGMA_DB",
    "DEFAULT_REFERENCE_DISTANCE_M",
    "DEFAULT_REFERENCE_LOSS_DB",
    "CAMPAIGN_POSITION_OFFSETS_DB",
    "LogNormalShadowing",
    "fit_path_loss",
]

#: Path-loss exponent fitted by the paper. This is the defining site (the
#: channel layer cannot import :mod:`repro.core`); ``core.constants``
#: re-exports it as ``PATH_LOSS_EXPONENT`` for the model layer.
DEFAULT_PATH_LOSS_EXPONENT = 2.19

#: Shadowing deviation fitted by the paper (dB); re-exported by
#: ``core.constants`` as ``PATH_LOSS_SIGMA_DB``.
DEFAULT_SHADOWING_SIGMA_DB = 3.2

#: Reference distance (m).
DEFAULT_REFERENCE_DISTANCE_M = 1.0

#: Path loss at the reference distance (dB). Lower than the 40 dB free-space
#: value at 2.4 GHz because the hallway acts as a partial waveguide; chosen so
#: the per-power-level SNR ranges match the paper's observations (see
#: DESIGN.md §2).
DEFAULT_REFERENCE_LOSS_DB = 36.0

#: Frozen shadowing realization at the six campaign positions (dB).
CAMPAIGN_POSITION_OFFSETS_DB: Mapping[float, float] = {
    5.0: 3.5,
    10.0: -3.0,
    15.0: 2.5,
    20.0: -4.0,
    30.0: 0.5,
    35.0: 5.5,
}


@dataclass(frozen=True)
class LogNormalShadowing:
    """Deterministic mean path loss with a frozen shadowing realization."""

    exponent: float = DEFAULT_PATH_LOSS_EXPONENT
    sigma_db: float = DEFAULT_SHADOWING_SIGMA_DB
    reference_distance_m: float = DEFAULT_REFERENCE_DISTANCE_M
    reference_loss_db: float = DEFAULT_REFERENCE_LOSS_DB
    #: Per-position shadowing offsets; positions not listed get a
    #: deterministic pseudo-random offset (seeded by distance).
    position_offsets_db: Mapping[float, float] = field(
        default_factory=lambda: dict(CAMPAIGN_POSITION_OFFSETS_DB)
    )

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ChannelError(f"path-loss exponent must be positive, got {self.exponent!r}")
        if self.sigma_db < 0:
            raise ChannelError(f"sigma_db must be >= 0, got {self.sigma_db!r}")
        if self.reference_distance_m <= 0:
            raise ChannelError(
                f"reference distance must be positive, got {self.reference_distance_m!r}"
            )

    def median_loss_db(self, distance_m: float) -> float:
        """Distance-dependent median path loss, without shadowing (dB)."""
        if distance_m <= 0:
            raise ChannelError(f"distance must be positive, got {distance_m!r}")
        return self.reference_loss_db + 10.0 * self.exponent * math.log10(
            distance_m / self.reference_distance_m
        )

    def shadowing_offset_db(self, distance_m: float) -> float:
        """The frozen shadowing offset at a position (dB).

        Campaign positions use the frozen table; any other position gets a
        reproducible draw from N(0, σ) seeded by the distance, so repeated
        queries (and repeated campaigns) agree.
        """
        if distance_m in self.position_offsets_db:
            return float(self.position_offsets_db[distance_m])
        seed = int(round(distance_m * 1000.0)) & 0xFFFFFFFF
        rng = np.random.default_rng(seed)
        return float(rng.normal(0.0, self.sigma_db))

    def loss_db(self, distance_m: float) -> float:
        """Total path loss including the position's shadowing offset (dB)."""
        return self.median_loss_db(distance_m) + self.shadowing_offset_db(distance_m)

    def mean_rssi_dbm(self, tx_power_dbm: float, distance_m: float) -> float:
        """Long-run mean RSSI at the receiver for a given TX power (dBm)."""
        return tx_power_dbm - self.loss_db(distance_m)


def fit_path_loss(
    distances_m: np.ndarray,
    rssi_dbm: np.ndarray,
    tx_power_dbm: float,
    reference_distance_m: float = DEFAULT_REFERENCE_DISTANCE_M,
) -> Dict[str, float]:
    """Fit the log-normal shadowing model to (distance, RSSI) samples.

    This is the regression behind the paper's Fig. 3: a least-squares line of
    path loss versus ``10·log10(d/d0)`` whose slope is the exponent ``n``,
    whose intercept is ``PL(d0)``, and whose residual standard deviation is
    the shadowing σ.

    Returns a dict with keys ``exponent``, ``reference_loss_db``,
    ``sigma_db`` and ``n_samples``.
    """
    d = np.asarray(distances_m, dtype=float)
    r = np.asarray(rssi_dbm, dtype=float)
    if d.shape != r.shape:
        raise ChannelError(
            f"distances and RSSI arrays must match, got {d.shape} vs {r.shape}"
        )
    if d.size < 3:
        raise ChannelError(f"need at least 3 samples to fit path loss, got {d.size}")
    if np.any(d <= 0):
        raise ChannelError("all distances must be positive")
    path_loss = tx_power_dbm - r
    x = 10.0 * np.log10(d / reference_distance_m)
    slope, intercept = np.polyfit(x, path_loss, 1)
    residuals = path_loss - (intercept + slope * x)
    return {
        "exponent": float(slope),
        "reference_loss_db": float(intercept),
        "sigma_db": float(np.std(residuals, ddof=2)) if d.size > 2 else 0.0,
        "n_samples": int(d.size),
    }
