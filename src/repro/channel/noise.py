"""Noise-floor model (the paper's Fig. 5).

The paper analyses ~24 million noise-floor samples and finds (a) the average
is −95 dBm and (b) assuming a constant −95 dBm floor distorts the SNR
distribution — the real floor fluctuates, mostly sitting a little below the
mean with a heavier high-noise tail caused by 2.4 GHz interference (WiFi,
microwave ovens) in the building.

We model this as a two-component Gaussian mixture: a quiet base mode and an
occasional interfered mode. The default weights/means are chosen so the
mixture mean is ≈ −95.2 dBm, matching the paper's reported average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ChannelError

__all__ = [
    "CONSTANT_NOISE_DBM",
    "NoiseMode",
    "NoiseFloorModel",
    "ConstantNoiseFloor",
]

#: The constant noise floor the paper uses as the naive baseline (dBm).
CONSTANT_NOISE_DBM = -95.0


@dataclass(frozen=True)
class NoiseMode:
    """One Gaussian component of the noise-floor mixture."""

    mean_dbm: float
    std_db: float
    weight: float

    def __post_init__(self) -> None:
        if self.std_db < 0:
            raise ChannelError(f"std_db must be >= 0, got {self.std_db!r}")
        if not 0 < self.weight <= 1:
            raise ChannelError(f"weight must be in (0, 1], got {self.weight!r}")


@dataclass(frozen=True)
class NoiseFloorModel:
    """Gaussian-mixture noise floor with a quiet mode and an interfered mode."""

    modes: Tuple[NoiseMode, ...] = (
        NoiseMode(mean_dbm=-96.5, std_db=1.0, weight=0.85),
        NoiseMode(mean_dbm=-88.0, std_db=3.0, weight=0.15),
    )

    def __post_init__(self) -> None:
        if not self.modes:
            raise ChannelError("noise model needs at least one mode")
        total = sum(m.weight for m in self.modes)
        if abs(total - 1.0) > 1e-9:
            raise ChannelError(f"mode weights must sum to 1, got {total!r}")

    @property
    def mean_dbm(self) -> float:
        """Mixture mean (dBm) — should sit near the paper's −95 dBm."""
        return sum(m.weight * m.mean_dbm for m in self.modes)

    @property
    def variance_db2(self) -> float:
        """Mixture variance (dB²)."""
        mean = self.mean_dbm
        return sum(
            m.weight * (m.std_db**2 + (m.mean_dbm - mean) ** 2) for m in self.modes
        )

    @property
    def std_db(self) -> float:
        """Mixture standard deviation (dB)."""
        return float(np.sqrt(self.variance_db2))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw noise-floor samples (dBm); scalar when ``size`` is None."""
        n = 1 if size is None else int(size)
        if n < 0:
            raise ChannelError(f"size must be >= 0, got {size!r}")
        weights = np.array([m.weight for m in self.modes])
        choice = rng.choice(len(self.modes), size=n, p=weights)
        means = np.array([m.mean_dbm for m in self.modes])[choice]
        stds = np.array([m.std_db for m in self.modes])[choice]
        samples = rng.normal(means, stds)
        return float(samples[0]) if size is None else samples


@dataclass(frozen=True)
class ConstantNoiseFloor:
    """Degenerate noise model: the paper's '-95 dBm constant' baseline."""

    level_dbm: float = CONSTANT_NOISE_DBM

    @property
    def mean_dbm(self) -> float:
        return self.level_dbm

    @property
    def std_db(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return self.level_dbm
        if size < 0:
            raise ChannelError(f"size must be >= 0, got {size!r}")
        return np.full(int(size), self.level_dbm)
