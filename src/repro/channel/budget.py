"""Link-budget planning on the reconstructed channel.

Deployment questions the paper's channel model can answer directly: how much
SNR margin does a position have at each power level, what is the maximum
distance at which a payload still clears its zone threshold, and which is
the cheapest power level for a target distance. Used by the guidelines
examples and exposed on the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ChannelError
from ..radio import cc2420
from .environment import Environment

__all__ = [
    "LinkBudgetRow",
    "LinkBudget",
]


@dataclass(frozen=True)
class LinkBudgetRow:
    """Budget at one (distance, power level) point."""

    distance_m: float
    ptx_level: int
    tx_power_dbm: float
    path_loss_db: float
    mean_rssi_dbm: float
    mean_snr_db: float

    @property
    def sensitivity_margin_db(self) -> float:
        """RSSI headroom over the CC2420 sensitivity."""
        return self.mean_rssi_dbm - cc2420.SENSITIVITY_DBM

    def snr_margin_over(self, threshold_db: float) -> float:
        """SNR headroom over an arbitrary threshold (e.g. a zone border)."""
        return self.mean_snr_db - threshold_db


class LinkBudget:
    """Budget calculator for one environment.

    Uses the long-run mean channel (frozen position shadowing included,
    temporal fading excluded); subtract a fading margin of 2–3σ for
    conservative planning.
    """

    def __init__(self, environment: Environment) -> None:
        self.environment = environment

    def at(self, distance_m: float, ptx_level: int) -> LinkBudgetRow:
        """The budget at one point."""
        if distance_m <= 0:
            raise ChannelError(f"distance must be positive, got {distance_m!r}")
        tx_dbm = cc2420.output_power_dbm(ptx_level)
        loss = self.environment.pathloss.loss_db(distance_m)
        rssi = tx_dbm - loss
        return LinkBudgetRow(
            distance_m=distance_m,
            ptx_level=ptx_level,
            tx_power_dbm=tx_dbm,
            path_loss_db=loss,
            mean_rssi_dbm=rssi,
            mean_snr_db=rssi - self.environment.noise.mean_dbm,
        )

    def table(
        self, distance_m: float, levels: Optional[Tuple[int, ...]] = None
    ) -> List[LinkBudgetRow]:
        """Budget rows for every power level at one distance."""
        return [
            self.at(distance_m, level)
            for level in (levels or cc2420.PA_LEVELS)
        ]

    def cheapest_level_for_snr(
        self, distance_m: float, required_snr_db: float
    ) -> Optional[int]:
        """Lowest power level whose mean SNR meets a requirement, or None."""
        for row in self.table(distance_m):
            if row.mean_snr_db >= required_snr_db:
                return row.ptx_level
        return None

    def max_distance_for_snr(
        self,
        ptx_level: int,
        required_snr_db: float,
        lo_m: float = 0.5,
        hi_m: float = 500.0,
        tolerance_m: float = 0.01,
    ) -> float:
        """Largest distance (by median path loss) meeting an SNR requirement.

        Bisects on the *median* loss (ignoring per-position shadowing, which
        is not defined between survey points). Raises when even ``lo_m``
        fails; returns ``hi_m`` when the whole range passes.
        """
        if lo_m <= 0 or hi_m <= lo_m:
            raise ChannelError("need 0 < lo_m < hi_m")
        tx_dbm = cc2420.output_power_dbm(ptx_level)
        noise = self.environment.noise.mean_dbm

        def snr_at(distance: float) -> float:
            return tx_dbm - self.environment.pathloss.median_loss_db(distance) - noise

        if snr_at(lo_m) < required_snr_db:
            raise ChannelError(
                f"even {lo_m} m misses {required_snr_db} dB at level {ptx_level}"
            )
        if snr_at(hi_m) >= required_snr_db:
            return hi_m
        lo, hi = lo_m, hi_m
        while hi - lo > tolerance_m:
            mid = (lo + hi) / 2
            if snr_at(mid) >= required_snr_db:
                lo = mid
            else:
                hi = mid
        return lo

    def coverage_map(
        self, required_snr_db: float
    ) -> Dict[int, float]:
        """Level → max distance (median loss) meeting an SNR requirement."""
        out: Dict[int, float] = {}
        for level in cc2420.PA_LEVELS:
            try:
                out[level] = self.max_distance_for_snr(level, required_snr_db)
            except ChannelError:
                continue
        return out
