"""Analysis layer: metrics from traces, binning/statistics, channel surveys."""

from .ascii_plot import scatter, side_by_side, sparkline
from .channel_stats import (
    RssiSurvey,
    SnrDistributions,
    path_loss_fit_from_survey,
    rssi_deviation_table,
    snr_distributions,
    survey_rssi,
)
from .metrics import LinkMetrics, compute_metrics
from .timeseries import (
    MetricSeries,
    delivery_ratio_over_time,
    detect_degradation,
    goodput_over_time,
    per_over_time,
)
from .stats import (
    BinnedSeries,
    bin_series,
    bootstrap_ci,
    coefficient_of_variation_squared,
    relative_error,
    snr_bin_edges,
)

__all__ = [
    "BinnedSeries",
    "scatter",
    "side_by_side",
    "sparkline",
    "LinkMetrics",
    "MetricSeries",
    "RssiSurvey",
    "SnrDistributions",
    "bin_series",
    "bootstrap_ci",
    "coefficient_of_variation_squared",
    "compute_metrics",
    "delivery_ratio_over_time",
    "detect_degradation",
    "goodput_over_time",
    "path_loss_fit_from_survey",
    "per_over_time",
    "relative_error",
    "rssi_deviation_table",
    "snr_bin_edges",
    "snr_distributions",
    "survey_rssi",
]
