"""Binning, summary statistics and confidence intervals for campaign data.

The paper's figures are almost all "metric versus SNR" plots built by
grouping per-packet (or per-configuration) observations into SNR bins; this
module provides that machinery plus bootstrap confidence intervals used in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "BinnedSeries",
    "bin_series",
    "snr_bin_edges",
    "bootstrap_ci",
    "coefficient_of_variation_squared",
    "relative_error",
]


@dataclass(frozen=True)
class BinnedSeries:
    """A metric aggregated over bins of an independent variable."""

    centers: np.ndarray
    means: np.ndarray
    stds: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        n = self.centers.size
        if not (self.means.size == self.stds.size == self.counts.size == n):
            raise AnalysisError("binned series arrays must have equal length")

    def nonempty(self) -> "BinnedSeries":
        """Drop empty bins."""
        mask = self.counts > 0
        return BinnedSeries(
            centers=self.centers[mask],
            means=self.means[mask],
            stds=self.stds[mask],
            counts=self.counts[mask],
        )


def bin_series(
    x: Sequence[float],
    y: Sequence[float],
    edges: Sequence[float],
) -> BinnedSeries:
    """Mean/std of ``y`` grouped into bins of ``x`` defined by ``edges``."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise AnalysisError(f"x and y must match, got {x_arr.shape} vs {y_arr.shape}")
    edge_arr = np.asarray(edges, dtype=float)
    if edge_arr.size < 2 or np.any(np.diff(edge_arr) <= 0):
        raise AnalysisError("bin edges must be increasing with at least 2 entries")
    n_bins = edge_arr.size - 1
    idx = np.digitize(x_arr, edge_arr) - 1
    centers = (edge_arr[:-1] + edge_arr[1:]) / 2.0
    in_range = (idx >= 0) & (idx < n_bins)
    idx_valid = idx[in_range]
    y_valid = y_arr[in_range]
    counts = np.bincount(idx_valid, minlength=n_bins)
    sums = np.bincount(idx_valid, weights=y_valid, minlength=n_bins)
    means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    deviations = y_valid - means[idx_valid]
    sq_sums = np.bincount(
        idx_valid, weights=deviations * deviations, minlength=n_bins
    )
    stds = np.where(
        counts > 1,
        np.sqrt(sq_sums / np.maximum(counts - 1, 1)),
        np.where(counts == 1, 0.0, np.nan),
    )
    return BinnedSeries(centers=centers, means=means, stds=stds, counts=counts)


def snr_bin_edges(
    lo_db: float = 0.0, hi_db: float = 40.0, width_db: float = 1.0
) -> np.ndarray:
    """The default SNR binning used by the figure benches."""
    if width_db <= 0 or hi_db <= lo_db:
        raise AnalysisError("invalid SNR bin specification")
    return np.arange(lo_db, hi_db + width_db / 2, width_db)


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap confidence interval.

    Returns ``(point_estimate, lo, hi)``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence!r}")
    rng = np.random.default_rng(seed)
    point = float(statistic(arr))
    resampled = np.asarray(
        [
            statistic(rng.choice(arr, size=arr.size, replace=True))
            for _ in range(n_resamples)
        ],
        dtype=float,
    )
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(resampled, [alpha, 1.0 - alpha])
    return point, float(lo), float(hi)


def coefficient_of_variation_squared(values: Sequence[float]) -> float:
    """Squared coefficient of variation (used for M/G/1 wait estimates)."""
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        raise AnalysisError("need at least 2 values for a variation coefficient")
    mean = arr.mean()
    if mean == 0:
        raise AnalysisError("mean is zero; CV is undefined")
    return float(arr.var(ddof=1) / mean**2)


def relative_error(measured: float, reference: float) -> float:
    """|measured − reference| / |reference|; used in EXPERIMENTS.md tables."""
    if reference == 0:
        raise AnalysisError("reference value is zero; relative error undefined")
    return abs(measured - reference) / abs(reference)
