"""Sliding-window time series over a link trace.

Turns a per-packet trace into time-resolved metric series — PER over time,
goodput over time, delivery ratio over time — which is how one *sees*
non-stationary behaviour (mobility walks, shadowing events, interferer
bursts) that whole-run aggregates average away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import AnalysisError
from ..sim.trace import LinkTrace

__all__ = [
    "MetricSeries",
    "per_over_time",
    "goodput_over_time",
    "delivery_ratio_over_time",
    "detect_degradation",
]


@dataclass(frozen=True)
class MetricSeries:
    """A time-resolved metric: window centers and per-window values."""

    times_s: np.ndarray
    values: np.ndarray
    counts: np.ndarray
    metric: str

    def __post_init__(self) -> None:
        if not (self.times_s.size == self.values.size == self.counts.size):
            raise AnalysisError("series arrays must have equal length")

    def nonempty(self) -> "MetricSeries":
        """Drop windows with no observations."""
        mask = self.counts > 0
        return MetricSeries(
            times_s=self.times_s[mask],
            values=self.values[mask],
            counts=self.counts[mask],
            metric=self.metric,
        )


def _window_edges(duration_s: float, window_s: float) -> np.ndarray:
    if window_s <= 0:
        raise AnalysisError(f"window_s must be positive, got {window_s!r}")
    if duration_s <= 0:
        raise AnalysisError(f"trace duration must be positive, got {duration_s!r}")
    n = max(1, int(np.ceil(duration_s / window_s)))
    return np.arange(0.0, (n + 1) * window_s, window_s)[: n + 1]


def per_over_time(trace: LinkTrace, window_s: float = 1.0) -> MetricSeries:
    """Windowed PER (Eq. 1) from the transmission log."""
    if not trace.transmissions:
        raise AnalysisError("trace has no transmission log")
    edges = _window_edges(trace.duration_s, window_s)
    times = np.array([t.tx_time_s for t in trace.transmissions])
    acked = np.array([t.acked for t in trace.transmissions])
    idx = np.clip(np.digitize(times, edges) - 1, 0, edges.size - 2)
    n_windows = edges.size - 1
    counts = np.zeros(n_windows)
    failures = np.zeros(n_windows)
    np.add.at(counts, idx, 1.0)
    np.add.at(failures, idx, (~acked).astype(float))
    with np.errstate(invalid="ignore"):
        values = np.where(counts > 0, failures / np.maximum(counts, 1), np.nan)
    centers = (edges[:-1] + edges[1:]) / 2
    return MetricSeries(
        times_s=centers, values=values, counts=counts.astype(int), metric="per"
    )


def goodput_over_time(trace: LinkTrace, window_s: float = 1.0) -> MetricSeries:
    """Windowed goodput (delivered payload bits per second)."""
    if not trace.packets:
        raise AnalysisError("trace has no packets")
    edges = _window_edges(trace.duration_s, window_s)
    n_windows = edges.size - 1
    bits = np.zeros(n_windows)
    counts = np.zeros(n_windows)
    delivered = [
        packet
        for packet in trace.packets
        if packet.first_delivery_s is not None and packet.delivered
    ]
    if delivered:
        times = np.array([p.first_delivery_s for p in delivered], dtype=float)
        payload_bits = np.array(
            [p.payload_bytes * 8 for p in delivered], dtype=float
        )
        idx = np.clip(np.digitize(times, edges) - 1, 0, n_windows - 1)
        np.add.at(bits, idx, payload_bits)
        np.add.at(counts, idx, 1.0)
    centers = (edges[:-1] + edges[1:]) / 2
    return MetricSeries(
        times_s=centers,
        values=bits / window_s,
        counts=counts.astype(int),
        metric="goodput_bps",
    )


def delivery_ratio_over_time(
    trace: LinkTrace, window_s: float = 1.0
) -> MetricSeries:
    """Windowed fraction of generated packets eventually acknowledged."""
    if not trace.packets:
        raise AnalysisError("trace has no packets")
    edges = _window_edges(trace.duration_s, window_s)
    n_windows = edges.size - 1
    generated = np.zeros(n_windows)
    delivered = np.zeros(n_windows)
    gen_times = np.array([p.generated_s for p in trace.packets], dtype=float)
    ok = np.array([p.delivered for p in trace.packets], dtype=float)
    idx = np.clip(np.digitize(gen_times, edges) - 1, 0, n_windows - 1)
    np.add.at(generated, idx, 1.0)
    np.add.at(delivered, idx, ok)
    with np.errstate(invalid="ignore"):
        values = np.where(
            generated > 0, delivered / np.maximum(generated, 1), np.nan
        )
    centers = (edges[:-1] + edges[1:]) / 2
    return MetricSeries(
        times_s=centers,
        values=values,
        counts=generated.astype(int),
        metric="delivery_ratio",
    )


def detect_degradation(
    series: MetricSeries,
    threshold: float,
    above_is_bad: bool = True,
    min_count: int = 5,
) -> Optional[float]:
    """First window center where a metric crosses a degradation threshold.

    Windows with fewer than ``min_count`` observations are skipped (noise).
    Returns None when the series never degrades.
    """
    if min_count < 1:
        raise AnalysisError(f"min_count must be >= 1, got {min_count!r}")
    valid = (series.counts >= min_count) & ~np.isnan(series.values)
    if above_is_bad:
        bad = valid & (series.values > threshold)
    else:
        bad = valid & (series.values < threshold)
    if not bad.any():
        return None
    return float(series.times_s[int(np.argmax(bad))])
