"""Performance metrics computed from a link trace.

These are the paper's four metric families (Sec. IV–VII) plus the PHY-level
PER of Sec. III-B, computed exactly as the paper defines them:

* ``per`` — unacknowledged transmissions over total transmissions (Eq. 1);
* ``energy_per_info_bit_j`` — measured U_eng: TX energy per successfully
  delivered payload bit (Eq. 2's measured counterpart);
* ``goodput_bps`` — delivered unique payload bits per unit time;
* ``mean_delay_s`` — generation-to-first-reception delay of delivered
  packets (queueing + service);
* ``plr_radio`` / ``plr_queue`` / ``plr_total`` — the Sec. VII loss split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..sim.trace import LinkTrace, PacketFate

__all__ = [
    "LinkMetrics",
    "compute_metrics",
]


@dataclass(frozen=True)
class LinkMetrics:
    """Aggregate performance of one configuration run."""

    n_packets: int
    n_delivered: int
    n_queue_dropped: int
    n_radio_dropped: int
    n_transmissions: int
    n_acked_transmissions: int
    duration_s: float
    goodput_bps: float
    per: float
    plr_radio: float
    plr_queue: float
    plr_total: float
    mean_delay_s: float
    p95_delay_s: float
    mean_queueing_delay_s: float
    mean_service_time_s: float
    mean_tries: float
    energy_per_info_bit_j: float
    tx_energy_j: float
    mean_rssi_dbm: float
    mean_snr_db: float
    mean_lqi: float

    @property
    def goodput_kbps(self) -> float:
        """Goodput in kb/s, the unit of the paper's Fig. 10 / Table IV."""
        return self.goodput_bps / 1e3

    @property
    def energy_per_info_bit_uj(self) -> float:
        """U_eng in µJ/bit, the unit of the paper's Table IV."""
        return self.energy_per_info_bit_j * 1e6

    @property
    def delivery_ratio(self) -> float:
        """Fraction of generated packets eventually acknowledged."""
        if self.n_packets == 0:
            return 0.0
        return self.n_delivered / self.n_packets


def _mean(values) -> float:
    arr = np.asarray([v for v in values if v is not None], dtype=float)
    return float(arr.mean()) if arr.size else math.nan


def _percentile(values, q: float) -> float:
    arr = np.asarray([v for v in values if v is not None], dtype=float)
    return float(np.percentile(arr, q)) if arr.size else math.nan


def compute_metrics(trace: LinkTrace) -> LinkMetrics:
    """Aggregate a trace into :class:`LinkMetrics`.

    The goodput window is the trace duration (first arrival to last MAC
    activity); a trace with zero duration (single instantaneous packet)
    reports zero goodput rather than dividing by zero.
    """
    if not trace.packets:
        raise SimulationError("cannot compute metrics for an empty trace")
    delivered = trace.packets_with_fate(PacketFate.DELIVERED)
    queue_drops = trace.packets_with_fate(PacketFate.QUEUE_DROP)
    radio_drops = trace.packets_with_fate(PacketFate.RADIO_DROP)
    n_packets = len(trace.packets)

    n_tx = trace.n_transmissions
    n_acked_tx = trace.n_acked_transmissions
    per = 1.0 - (n_acked_tx / n_tx) if n_tx else 0.0

    serviced = delivered + radio_drops
    plr_radio = (len(radio_drops) / len(serviced)) if serviced else 0.0
    plr_queue = len(queue_drops) / n_packets
    plr_total = (len(queue_drops) + len(radio_drops)) / n_packets

    delivered_bits = sum(p.payload_bytes * 8 for p in delivered)
    goodput = delivered_bits / trace.duration_s if trace.duration_s > 0 else 0.0

    energy_per_bit = (
        trace.tx_energy_j / delivered_bits if delivered_bits else math.inf
    )

    if trace.transmissions:
        rssi = _mean(t.rssi_dbm for t in trace.transmissions)
        snr = _mean(t.snr_db for t in trace.transmissions)
        lqi = _mean(t.lqi for t in trace.transmissions)
    else:
        rssi = snr = lqi = math.nan

    return LinkMetrics(
        n_packets=n_packets,
        n_delivered=len(delivered),
        n_queue_dropped=len(queue_drops),
        n_radio_dropped=len(radio_drops),
        n_transmissions=n_tx,
        n_acked_transmissions=n_acked_tx,
        duration_s=trace.duration_s,
        goodput_bps=goodput,
        per=per,
        plr_radio=plr_radio,
        plr_queue=plr_queue,
        plr_total=plr_total,
        mean_delay_s=_mean(p.delay_s for p in delivered),
        p95_delay_s=_percentile([p.delay_s for p in delivered], 95.0),
        mean_queueing_delay_s=_mean(p.queueing_delay_s for p in serviced),
        mean_service_time_s=_mean(p.service_time_s for p in serviced),
        mean_tries=_mean(p.n_tries for p in serviced),
        energy_per_info_bit_j=energy_per_bit,
        tx_energy_j=trace.tx_energy_j,
        mean_rssi_dbm=rssi,
        mean_snr_db=snr,
        mean_lqi=lqi,
    )
