"""Channel characterization (the paper's Sec. III-A, Figs. 3–5).

These functions regenerate the paper's channel figures from the simulated
environment: mean RSSI versus distance and the fitted path-loss model
(Fig. 3), per-(distance, P_tx) RSSI deviation (Fig. 4), and the real-noise
versus constant-noise SNR distributions (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..channel.environment import Environment
from ..channel.link import LinkChannel
from ..channel.noise import CONSTANT_NOISE_DBM
from ..channel.pathloss import fit_path_loss
from ..errors import ChannelError
from ..radio import cc2420

__all__ = [
    "RssiSurvey",
    "survey_rssi",
    "path_loss_fit_from_survey",
    "rssi_deviation_table",
    "SnrDistributions",
    "snr_distributions",
]


@dataclass(frozen=True)
class RssiSurvey:
    """RSSI sample statistics for one (distance, P_tx) cell."""

    distance_m: float
    ptx_level: int
    mean_rssi_dbm: float
    std_rssi_db: float
    n_samples: int


def survey_rssi(
    environment: Environment,
    distances_m: Sequence[float],
    ptx_levels: Sequence[int],
    n_samples: int = 500,
    interval_s: float = 0.1,
    seed: int = 0,
) -> List[RssiSurvey]:
    """Sample RSSI over time for each (distance, P_tx) cell (Figs. 3–4)."""
    if n_samples < 2:
        raise ChannelError(f"need at least 2 samples per cell, got {n_samples!r}")
    surveys = []
    for di, distance in enumerate(distances_m):
        for pi, level in enumerate(ptx_levels):
            rng = np.random.default_rng((seed, di, pi))
            channel = LinkChannel(environment, distance, level, rng)
            rssi = np.array(
                [channel.sample(i * interval_s).rssi_dbm for i in range(n_samples)]
            )
            surveys.append(
                RssiSurvey(
                    distance_m=distance,
                    ptx_level=level,
                    mean_rssi_dbm=float(rssi.mean()),
                    std_rssi_db=float(rssi.std(ddof=1)),
                    n_samples=n_samples,
                )
            )
    return surveys


def path_loss_fit_from_survey(
    surveys: Sequence[RssiSurvey], ptx_level: int = 31
) -> Dict[str, float]:
    """Fit the log-normal model to a survey at one power level (Fig. 3)."""
    cells = [s for s in surveys if s.ptx_level == ptx_level]
    if len(cells) < 3:
        raise ChannelError(
            f"need >= 3 distances at P_tx {ptx_level} to fit, got {len(cells)}"
        )
    distances = np.array([s.distance_m for s in cells])
    rssi = np.array([s.mean_rssi_dbm for s in cells])
    return fit_path_loss(distances, rssi, cc2420.output_power_dbm(ptx_level))


def rssi_deviation_table(
    surveys: Sequence[RssiSurvey],
) -> Dict[Tuple[float, int], float]:
    """(distance, P_tx) → RSSI standard deviation (Fig. 4's content)."""
    return {(s.distance_m, s.ptx_level): s.std_rssi_db for s in surveys}


@dataclass(frozen=True)
class SnrDistributions:
    """Real-noise vs constant-noise SNR samples for one link (Fig. 5)."""

    real_snr_db: np.ndarray
    constant_noise_snr_db: np.ndarray

    @property
    def real_mean(self) -> float:
        return float(self.real_snr_db.mean())

    @property
    def constant_mean(self) -> float:
        return float(self.constant_noise_snr_db.mean())

    @property
    def real_std(self) -> float:
        return float(self.real_snr_db.std(ddof=1))

    @property
    def constant_std(self) -> float:
        return float(self.constant_noise_snr_db.std(ddof=1))

    def histogram(self, which: str = "real", bin_width_db: float = 1.0):
        """(bin_centers, density) for plotting/printing the distribution."""
        data = self.real_snr_db if which == "real" else self.constant_noise_snr_db
        lo = np.floor(data.min()) - 1
        hi = np.ceil(data.max()) + 1
        edges = np.arange(lo, hi + bin_width_db / 2, bin_width_db)
        density, _ = np.histogram(data, bins=edges, density=True)
        centers = (edges[:-1] + edges[1:]) / 2
        return centers, density


def snr_distributions(
    environment: Environment,
    distance_m: float,
    ptx_level: int,
    n_samples: int = 20000,
    interval_s: float = 0.05,
    seed: int = 0,
) -> SnrDistributions:
    """Sample the two SNR views the paper contrasts in Fig. 5.

    The "real" SNR subtracts a fresh noise-floor sample per packet; the
    "constant" view subtracts the fixed −95 dBm average.
    """
    rng = np.random.default_rng(seed)
    channel = LinkChannel(environment, distance_m, ptx_level, rng)
    samples = [channel.sample(i * interval_s) for i in range(n_samples)]
    real = np.array([s.snr_db for s in samples], dtype=float)
    rssi = np.array([s.rssi_dbm for s in samples], dtype=float)
    return SnrDistributions(
        real_snr_db=real, constant_noise_snr_db=rssi - CONSTANT_NOISE_DBM
    )
