"""Minimal ASCII plotting for benchmark and CLI output.

The benchmark harness prints the series behind each of the paper's figures;
these helpers render them as terminal sparklines and scatter grids so a
human can eyeball the *shape* (decay, saturation, crossover) directly in
``bench_output.txt`` without a plotting stack.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..errors import AnalysisError

__all__ = [
    "sparkline",
    "scatter",
    "side_by_side",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line unicode sparkline of a numeric series.

    NaNs render as spaces. ``width`` subsamples evenly when the series is
    longer than the budget.
    """
    data = [float(v) for v in values]
    if not data:
        raise AnalysisError("cannot sparkline an empty series")
    if width is not None:
        if width < 1:
            raise AnalysisError(f"width must be >= 1, got {width!r}")
        if len(data) > width:
            step = len(data) / width
            data = [data[int(i * step)] for i in range(width)]
    finite = [v for v in data if not math.isnan(v)]
    if not finite:
        return " " * len(data)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in data:
        if math.isnan(v):
            chars.append(" ")
            continue
        if span == 0:
            chars.append(_SPARK_LEVELS[0])
            continue
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[idx])
    return "".join(chars)


def scatter(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    height: int = 14,
    marker: str = "*",
) -> str:
    """A multi-line ASCII scatter plot with min/max axis labels."""
    if len(x) != len(y):
        raise AnalysisError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    points = [
        (float(a), float(b))
        for a, b in zip(x, y)
        if not (math.isnan(a) or math.isnan(b))
    ]
    if not points:
        raise AnalysisError("no finite points to plot")
    if width < 8 or height < 4:
        raise AnalysisError("plot must be at least 8x4")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for a, b in points:
        col = int((a - x_lo) / x_span * (width - 1))
        row = height - 1 - int((b - y_lo) / y_span * (height - 1))
        grid[row][col] = marker
    lines = []
    for i, row in enumerate(grid):
        label = f"{y_hi:8.3g} |" if i == 0 else (
            f"{y_lo:8.3g} |" if i == height - 1 else " " * 9 + "|"
        )
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + f"{x_lo:<10.4g}" + " " * max(0, width - 20) + f"{x_hi:>10.4g}"
    )
    return "\n".join(lines)


def side_by_side(
    labels: Sequence[str], blocks: Sequence[str], gap: int = 4
) -> str:
    """Join multi-line text blocks horizontally under their labels."""
    if len(labels) != len(blocks):
        raise AnalysisError("labels and blocks must match")
    if not blocks:
        raise AnalysisError("nothing to join")
    split = [b.splitlines() for b in blocks]
    heights = [len(s) for s in split]
    widths = [max((len(line) for line in s), default=0) for s in split]
    rows = max(heights)
    out_lines: List[str] = []
    header = (" " * gap).join(
        label.center(width) for label, width in zip(labels, widths)
    )
    out_lines.append(header)
    for r in range(rows):
        cells = []
        for s, w in zip(split, widths):
            cell = s[r] if r < len(s) else ""
            cells.append(cell.ljust(w))
        out_lines.append((" " * gap).join(cells))
    return "\n".join(out_lines)
