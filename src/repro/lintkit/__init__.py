"""reprolint — repo-specific static analysis for the ``repro`` package.

A self-contained AST-based invariant checker (stdlib only) enforcing the
conventions the paper reproduction depends on. The RPR0xx tier checks one
file at a time; the RPR1xx tier is *semantic* — a phase-1 project index
(symbol table, imports, call graph) lets its rules follow units and
randomness across function and module boundaries; the RPR2xx tier checks
*concurrency and resource safety* — per-class lock summaries inferred
from ``with self._lock:`` bodies, composed with the call graph; the
RPR3xx tier checks *array contracts* — symbolic shape/dtype/writability
inference over numpy code, composed with a hot-path function set seeded
from ``# reprolint: hot-path`` markers and the benchmark call graph:

========  =====================================================
RPR001    unit-suffix discipline (``_ms`` vs ``_s`` arithmetic)
RPR002    determinism (no global RNG / wall clock outside sim/rng.py)
RPR003    paper-constant duplication (re-hardcoded 0.224e-3, ...)
RPR004    exception discipline (ReproError subclasses only)
RPR005    public-API hygiene (__all__ + docstrings)
RPR101    unit-inference dataflow across assignments/returns/call sites
RPR102    determinism taint: stochastic functions must thread rng/seed
RPR103    scalar Python loops over numpy arrays (vectorize or list-build)
RPR104    loop-invariant pure calls (hoist out of hot loops)
RPR201    lock discipline: guarded attributes accessed without the lock
RPR202    atomicity: split check-then-act, unlocked read-modify-write
RPR203    fork safety: no locks/files/sockets into multiprocessing workers
RPR204    resource lifecycle: files/sockets/pools released on every path
RPR205    blocking-call deadlines: untimed wait/get/put/recv
RPR301    hot-loop allocation: loop-invariant array allocs on hot paths
RPR302    dtype drift: float32/float64 mixing, int accumulators, object
RPR303    broadcast contract: provably incompatible symbolic shapes
RPR304    read-only-plane mutation: writes into frozen arrays (+ escapes)
RPR305    redundant materialization: flatten vs ravel, asarray-on-array
========  =====================================================

Run it as ``wsnlink lint [--format json] [--select RPRxxx] paths...`` or
programmatically via :func:`lint_paths`; ``wsnlink lint --explain RPRxxx``
prints one rule's rationale with a bad/good example pair. Findings can be
silenced inline with ``# reprolint: disable=RPRxxx`` (on a ``with``
header, the directive covers the whole block) or grandfathered in a
committed baseline file (``reprolint-baseline.json``); the repo keeps
that baseline empty. See ``docs/LINTS.md`` for the full rule catalogue.
"""

from __future__ import annotations

from .baseline import filter_findings, load_baseline, save_baseline
from .engine import PARSE_ERROR_RULE_ID, Linter, iter_python_files, lint_paths
from .findings import Finding, Severity
from .report import per_rule_counts, render_json, render_sarif, render_text
from .rules import FileContext, Rule, all_rules, register
from .semantic import ProjectIndex

__all__ = [
    "Finding",
    "Severity",
    "FileContext",
    "Rule",
    "Linter",
    "ProjectIndex",
    "PARSE_ERROR_RULE_ID",
    "all_rules",
    "register",
    "lint_paths",
    "iter_python_files",
    "render_text",
    "render_json",
    "render_sarif",
    "per_rule_counts",
    "load_baseline",
    "save_baseline",
    "filter_findings",
]
