"""reprolint — repo-specific static analysis for the ``repro`` package.

A self-contained AST-based invariant checker (stdlib only) enforcing the
conventions the paper reproduction depends on:

========  =====================================================
RPR001    unit-suffix discipline (``_ms`` vs ``_s`` arithmetic)
RPR002    determinism (no global RNG / wall clock outside sim/rng.py)
RPR003    paper-constant duplication (re-hardcoded 0.224e-3, ...)
RPR004    exception discipline (ReproError subclasses only)
RPR005    public-API hygiene (__all__ + docstrings)
========  =====================================================

Run it as ``wsnlink lint [--format json] [--select RPR00x] paths...`` or
programmatically via :func:`lint_paths`. Findings can be silenced inline
with ``# reprolint: disable=RPR00x`` or grandfathered in a committed
baseline file (``reprolint-baseline.json``); the repo keeps that baseline
empty. See ``docs/LINTS.md`` for the full rule catalogue.
"""

from __future__ import annotations

from .baseline import filter_findings, load_baseline, save_baseline
from .engine import PARSE_ERROR_RULE_ID, Linter, iter_python_files, lint_paths
from .findings import Finding, Severity
from .report import render_json, render_text
from .rules import FileContext, Rule, all_rules, register

__all__ = [
    "Finding",
    "Severity",
    "FileContext",
    "Rule",
    "Linter",
    "PARSE_ERROR_RULE_ID",
    "all_rules",
    "register",
    "lint_paths",
    "iter_python_files",
    "render_text",
    "render_json",
    "load_baseline",
    "save_baseline",
    "filter_findings",
]
