"""Symbolic shape / dtype / writability inference for the RPR3xx tier.

Phase-1 abstract interpretation over the :class:`ProjectIndex`: every
array-valued name in a function gets a :class:`ShapeInfo` — a symbolic
shape (``("n_payload",)``, ``(4, "?")``, or unknown rank), a dtype drawn
from a small lattice (``float64 | float32 | int64 | bool | object |
unknown``), and a writability tag (``fresh`` — this code allocated it,
``view`` — it aliases someone else's buffer, ``readonly`` — it flows from
a producer that froze it, ``unknown``).

Seeding mirrors ``arrays.py`` but keeps more structure:

* ``np.zeros(n)`` → shape ``(n,)`` with ``n`` carried symbolically when
  the size argument is a plain dotted name (``len(x)`` becomes the symbol
  ``"len(x)"``), dtype from the ``dtype=`` keyword, writability *fresh*;
* annotated ``np.ndarray`` parameters and dataclass fields → unknown
  shape, writability *unknown* — or *readonly* when the owning class
  freezes its arrays (its body contains ``<col>.flags.writeable = False``
  or ``<col>.setflags(write=False)``), the way ``GridEvaluation`` and
  ``FleetTopology`` publish their planes;
* slices / ``reshape`` / ``ravel`` of a known array → *view*;
  ``.copy()`` / ``astype`` → *fresh*.

The pass also computes the *hot set* used by RPR301: functions defined in
modules carrying a ``# reprolint: hot-path`` marker comment, functions
defined in ``bench_*`` modules present in the lint batch, and everything
reachable from either through the project call graph. Per-function
environments are cached; access everything through
``ProjectIndex.shapes()``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .arrays import (
    NUMPY_ARRAY_CONSTRUCTORS,
    NUMPY_AXIS_REDUCTIONS,
    NUMPY_ELEMENTWISE_UFUNCS,
    numpy_call_tail,
)
from .symbols import (
    FunctionInfo,
    ProjectIndex,
    annotation_type_names,
    dotted_name,
)

__all__ = [
    "DIM_UNKNOWN",
    "DTYPE_UNKNOWN",
    "WRITE_FRESH",
    "WRITE_VIEW",
    "WRITE_READONLY",
    "WRITE_UNKNOWN",
    "ShapeInfo",
    "ShapeIndex",
    "broadcast_dims",
    "has_explicit_expansion",
    "join",
    "join_dims",
    "literal_is_ragged",
    "promote_dtype",
]

#: Placeholder for a dimension whose extent is unknown.
DIM_UNKNOWN = "?"
DTYPE_UNKNOWN = "unknown"
WRITE_FRESH = "fresh"
WRITE_VIEW = "view"
WRITE_READONLY = "readonly"
WRITE_UNKNOWN = "unknown"

#: One symbolic dimension: a concrete extent, a named symbol, or ``"?"``.
Dim = Union[int, str]

#: Loose pre-filter over whole-file text; the authoritative check matches
#: comment *tokens* whose text starts with the directive.
_HOT_MARKER = re.compile(r"#\s*reprolint:\s*hot-path\b")
_HOT_MARKER_COMMENT = re.compile(r"^#\s*reprolint:\s*hot-path\b")

#: ndarray methods whose result is a *view* of the receiver.
_VIEW_METHODS = frozenset({"reshape", "ravel", "squeeze", "transpose", "view"})
#: ndarray methods whose result is a *fresh* allocation.
_FRESH_METHODS = frozenset(
    {"astype", "copy", "flatten", "round", "clip", "cumsum", "cumprod",
     "take", "repeat", "compress", "diagonal"}
)
_NDARRAY_TAILS = frozenset({"ndarray", "NDArray", "ArrayLike"})

_DTYPE_ALIASES = {
    "float": "float64", "float64": "float64", "double": "float64",
    "float32": "float32", "single": "float32", "float_": "float64",
    "int": "int64", "int64": "int64", "int32": "int64", "intp": "int64",
    "int_": "int64", "bool": "bool", "bool_": "bool", "object": "object",
    "object_": "object",
}

_FLOAT_DTYPES = frozenset({"float64", "float32"})


def _annotation_is_array(annotation: Optional[ast.expr]) -> bool:
    return any(
        name.split(".")[-1] in _NDARRAY_TAILS
        for name in annotation_type_names(annotation)
    )


@dataclass(frozen=True)
class ShapeInfo:
    """Abstract value for one array-valued expression or name.

    ``dims`` is ``None`` when even the rank is unknown; otherwise a tuple
    of concrete ints, symbolic dimension names, or :data:`DIM_UNKNOWN`.
    """

    dims: Optional[Tuple[Dim, ...]] = None
    dtype: str = DTYPE_UNKNOWN
    writability: str = WRITE_UNKNOWN

    @property
    def rank(self) -> Optional[int]:
        """Number of dimensions, or ``None`` when the rank is unknown."""
        return None if self.dims is None else len(self.dims)

    @property
    def is_readonly(self) -> bool:
        """Whether this value flows from a frozen (non-writable) buffer."""
        return self.writability == WRITE_READONLY

    @property
    def is_fresh(self) -> bool:
        """Whether this code owns the buffer (safe for in-place updates)."""
        return self.writability == WRITE_FRESH


def join_dims(
    a: Optional[Tuple[Dim, ...]], b: Optional[Tuple[Dim, ...]]
) -> Optional[Tuple[Dim, ...]]:
    """Lattice join of two symbolic shapes (control-flow merge)."""
    if a is None or b is None or len(a) != len(b):
        return None
    return tuple(
        dim_a if dim_a == dim_b else DIM_UNKNOWN for dim_a, dim_b in zip(a, b)
    )


def promote_dtype(a: str, b: str) -> str:
    """numpy-style result dtype of combining ``a`` and ``b``."""
    if a == b:
        return a
    if DTYPE_UNKNOWN in (a, b):
        return DTYPE_UNKNOWN
    if "object" in (a, b):
        return "object"
    if {a, b} == {"float32", "float64"}:
        return "float64"
    if a in _FLOAT_DTYPES and b in ("int64", "bool"):
        return a
    if b in _FLOAT_DTYPES and a in ("int64", "bool"):
        return b
    if {a, b} == {"int64", "bool"}:
        return "int64"
    return DTYPE_UNKNOWN


def _dims_conflict(dim_a: Dim, dim_b: Dim) -> bool:
    """Whether two aligned dimensions can never broadcast together.

    Only *definite* conflicts count: two unequal concrete extents (neither
    1), or two distinct symbolic names. A symbol against a concrete extent
    is treated as compatible — the symbol might denote that extent.
    """
    if dim_a == dim_b or DIM_UNKNOWN in (dim_a, dim_b):
        return False
    if 1 in (dim_a, dim_b):
        return False
    if isinstance(dim_a, int) and isinstance(dim_b, int):
        return True
    if isinstance(dim_a, str) and isinstance(dim_b, str):
        return True
    return False


def broadcast_dims(
    a: Optional[Tuple[Dim, ...]], b: Optional[Tuple[Dim, ...]]
) -> Tuple[Optional[Tuple[Dim, ...]], Optional[Tuple[Dim, Dim]]]:
    """Broadcast two symbolic shapes (numpy right-aligned rules).

    Returns ``(result_dims, conflict)`` where ``conflict`` is the first
    definitely-incompatible aligned pair, or ``None`` when the shapes are
    compatible (or too unknown to judge).
    """
    if a is None or b is None:
        return None, None
    rank = max(len(a), len(b))
    padded_a = (1,) * (rank - len(a)) + a
    padded_b = (1,) * (rank - len(b)) + b
    result: List[Dim] = []
    for dim_a, dim_b in zip(padded_a, padded_b):
        if _dims_conflict(dim_a, dim_b):
            return None, (dim_a, dim_b)
        if dim_a == dim_b:
            result.append(dim_a)
        elif dim_a == 1:
            result.append(dim_b)
        elif dim_b == 1:
            result.append(dim_a)
        else:
            result.append(DIM_UNKNOWN)
    return tuple(result), None


def _join_writability(a: str, b: str) -> str:
    if a == b:
        return a
    if WRITE_READONLY in (a, b):
        return WRITE_READONLY  # pessimistic: a merge may alias the frozen one
    return WRITE_UNKNOWN


def join(a: ShapeInfo, b: ShapeInfo) -> ShapeInfo:
    """Lattice join of two abstract values (control-flow merge)."""
    dtype = a.dtype if a.dtype == b.dtype else DTYPE_UNKNOWN
    return ShapeInfo(
        dims=join_dims(a.dims, b.dims),
        dtype=dtype,
        writability=_join_writability(a.writability, b.writability),
    )


def _symbolic_dim(expr: ast.expr) -> Dim:
    """One size argument as a symbolic dimension."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return expr.value
    dotted = dotted_name(expr)
    if dotted is not None:
        return dotted
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "len"
        and len(expr.args) == 1
    ):
        inner = dotted_name(expr.args[0])
        if inner is not None:
            return f"len({inner})"
    return DIM_UNKNOWN


def _shape_from_size_arg(expr: ast.expr) -> Optional[Tuple[Dim, ...]]:
    """Shape tuple from the first argument of ``np.zeros``-style calls."""
    if isinstance(expr, (ast.Tuple, ast.List)):
        return tuple(_symbolic_dim(element) for element in expr.elts)
    return (_symbolic_dim(expr),)


def _dtype_from_expr(expr: Optional[ast.expr]) -> str:
    """Dtype lattice element named by a ``dtype=`` argument."""
    if expr is None:
        return DTYPE_UNKNOWN
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _DTYPE_ALIASES.get(expr.value, DTYPE_UNKNOWN)
    dotted = dotted_name(expr)
    if dotted is not None:
        return _DTYPE_ALIASES.get(dotted.split(".")[-1], DTYPE_UNKNOWN)
    return DTYPE_UNKNOWN


def _dtype_keyword(call: ast.Call) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == "dtype":
            return keyword.value
    return None


def _literal_dims(expr: ast.expr) -> Optional[Tuple[Dim, ...]]:
    """Shape of a (possibly nested) list/tuple literal, if regular."""
    if not isinstance(expr, (ast.List, ast.Tuple)):
        return None
    if not expr.elts:
        return (0,)
    inner_shapes = [_literal_dims(element) for element in expr.elts]
    if all(shape is None for shape in inner_shapes):
        return (len(expr.elts),)
    if any(shape is None for shape in inner_shapes):
        return None  # ragged: mixes scalars and sequences
    first = inner_shapes[0]
    if any(shape != first for shape in inner_shapes[1:]):
        return None  # ragged: rows of different lengths
    return (len(expr.elts),) + first  # type: ignore[operator]


def literal_is_ragged(expr: ast.expr) -> bool:
    """Whether a nested list literal has rows of differing lengths."""
    if not isinstance(expr, (ast.List, ast.Tuple)) or not expr.elts:
        return False
    lengths: Set[Optional[int]] = set()
    any_sequence = False
    for element in expr.elts:
        if isinstance(element, (ast.List, ast.Tuple)):
            any_sequence = True
            lengths.add(len(element.elts))
        elif isinstance(element, (ast.Constant, ast.Name, ast.UnaryOp)):
            lengths.add(None)
    return any_sequence and len(lengths) > 1


def _scalar_dtype(expr: ast.expr) -> str:
    """Dtype contribution of a scalar constant operand."""
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool):
            return "bool"
        if isinstance(expr.value, int):
            return "int64"
        if isinstance(expr.value, float):
            return "float64"
    if isinstance(expr, ast.UnaryOp):
        return _scalar_dtype(expr.operand)
    return DTYPE_UNKNOWN


def has_explicit_expansion(expr: ast.expr) -> bool:
    """Whether ``expr`` contains an explicit reshape / newaxis insertion.

    An operand spelled ``col[:, None]``, ``col[np.newaxis]``, or
    ``col.reshape(...)`` declares the author aligned the shapes on
    purpose, so RPR303 must not second-guess the broadcast.
    """
    for node in ast.walk(expr):
        if isinstance(node, ast.Subscript):
            inner = node.slice
            elements = (
                list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            )
            for element in elements:
                if (
                    isinstance(element, ast.Constant)
                    and element.value is None
                ):
                    return True
                if dotted_name(element) in ("np.newaxis", "numpy.newaxis"):
                    return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("reshape", "expand_dims")
        ):
            return True
        if (
            isinstance(node, ast.Call)
            and numpy_call_tail(node) in ("reshape", "expand_dims")
        ):
            return True
    return False


class ShapeIndex:
    """Project-wide shape/dtype/writability facts, cached per function."""

    def __init__(self, index: ProjectIndex) -> None:
        self._index = index
        #: Classes whose bodies freeze their array fields.
        self.freezing_classes: Set[str] = self._find_freezing_classes()
        #: ``qualname -> parameter names`` the function mutates in place.
        self.mutated_params: Dict[str, Set[str]] = self._find_mutated_params()
        #: Modules carrying a ``# reprolint: hot-path`` marker.
        self.hot_modules: Set[str] = self._find_hot_modules()
        #: Hot functions: defined in hot/bench modules, plus call-graph
        #: closure — the RPR301 domain.
        self.hot_functions: Set[str] = self._find_hot_functions()
        self._envs: Dict[str, Dict[str, ShapeInfo]] = {}

    @classmethod
    def build(cls, index: ProjectIndex) -> "ShapeIndex":
        """Compute all project-level shape facts for ``index``."""
        return cls(index)

    # ------------------------------------------------------------------
    # project-level facts
    # ------------------------------------------------------------------
    def _find_freezing_classes(self) -> Set[str]:
        """Classes that set ``writeable = False`` on their arrays."""
        freezing: Set[str] = set()
        for cls in self._index.classes.values():
            for node in ast.walk(cls.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and node.targets[0].attr == "writeable"
                    and isinstance(node.targets[0].value, ast.Attribute)
                    and node.targets[0].value.attr == "flags"
                ):
                    freezing.add(cls.qualname)
                    break
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "setflags"
                    and any(
                        keyword.arg == "write"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is False
                        for keyword in node.keywords
                    )
                ):
                    freezing.add(cls.qualname)
                    break
        return freezing

    def _find_mutated_params(self) -> Dict[str, Set[str]]:
        """Per function: parameter names written through in the body."""
        mutated: Dict[str, Set[str]] = {}
        for func in self._index.functions.values():
            param_names = {param.name for param in func.params}
            written: Set[str] = set()
            for node in ProjectIndex._walk_body(func.node):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                for target in targets:
                    base = target
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    name = dotted_name(base)
                    if (
                        name in param_names
                        and not isinstance(target, ast.Name)
                    ):
                        written.add(name)
                    elif (
                        isinstance(node, ast.AugAssign)
                        and isinstance(target, ast.Name)
                        and target.id in param_names
                    ):
                        written.add(target.id)
            if written:
                mutated[func.qualname] = written
        return mutated

    def _find_hot_modules(self) -> Set[str]:
        """Modules marked ``# reprolint: hot-path`` (source re-read lazily).

        Only genuine comment tokens count — the marker spelled inside a
        string literal (docs, rule examples) does not make a module hot.
        """
        hot: Set[str] = set()
        for module in self._index.modules.values():
            try:
                text = Path(module.path).read_text(encoding="utf-8")
            except OSError:
                continue
            if not _HOT_MARKER.search(text):
                continue
            try:
                tokens = tokenize.generate_tokens(io.StringIO(text).readline)
                if any(
                    token.type == tokenize.COMMENT
                    and _HOT_MARKER_COMMENT.match(token.string)
                    for token in tokens
                ):
                    hot.add(module.name)
            except (tokenize.TokenError, SyntaxError):
                continue
        return hot

    def _find_hot_functions(self) -> Set[str]:
        """Hot seeds plus forward call-graph closure."""
        seeds: Set[str] = set()
        for func in self._index.functions.values():
            module_stem = func.module.rsplit(".", 1)[-1]
            if func.module in self.hot_modules:
                seeds.add(func.qualname)
            elif module_stem.startswith("bench_"):
                seeds.add(func.qualname)
        graph = self._index.call_graph()
        closure = set(seeds)
        frontier = list(seeds)
        while frontier:
            current = frontier.pop()
            for callee in graph.edges.get(current, ()):
                if callee not in closure:
                    closure.add(callee)
                    frontier.append(callee)
        return closure

    # ------------------------------------------------------------------
    # per-function environments
    # ------------------------------------------------------------------
    def env(self, func: FunctionInfo) -> Dict[str, ShapeInfo]:
        """Abstract values of array-valued dotted names inside ``func``."""
        cached = self._envs.get(func.qualname)
        if cached is not None:
            return cached
        env = self._infer_env(func)
        self._envs[func.qualname] = env
        return env

    def _seed_env(self, func: FunctionInfo) -> Dict[str, ShapeInfo]:
        env: Dict[str, ShapeInfo] = {}
        local_types = self._index.local_class_types(func)
        for param in func.params:
            if _annotation_is_array(param.annotation):
                env[param.name] = ShapeInfo()
        for receiver, class_qualname in local_types.items():
            cls = self._index.classes.get(class_qualname)
            if cls is None:
                continue
            writability = (
                WRITE_READONLY
                if class_qualname in self.freezing_classes
                else WRITE_UNKNOWN
            )
            for field_name, annotation in cls.fields.items():
                if _annotation_is_array(annotation):
                    env[f"{receiver}.{field_name}"] = ShapeInfo(
                        writability=writability
                    )
        return env

    def _infer_env(self, func: FunctionInfo) -> Dict[str, ShapeInfo]:
        env = self._seed_env(func)
        local_types = self._index.local_class_types(func)
        for _ in range(3):
            changed = False
            for node in self._walk_in_source_order(func.node):
                changed |= self._transfer(node, env, func, local_types)
            if not changed:
                break
        return env

    @classmethod
    def _walk_in_source_order(cls, func_node: ast.AST) -> Iterator[ast.AST]:
        """Pre-order body walk preserving statement order.

        The transfer function is a forward dataflow pass, so a freeze like
        ``a.setflags(write=False)`` must be seen *after* the assignment
        that gives ``a`` its shape — otherwise the freeze seeds a rankless
        entry that the later join can never sharpen. Nested definitions
        get their own environments and are not descended into.
        """
        for child in ast.iter_child_nodes(func_node):
            yield child
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from cls._walk_in_source_order(child)

    def _transfer(
        self,
        node: ast.AST,
        env: Dict[str, ShapeInfo],
        func: FunctionInfo,
        local_types: Dict[str, str],
    ) -> bool:
        """Apply one statement's effect to ``env``; report any change."""
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            if value is None or len(targets) != 1:
                return False
            target = targets[0]
            # ``<name>.flags.writeable = False`` freezes the local buffer.
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "flags"
            ):
                owner = dotted_name(target.value.value)
                if owner is not None:
                    previous = env.get(owner, ShapeInfo())
                    frozen = ShapeInfo(
                        previous.dims, previous.dtype, WRITE_READONLY
                    )
                    if env.get(owner) != frozen:
                        env[owner] = frozen
                        return True
                return False
            if not isinstance(target, ast.Name):
                return False
            info = self.infer(value, env, func, local_types)
            if info is None:
                return False
            previous = env.get(target.id)
            merged = info if previous is None else join(previous, info)
            if env.get(target.id) != merged:
                env[target.id] = merged
                return True
            return False
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr == "setflags"
            and any(
                keyword.arg == "write"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
                for keyword in node.value.keywords
            )
        ):
            owner = dotted_name(node.value.func.value)
            if owner is not None:
                previous = env.get(owner, ShapeInfo())
                frozen = ShapeInfo(
                    previous.dims, previous.dtype, WRITE_READONLY
                )
                if env.get(owner) != frozen:
                    env[owner] = frozen
                    return True
        return False

    # ------------------------------------------------------------------
    # expression-level inference
    # ------------------------------------------------------------------
    def infer(
        self,
        expr: ast.expr,
        env: Dict[str, ShapeInfo],
        func: FunctionInfo,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[ShapeInfo]:
        """Abstract value of ``expr``, or ``None`` if not a known array."""
        if local_types is None:
            local_types = self._index.local_class_types(func)
        dotted = dotted_name(expr)
        if dotted is not None:
            return env.get(dotted)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, env, func, local_types)
        if isinstance(expr, ast.Subscript):
            return self._infer_subscript(expr, env, func, local_types)
        if isinstance(expr, ast.BinOp):
            left = self.infer(expr.left, env, func, local_types)
            right = self.infer(expr.right, env, func, local_types)
            if left is None and right is None:
                return None
            if left is None or right is None:
                array = left if left is not None else right
                scalar = expr.right if left is not None else expr.left
                dtype = promote_dtype(array.dtype, _scalar_dtype(scalar))
                if isinstance(expr.op, (ast.Div, ast.Pow)):
                    dtype = promote_dtype(dtype, "float64")
                return ShapeInfo(array.dims, dtype, WRITE_FRESH)
            dims, _conflict = broadcast_dims(left.dims, right.dims)
            dtype = promote_dtype(left.dtype, right.dtype)
            if isinstance(expr.op, (ast.Div, ast.Pow)):
                dtype = promote_dtype(dtype, "float64")
            return ShapeInfo(dims, dtype, WRITE_FRESH)
        if isinstance(expr, ast.UnaryOp):
            inner = self.infer(expr.operand, env, func, local_types)
            if inner is None:
                return None
            return ShapeInfo(inner.dims, inner.dtype, WRITE_FRESH)
        if isinstance(expr, ast.Compare):
            inner = self.infer(expr.left, env, func, local_types)
            if inner is None:
                return None
            return ShapeInfo(inner.dims, "bool", WRITE_FRESH)
        if isinstance(expr, ast.IfExp):
            then = self.infer(expr.body, env, func, local_types)
            other = self.infer(expr.orelse, env, func, local_types)
            if then is None or other is None:
                return then or other
            return join(then, other)
        return None

    def _infer_call(
        self,
        call: ast.Call,
        env: Dict[str, ShapeInfo],
        func: FunctionInfo,
        local_types: Dict[str, str],
    ) -> Optional[ShapeInfo]:
        tail = numpy_call_tail(call)
        if tail is not None:
            return self._infer_numpy_call(call, tail, env, func, local_types)
        if isinstance(call.func, ast.Attribute):
            method = call.func.attr
            receiver = self.infer(call.func.value, env, func, local_types)
            if receiver is not None:
                if method in _VIEW_METHODS:
                    dims = (
                        receiver.dims if method in ("ravel",) and
                        receiver.rank == 1 else None
                    )
                    writability = (
                        WRITE_READONLY
                        if receiver.is_readonly
                        else WRITE_VIEW
                    )
                    return ShapeInfo(dims, receiver.dtype, writability)
                if method in _FRESH_METHODS:
                    dtype = receiver.dtype
                    if method == "astype" and call.args:
                        dtype = _dtype_from_expr(call.args[0])
                    dims = (
                        receiver.dims
                        if method in ("copy", "round", "clip", "astype")
                        else None
                    )
                    return ShapeInfo(dims, dtype, WRITE_FRESH)
        resolved = self._index.resolve_call(func.module, call, local_types)
        if resolved is not None and resolved[0] == "function":
            callee = self._index.functions.get(resolved[1])
            if callee is not None and _annotation_is_array(callee.returns):
                return ShapeInfo(None, DTYPE_UNKNOWN, WRITE_UNKNOWN)
        return None

    def _infer_numpy_call(
        self,
        call: ast.Call,
        tail: str,
        env: Dict[str, ShapeInfo],
        func: FunctionInfo,
        local_types: Dict[str, str],
    ) -> Optional[ShapeInfo]:
        dtype = _dtype_from_expr(_dtype_keyword(call))
        if tail in ("zeros", "ones", "empty", "full"):
            dims = (
                _shape_from_size_arg(call.args[0]) if call.args else None
            )
            if tail == "full" and dtype == DTYPE_UNKNOWN and len(call.args) > 1:
                dtype = _scalar_dtype(call.args[1])
            elif tail in ("zeros", "ones", "empty") and dtype == DTYPE_UNKNOWN:
                dtype = "float64"  # numpy default
            return ShapeInfo(dims, dtype, WRITE_FRESH)
        if tail in ("array", "asarray", "ascontiguousarray", "asfarray"):
            dims: Optional[Tuple[Dim, ...]] = None
            if call.args:
                literal = _literal_dims(call.args[0])
                if literal is not None:
                    dims = literal
                elif literal_is_ragged(call.args[0]):
                    return ShapeInfo(None, "object", WRITE_FRESH)
                else:
                    inner = self.infer(call.args[0], env, func, local_types)
                    if inner is not None:
                        dims = inner.dims
                        if dtype == DTYPE_UNKNOWN:
                            dtype = inner.dtype
            writability = (
                WRITE_UNKNOWN if tail == "asarray" else WRITE_FRESH
            )
            return ShapeInfo(dims, dtype, writability)
        if tail in ("arange", "linspace", "logspace", "geomspace"):
            if tail == "linspace" and len(call.args) >= 3:
                dims = (_symbolic_dim(call.args[2]),)
            else:
                dims = (DIM_UNKNOWN,)
            if dtype == DTYPE_UNKNOWN:
                dtype = "float64" if tail != "arange" else DTYPE_UNKNOWN
            return ShapeInfo(dims, dtype, WRITE_FRESH)
        if tail in ("zeros_like", "ones_like", "empty_like", "full_like"):
            inner = (
                self.infer(call.args[0], env, func, local_types)
                if call.args
                else None
            )
            dims = inner.dims if inner is not None else None
            if dtype == DTYPE_UNKNOWN and inner is not None:
                dtype = inner.dtype
            return ShapeInfo(dims, dtype, WRITE_FRESH)
        if tail in NUMPY_ELEMENTWISE_UFUNCS:
            infos = [
                self.infer(arg, env, func, local_types) for arg in call.args
            ]
            known = [info for info in infos if info is not None]
            if not known:
                return None
            dims = known[0].dims
            dtype_out = known[0].dtype
            for info in known[1:]:
                dims, _conflict = broadcast_dims(dims, info.dims)
                dtype_out = promote_dtype(dtype_out, info.dtype)
            return ShapeInfo(dims, dtype_out, WRITE_FRESH)
        if tail in NUMPY_AXIS_REDUCTIONS:
            has_axis = any(
                keyword.arg == "axis" for keyword in call.keywords
            )
            if not has_axis:
                return None  # scalar result
            return ShapeInfo(None, DTYPE_UNKNOWN, WRITE_FRESH)
        if tail == "where" and len(call.args) == 3:
            then = self.infer(call.args[1], env, func, local_types)
            other = self.infer(call.args[2], env, func, local_types)
            dims = None
            dtype_out = DTYPE_UNKNOWN
            if then is not None and other is not None:
                dims, _conflict = broadcast_dims(then.dims, other.dims)
                dtype_out = promote_dtype(then.dtype, other.dtype)
            return ShapeInfo(dims, dtype_out, WRITE_FRESH)
        if tail in NUMPY_ARRAY_CONSTRUCTORS:
            return ShapeInfo(None, dtype, WRITE_FRESH)
        return None

    def _infer_subscript(
        self,
        expr: ast.Subscript,
        env: Dict[str, ShapeInfo],
        func: FunctionInfo,
        local_types: Dict[str, str],
    ) -> Optional[ShapeInfo]:
        base = self.infer(expr.value, env, func, local_types)
        if base is None:
            return None
        writability = WRITE_READONLY if base.is_readonly else WRITE_VIEW
        inner = expr.slice
        if isinstance(inner, ast.Slice):
            dims = (
                (DIM_UNKNOWN,) + base.dims[1:]
                if base.dims is not None and base.rank
                else None
            )
            return ShapeInfo(dims, base.dtype, writability)
        if isinstance(inner, ast.Constant) and isinstance(inner.value, int):
            if base.dims is not None and base.rank and base.rank > 1:
                return ShapeInfo(base.dims[1:], base.dtype, writability)
            return None  # scalar from a 1-D (or unknown-rank) array
        if isinstance(inner, ast.Tuple) and all(
            isinstance(element, ast.Slice)
            or (
                isinstance(element, ast.Constant)
                and (element.value is None or isinstance(element.value, int))
            )
            or dotted_name(element) in ("np.newaxis", "numpy.newaxis")
            for element in inner.elts
        ):
            # basic indexing (slices / ints / newaxis) stays a view of the
            # base buffer, with an explicitly rearranged shape.
            return ShapeInfo(None, base.dtype, writability)
        # fancy / boolean-mask indexing copies into a fresh buffer.
        return ShapeInfo(None, base.dtype, WRITE_FRESH)
