"""Side-effect (purity) inference for RPR104's hoisting suggestions.

A function is *pure* when calling it twice with the same arguments is
observably the same as calling it once: no writes to non-local state, no
I/O, no randomness. The analysis is a greatest fixpoint: every project
function starts optimistically pure, local impurity evidence (global
statements, attribute/subscript stores, mutator or unknown external calls,
``yield``/``await``) removes it, and impurity then propagates backwards
along the call graph until stable.

Raising is allowed — a validator that always raises on the same bad input
is still hoistable. ``self`` attribute stores are allowed only inside
``__init__``/``__post_init__`` (object construction), so a dataclass
constructor that merely validates stays pure and RPR104 can suggest
hoisting loop-invariant constructions.
"""

from __future__ import annotations

import ast
from typing import Set

from .symbols import FunctionInfo, ProjectIndex, dotted_name

__all__ = [
    "PURE_BUILTINS",
    "pure_functions",
    "class_constructor_pure",
]

#: Builtins that neither mutate their arguments nor touch the world.
PURE_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "bytes", "callable", "chr", "dict",
        "divmod", "enumerate", "filter", "float", "format", "frozenset",
        "getattr", "hasattr", "hash", "hex", "int", "isinstance",
        "issubclass", "iter", "len", "list", "map", "max", "min", "oct",
        "ord", "pow", "range", "repr", "reversed", "round", "set", "slice",
        "sorted", "str", "sum", "tuple", "type", "zip",
    }
)

#: External dotted-name prefixes assumed pure (math and value-level numpy).
_PURE_PREFIXES = (
    "math.",
    "numpy.",
    "np.",
    "dataclasses.",
    "itertools.",
    "enum.",
    "typing.",
)

#: Exceptions inside the pure prefixes: these do I/O or carry hidden state.
_IMPURE_FRAGMENTS = ("random", "save", "load", "fromfile", "tofile", "seterr")

#: Method names that mutate their receiver — calls to them are impure
#: unless the receiver was freshly created in the same function.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "pop", "popitem",
        "remove", "discard", "clear", "sort", "reverse", "setdefault",
        "write", "writelines", "writerow", "put", "send", "close", "open",
        "seek", "flush", "shuffle", "read_text", "write_text", "read_bytes",
        "write_bytes", "mkdir", "unlink", "rmdir", "touch", "rename",
    }
)

#: Top-level names whose attribute calls imply I/O or ambient state.
_IMPURE_HEADS = frozenset(
    {
        "time", "os", "sys", "io", "socket", "subprocess", "shutil",
        "logging", "warnings", "pickle", "json", "random", "print", "open",
        "input",
    }
)

_FRESH_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _fresh_locals(func_node: ast.AST) -> Set[str]:
    """Names bound in this function to freshly created containers."""
    fresh: Set[str] = set()
    for node in ProjectIndex._walk_body(func_node):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            continue
        value = node.value
        is_fresh = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                    ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _FRESH_CONSTRUCTORS
        )
        if is_fresh:
            fresh.add(node.targets[0].id)
    return fresh


def _external_call_pure(absolute: str) -> bool:
    if absolute.split(".")[0] in PURE_BUILTINS and "." not in absolute:
        return True
    if absolute.startswith(_PURE_PREFIXES):
        return not any(frag in absolute for frag in _IMPURE_FRAGMENTS)
    return False


def _locally_impure(index: ProjectIndex, func: FunctionInfo) -> bool:
    is_constructor = func.name in ("__init__", "__post_init__")
    receiver = ""
    if func.is_method and not func.is_static and func.params:
        receiver = func.params[0].name
    fresh = _fresh_locals(func.node)
    for node in ProjectIndex._walk_body(func.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            return True
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            return True
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            if isinstance(target, ast.Attribute):
                base = dotted_name(target.value)
                if not (is_constructor and base == receiver):
                    return True
            elif isinstance(target, ast.Subscript):
                base = dotted_name(target.value)
                if base is None or base.split(".")[0] not in fresh:
                    return True
    return False


def _call_sites_pure(
    index: ProjectIndex,
    func: FunctionInfo,
    pure: Set[str],
) -> bool:
    graph = index.call_graph()
    for callee in graph.edges.get(func.qualname, ()):
        if callee not in pure:
            return False
    for site in graph.sites.get(func.qualname, ()):
        if site.kind == "class" and not class_constructor_pure(
            index, site.callee, pure
        ):
            return False
    fresh = _fresh_locals(func.node)
    for absolute in graph.external.get(func.qualname, ()):
        if _external_call_pure(absolute):
            continue
        parts = absolute.split(".")
        if parts[0] in _IMPURE_HEADS:
            return False
        if any("rng" in part or "random" in part for part in parts):
            return False
        if len(parts) >= 2:
            # An unresolved method call: impure only for known mutator
            # names on receivers that are not freshly created here.
            if parts[-1] in _MUTATOR_METHODS and parts[0] not in fresh:
                return False
            continue
        return False
    return True


def class_constructor_pure(
    index: ProjectIndex, class_qualname: str, pure: Set[str]
) -> bool:
    """Whether constructing ``class_qualname`` is a pure operation."""
    cls = index.classes.get(class_qualname)
    if cls is None:
        return False
    for ctor_name in ("__init__", "__post_init__"):
        ctor = cls.methods.get(ctor_name)
        if ctor is not None and ctor.qualname not in pure:
            return False
    if "__init__" not in cls.methods and not cls.is_dataclass:
        # A plain class without __init__: object() construction, pure.
        return True
    return True


def pure_functions(index: ProjectIndex) -> Set[str]:
    """Qualnames of project functions inferred pure (greatest fixpoint)."""
    pure: Set[str] = {
        qualname
        for qualname, func in index.functions.items()
        if not _locally_impure(index, func)
    }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(pure):
            func = index.functions[qualname]
            if not _call_sites_pure(index, func, pure):
                pure.discard(qualname)
                changed = True
    return pure
