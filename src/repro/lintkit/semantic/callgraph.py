"""Project-internal call graph over the phase-1 symbol table.

Edges connect function qualnames to the project functions/constructors they
may call. Method calls resolve through :meth:`ProjectIndex.local_class_types`
(``self``, annotated parameters and fields, constructor-assigned locals).
Calls that leave the project (numpy, stdlib) are recorded separately by
their absolute dotted name — the purity analysis whitelists those.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .symbols import FunctionInfo, ProjectIndex, dotted_name

__all__ = [
    "CallSite",
    "CallGraph",
]


@dataclass(frozen=True)
class CallSite:
    """One resolved call site inside a project function."""

    caller: str
    node: ast.Call
    kind: str  # "function" | "class"
    callee: str  # function qualname, or class qualname for constructors


@dataclass
class CallGraph:
    """Caller→callee edges plus per-call-site resolution results."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    sites: Dict[str, List[CallSite]] = field(default_factory=dict)
    external: Dict[str, Set[str]] = field(default_factory=dict)
    _by_node: Dict[int, CallSite] = field(default_factory=dict)

    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        """Resolve every call site of every indexed function."""
        graph = cls()
        for func in index.functions.values():
            graph._scan_function(index, func)
        return graph

    def _scan_function(self, index: ProjectIndex, func: FunctionInfo) -> None:
        module = index.modules.get(func.module)
        if module is None:
            return
        types = index.local_class_types(func)
        edges = self.edges.setdefault(func.qualname, set())
        sites = self.sites.setdefault(func.qualname, [])
        external = self.external.setdefault(func.qualname, set())
        for node in ProjectIndex._walk_body(func.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = index.resolve_call(module.name, node, types)
            if resolved is not None:
                kind, qualname = resolved
                site = CallSite(
                    caller=func.qualname, node=node, kind=kind, callee=qualname
                )
                sites.append(site)
                self._by_node[id(node)] = site
                if kind == "function":
                    edges.add(qualname)
                else:
                    for ctor_name in ("__init__", "__post_init__"):
                        ctor = index.functions.get(f"{qualname}.{ctor_name}")
                        if ctor is not None:
                            edges.add(ctor.qualname)
            else:
                dotted = dotted_name(node.func)
                if dotted is not None:
                    external.add(self._absolute(module.imports, dotted))

    @staticmethod
    def _absolute(imports: Dict[str, str], dotted: str) -> str:
        """Translate a dotted reference through the module's import table."""
        head, _, rest = dotted.partition(".")
        if head in imports:
            target = imports[head]
            return f"{target}.{rest}" if rest else target
        return dotted

    def site_for(self, node: ast.Call) -> Optional[CallSite]:
        """The resolution recorded for this exact ``ast.Call`` node, if any."""
        return self._by_node.get(id(node))

    def callers_of(self, targets: Set[str]) -> Set[str]:
        """All functions from which some target is reachable (incl. targets)."""
        reverse: Dict[str, Set[str]] = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        reached: Set[str] = set(targets)
        frontier: List[str] = list(targets)
        while frontier:
            current = frontier.pop()
            for caller in reverse.get(current, ()):
                if caller not in reached:
                    reached.add(caller)
                    frontier.append(caller)
        return reached

    def path_to(
        self, start: str, targets: Set[str]
    ) -> Optional[List[str]]:
        """A shortest call path from ``start`` into ``targets`` (BFS)."""
        if start in targets:
            return [start]
        parents: Dict[str, str] = {start: start}
        frontier: List[str] = [start]
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                for callee in sorted(self.edges.get(current, ())):
                    if callee in parents:
                        continue
                    parents[callee] = current
                    if callee in targets:
                        path = [callee]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    next_frontier.append(callee)
            frontier = next_frontier
        return None
