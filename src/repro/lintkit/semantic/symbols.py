"""Phase-1 symbol table: modules, signatures, imports, name resolution.

The :class:`ProjectIndex` is built once per lint batch from the already
parsed ASTs. It knows every module's dotted name, every function and class
(with parameter annotations and dataclass fields), and every import binding
— including relative imports, function-level imports, and re-exports
through ``__init__`` modules — so later phases can resolve a dotted
reference at any call site to the project definition it denotes.

Files inside the ``repro`` package get their real dotted names
(``sim/rng.py`` → ``repro.sim.rng``); files outside (test fixtures, ad-hoc
scripts) are indexed flat under their stem so sibling fixtures can still
import each other.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ParamInfo",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "dotted_name",
    "annotation_type_names",
    "module_name_for",
]

#: Maximum re-export hops followed while canonicalising a reference.
_MAX_RESOLVE_HOPS = 16

#: ``typing`` wrappers that are transparent for type-name extraction.
_TRANSPARENT_GENERICS = frozenset({"Optional", "Union", "Annotated", "Final"})

_DATACLASS_DECORATORS = frozenset({"dataclass", "dataclasses.dataclass"})


def dotted_name(node: ast.expr) -> Optional[str]:
    """Flatten a ``Name``/``Attribute`` chain to ``"a.b.c"``, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def annotation_type_names(annotation: Optional[ast.expr]) -> List[str]:
    """Outermost type names of an annotation, seen through ``Optional``/``Union``.

    ``Optional[SimulationOptions]`` yields ``["SimulationOptions"]``;
    ``Tuple[Spec, int]`` yields ``[]`` — container generics *hide* their
    element types on purpose, so carrier detection (RPR102) only honours
    types passed as direct parameters.
    """
    if annotation is None:
        return []
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return []
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        dotted = dotted_name(annotation)
        return [dotted] if dotted else []
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value)
        if base and base.split(".")[-1] in _TRANSPARENT_GENERICS:
            inner = annotation.slice
            elements = (
                list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            )
            names: List[str] = []
            for element in elements:
                names.extend(annotation_type_names(element))
            return names
        return []
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        return annotation_type_names(annotation.left) + annotation_type_names(
            annotation.right
        )
    return []


def module_name_for(package_relpath: str, display_path: str) -> str:
    """Dotted module name for a linted file.

    Inside the package: ``"sim/rng.py"`` → ``"repro.sim.rng"`` and
    ``"sim/__init__.py"`` → ``"repro.sim"``. Outside: the bare file stem,
    so multi-file fixtures resolve each other by sibling name.
    """
    if package_relpath:
        parts = package_relpath[: -len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(["repro"] + parts)
    stem = display_path.rsplit("/", 1)[-1]
    if stem.endswith(".py"):
        stem = stem[: -len(".py")]
    return stem


@dataclass(frozen=True)
class ParamInfo:
    """One declared parameter of a project function."""

    name: str
    annotation: Optional[ast.expr]
    has_default: bool

    @property
    def type_names(self) -> List[str]:
        """Outermost annotation type names (see :func:`annotation_type_names`)."""
        return annotation_type_names(self.annotation)


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: List[ParamInfo]
    class_qualname: Optional[str] = None
    decorators: List[str] = field(default_factory=list)
    returns: Optional[ast.expr] = None

    @property
    def is_method(self) -> bool:
        """Whether this function is defined inside a class body."""
        return self.class_qualname is not None

    @property
    def is_static(self) -> bool:
        """Whether the method is decorated ``@staticmethod``."""
        return "staticmethod" in self.decorators

    def callable_params(self) -> List[ParamInfo]:
        """Parameters as seen by a caller (``self``/``cls`` stripped)."""
        params = self.params
        if self.is_method and not self.is_static and params:
            if params[0].name in ("self", "cls"):
                params = params[1:]
        return list(params)


@dataclass
class ClassInfo:
    """One class definition: methods, annotated fields, dataclass-ness."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    fields: Dict[str, Optional[ast.expr]] = field(default_factory=dict)
    is_dataclass: bool = False
    is_frozen: bool = False

    def constructor_params(self) -> List[ParamInfo]:
        """Caller-visible constructor parameters.

        An explicit ``__init__`` wins; otherwise a dataclass synthesises one
        parameter per annotated field, in declaration order.
        """
        init = self.methods.get("__init__")
        if init is not None:
            return init.callable_params()
        if self.is_dataclass:
            return [
                ParamInfo(name=name, annotation=annotation, has_default=True)
                for name, annotation in self.fields.items()
            ]
        return []


@dataclass
class ModuleInfo:
    """Everything the index knows about one source module."""

    name: str
    path: str
    package_relpath: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def is_package(self) -> bool:
        """Whether this module is an ``__init__`` (its name *is* a package)."""
        return self.package_relpath.endswith("__init__.py") or (
            self.package_relpath == "" and self.path.endswith("__init__.py")
        )

    @property
    def package(self) -> str:
        """The package dotted name used as base for level-1 relative imports."""
        if self.is_package:
            return self.name
        head, _, _ = self.name.rpartition(".")
        return head


class ProjectIndex:
    """Cross-module symbol table plus lazily cached derived analyses."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, entries: Sequence[Tuple[str, str, ast.Module]]
    ) -> "ProjectIndex":
        """Index a batch of parsed files: ``(display_path, relpath, tree)``."""
        index = cls()
        for display_path, package_relpath, tree in entries:
            name = module_name_for(package_relpath, display_path)
            module = ModuleInfo(
                name=name,
                path=display_path,
                package_relpath=package_relpath,
                tree=tree,
            )
            index.modules[name] = module
            index._collect_imports(module)
            index._collect_definitions(module)
        return index

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports.setdefault(bound, target)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    module.imports.setdefault(bound, target)

    @staticmethod
    def _import_base(
        module: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        parts = module.package.split(".") if module.package else []
        ascend = node.level - 1
        if ascend > len(parts):
            return None
        if ascend:
            parts = parts[:-ascend]
        if node.module:
            parts.extend(node.module.split("."))
        return ".".join(parts)

    def _collect_definitions(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(module, node, class_qualname=None)
                module.functions[node.name] = info
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                info_cls = self._class_info(module, node)
                module.classes[node.name] = info_cls
                self.classes[info_cls.qualname] = info_cls

    def _class_info(self, module: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        qualname = f"{module.name}.{node.name}"
        decorators = [
            dotted_name(d.func if isinstance(d, ast.Call) else d) or ""
            for d in node.decorator_list
        ]
        frozen = any(
            isinstance(d, ast.Call)
            and (dotted_name(d.func) or "") in _DATACLASS_DECORATORS
            and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in d.keywords
            )
            for d in node.decorator_list
        )
        info = ClassInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            node=node,
            is_dataclass=bool(
                set(decorators) & _DATACLASS_DECORATORS
            ),
            is_frozen=frozen,
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._function_info(
                    module, item, class_qualname=qualname
                )
                info.methods[item.name] = method
                self.functions[method.qualname] = method
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                if item.target.id != "__all__":
                    info.fields[item.target.id] = item.annotation
        return info

    @staticmethod
    def _function_info(
        module: ModuleInfo,
        node: ast.AST,
        class_qualname: Optional[str],
    ) -> FunctionInfo:
        arguments = node.args
        positional = list(arguments.posonlyargs) + list(arguments.args)
        defaults = list(arguments.defaults)
        n_without_default = len(positional) - len(defaults)
        params = [
            ParamInfo(
                name=arg.arg,
                annotation=arg.annotation,
                has_default=index >= n_without_default,
            )
            for index, arg in enumerate(positional)
        ]
        for arg, default in zip(arguments.kwonlyargs, arguments.kw_defaults):
            params.append(
                ParamInfo(
                    name=arg.arg,
                    annotation=arg.annotation,
                    has_default=default is not None,
                )
            )
        owner = class_qualname if class_qualname else module.name
        decorators = [
            dotted_name(d.func if isinstance(d, ast.Call) else d) or ""
            for d in node.decorator_list
        ]
        return FunctionInfo(
            qualname=f"{owner}.{node.name}",
            module=module.name,
            name=node.name,
            node=node,
            params=params,
            class_qualname=class_qualname,
            decorators=decorators,
            returns=node.returns,
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_name(
        self, module_name: str, dotted: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve ``dotted`` as written in ``module_name``.

        Returns ``(kind, qualname)`` with kind ``"function"``, ``"class"``
        or ``"module"``, chasing import aliases and ``__init__`` re-exports;
        ``None`` when the reference leaves the project (numpy, stdlib, …).
        """
        module = self.modules.get(module_name)
        if module is None:
            return None
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        if head in module.imports:
            target = ".".join([module.imports[head]] + rest)
        elif head in module.functions or head in module.classes:
            target = f"{module_name}.{dotted}"
        else:
            target = dotted
        return self._canonicalize(target)

    def _canonicalize(self, target: str) -> Optional[Tuple[str, str]]:
        for _ in range(_MAX_RESOLVE_HOPS):
            if target in self.functions:
                return ("function", target)
            if target in self.classes:
                return ("class", target)
            if target in self.modules:
                return ("module", target)
            prefix = self._longest_module_prefix(target)
            if prefix is None:
                return None
            module = self.modules[prefix]
            remainder = target[len(prefix) + 1 :].split(".")
            head = remainder[0]
            if head in module.functions or head in module.classes:
                candidate = f"{prefix}.{'.'.join(remainder)}"
                if candidate in self.functions:
                    return ("function", candidate)
                if candidate in self.classes:
                    return ("class", candidate)
                return None
            if head in module.imports:
                target = ".".join([module.imports[head]] + remainder[1:])
                continue
            return None
        return None

    def _longest_module_prefix(self, target: str) -> Optional[str]:
        parts = target.split(".")
        for end in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:end])
            if prefix in self.modules:
                return prefix
        return None

    def resolve_call(
        self,
        module_name: str,
        call: ast.Call,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[Tuple[str, str]]:
        """Resolve a call site to ``("function"|"class", qualname)``.

        ``local_types`` maps receiver prefixes (``"self"``, a local bound to
        a project-class instance, or ``"self.<field>"``) to class qualnames
        so that method calls resolve too.
        """
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        if local_types:
            for prefix_len in range(dotted.count(".") + 1, 0, -1):
                parts = dotted.split(".")
                if prefix_len >= len(parts):
                    continue
                prefix = ".".join(parts[:prefix_len])
                if prefix in local_types:
                    cls = self.classes.get(local_types[prefix])
                    rest = parts[prefix_len:]
                    if cls is None or len(rest) != 1:
                        continue
                    method = cls.methods.get(rest[0])
                    if method is not None:
                        return ("function", method.qualname)
        resolved = self.resolve_name(module_name, dotted)
        if resolved is None or resolved[0] == "module":
            return None
        return resolved

    def constructor_params(self, class_qualname: str) -> List[ParamInfo]:
        """Caller-visible parameters of ``class_qualname``'s constructor."""
        cls = self.classes.get(class_qualname)
        return cls.constructor_params() if cls is not None else []

    def local_class_types(self, func: FunctionInfo) -> Dict[str, str]:
        """Map receiver prefixes inside ``func`` to project class qualnames.

        Covers ``self`` (and ``self.<field>`` for annotated fields of the
        enclosing class), parameters whose annotation names a project class,
        and locals assigned directly from a project-class constructor.
        """
        types: Dict[str, str] = {}
        module = self.modules.get(func.module)
        if module is None:
            return types
        if func.is_method and not func.is_static and func.class_qualname:
            receiver = func.params[0].name if func.params else "self"
            types[receiver] = func.class_qualname
            cls = self.classes.get(func.class_qualname)
            if cls is not None:
                for field_name, annotation in cls.fields.items():
                    resolved = self._resolve_first_class(
                        module.name, annotation_type_names(annotation)
                    )
                    if resolved:
                        types[f"{receiver}.{field_name}"] = resolved
        for param in func.params:
            resolved = self._resolve_first_class(
                module.name, param.type_names
            )
            if resolved:
                types.setdefault(param.name, resolved)
        for node in self._walk_body(func.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                resolved_call = self.resolve_call(module.name, node.value)
                if resolved_call and resolved_call[0] == "class":
                    types.setdefault(node.targets[0].id, resolved_call[1])
        return types

    def _resolve_first_class(
        self, module_name: str, type_names: List[str]
    ) -> Optional[str]:
        for type_name in type_names:
            resolved = self.resolve_name(module_name, type_name)
            if resolved and resolved[0] == "class":
                return resolved[1]
        return None

    @staticmethod
    def _walk_body(func_node: ast.AST) -> Iterator[ast.AST]:
        """Walk a function body without crossing into nested definitions."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # ------------------------------------------------------------------
    # cached derived analyses (computed on first use)
    # ------------------------------------------------------------------
    def call_graph(self):  # noqa: ANN201 - forward ref avoids import cycle
        """The project call graph (:class:`~.callgraph.CallGraph`), cached."""
        if "call_graph" not in self._cache:
            from .callgraph import CallGraph

            self._cache["call_graph"] = CallGraph.build(self)
        return self._cache["call_graph"]

    def purity(self):  # noqa: ANN201
        """Set of pure function qualnames (see :mod:`~.purity`), cached."""
        if "purity" not in self._cache:
            from .purity import pure_functions

            self._cache["purity"] = pure_functions(self)
        return self._cache["purity"]

    def units(self):  # noqa: ANN201
        """The unit-inference engine (:class:`~.units.UnitInference`), cached."""
        if "units" not in self._cache:
            from .units import UnitInference

            self._cache["units"] = UnitInference(self)
        return self._cache["units"]

    def rng_taint(self):  # noqa: ANN201
        """The determinism taint analysis (:class:`~.taint.RngTaint`), cached."""
        if "rng_taint" not in self._cache:
            from .taint import RngTaint

            self._cache["rng_taint"] = RngTaint(self)
        return self._cache["rng_taint"]

    def concurrency(self):  # noqa: ANN201
        """Per-class lock summaries (:class:`~.concurrency.ConcurrencyIndex`), cached."""
        if "concurrency" not in self._cache:
            from .concurrency import ConcurrencyIndex

            self._cache["concurrency"] = ConcurrencyIndex.build(self)
        return self._cache["concurrency"]

    def shapes(self):  # noqa: ANN201
        """Symbolic shape/dtype/writability facts (:class:`~.shapes.ShapeIndex`), cached."""
        if "shapes" not in self._cache:
            from .shapes import ShapeIndex

            self._cache["shapes"] = ShapeIndex.build(self)
        return self._cache["shapes"]
