"""Determinism taint analysis (RPR102): who draws randomness, and how.

Every function in the project is classified:

* **deterministic** — no randomness, or only draws from a generator the
  function itself constructs with a seed *derived from its own arguments*
  (e.g. frozen per-position shadowing offsets keyed on distance);
* **rng-threaded stochastic** — draws from a generator received via an
  ``rng``/seed parameter, a carrier object (a parameter or ``self`` whose
  type stores a seed or generator), or calls another stochastic project
  function. These are fine *provided* the signature threads the randomness
  — callers can reproduce runs by controlling the seed;
* **violating** — stochastic with no way for the caller to control the
  seed: no rng/seed-ish parameter, no carrier-typed parameter, not a
  method of a carrier class. Also any construction of a generator with a
  fixed or absent seed (``default_rng()``, ``RngStreams(42)``).

Carrier detection is deliberately *shallow*: a seed packed inside a tuple
or dict parameter does not count, because such plumbing hides the
determinism contract from the signature — exactly what the rule exists to
surface.

Taint propagates along the project call graph to a fixpoint, so a function
three layers above ``sim/rng.py`` is still caught.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .symbols import (
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    annotation_type_names,
    dotted_name,
)

__all__ = [
    "DRAW_METHODS",
    "RNG_PARAM_RE",
    "TaintFinding",
    "RngTaint",
]

#: Generator methods whose call constitutes a random draw.
DRAW_METHODS = frozenset(
    {
        "random", "normal", "standard_normal", "uniform", "integers",
        "choice", "exponential", "poisson", "lognormal", "gamma", "beta",
        "binomial", "geometric", "shuffle", "permutation", "rayleigh",
        "triangular", "vonmises", "weibull", "chisquare", "bytes",
    }
)

#: Parameter names that thread randomness explicitly.
RNG_PARAM_RE = re.compile(
    r"(^|_)(rng|gen|generator|random_state|streams?|seeds?)$|^rng_|seed"
)

#: Annotation type names that carry a generator or seed by construction.
_CARRIER_TYPE_TAILS = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "RandomState", "Namespace"}
)

#: Constructors that produce a generator; callers must pass a seed.
_GENERATOR_CTOR_TAILS = frozenset({"default_rng", "SeedSequence"})

#: Name fragments marking a receiver as a generator-ish object.
_RNG_RECEIVER_RE = re.compile(r"rng|random|generator|stream")


@dataclass(frozen=True)
class TaintFinding:
    """One determinism violation anchored at an AST node."""

    module: str
    node: ast.AST
    message: str
    suggestion: str


def _is_rngish_param(param_name: str) -> bool:
    return bool(RNG_PARAM_RE.search(param_name.lower()))


class RngTaint:
    """Project-wide determinism classification, computed eagerly on build."""

    def __init__(self, index: ProjectIndex) -> None:
        self._index = index
        self._graph = index.call_graph()
        self._carrier_classes = self._compute_carrier_classes()
        #: functions with direct, rng-threaded draws (taint sources).
        self.draw_roots: Set[str] = set()
        #: all functions that are stochastic given their inputs' rng state.
        self.stochastic: Set[str] = set()
        self._local_findings: Dict[str, List[TaintFinding]] = {}
        self._scan_all()
        self._propagate()
        self._signature_findings = self._check_signatures()

    # -- public API ----------------------------------------------------
    def findings_for_module(self, module_name: str) -> List[TaintFinding]:
        """All RPR102 findings for functions defined in ``module_name``."""
        found: List[TaintFinding] = []
        for qualname in sorted(self._local_findings):
            func = self._index.functions.get(qualname)
            if func is not None and func.module == module_name:
                found.extend(self._local_findings[qualname])
        found.extend(
            finding
            for finding in self._signature_findings
            if finding.module == module_name
        )
        return found

    def is_carrier_class(self, qualname: str) -> bool:
        """Whether instances of the class carry their own seeded randomness."""
        return qualname in self._carrier_classes

    # -- carrier classes -----------------------------------------------
    def _compute_carrier_classes(self) -> Set[str]:
        carriers: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for qualname, cls in self._index.classes.items():
                if qualname in carriers:
                    continue
                if self._class_is_carrier(cls, carriers):
                    carriers.add(qualname)
                    changed = True
        return carriers

    def _class_is_carrier(
        self, cls: ClassInfo, carriers: Set[str]
    ) -> bool:
        for param in cls.constructor_params():
            if _is_rngish_param(param.name):
                return True
            if self._is_carrier_annotation(cls.module, param.type_names, carriers):
                return True
        for field_name, annotation in cls.fields.items():
            if _is_rngish_param(field_name):
                return True
            if self._is_carrier_annotation(
                cls.module, annotation_type_names(annotation), carriers
            ):
                return True
        init = cls.methods.get("__init__")
        if init is not None:
            # self._rng = np.random.default_rng(seed)-style construction
            for node in ProjectIndex._walk_body(init.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(
                            target, ast.Attribute
                        ) and _RNG_RECEIVER_RE.search(target.attr.lower()):
                            return True
        return False

    def _is_carrier_annotation(
        self,
        module_name: str,
        type_names: List[str],
        carriers: Optional[Set[str]] = None,
    ) -> bool:
        if carriers is None:
            carriers = self._carrier_classes
        for type_name in type_names:
            if type_name.split(".")[-1] in _CARRIER_TYPE_TAILS:
                return True
            resolved = self._index.resolve_name(module_name, type_name)
            if resolved and resolved[0] == "class" and resolved[1] in carriers:
                return True
        return False

    # -- per-function scan ---------------------------------------------
    def _scan_all(self) -> None:
        for func in self._index.functions.values():
            self._scan_function(func)

    def _scan_function(self, func: FunctionInfo) -> None:
        module = self._index.modules.get(func.module)
        if module is None or self._sanctioned(module.package_relpath):
            return
        param_names = {param.name for param in func.params}
        derived = self._param_derived_names(func, param_names)
        seeded_locals, ctor_locals, findings = self._generator_locals(
            func, module.name, derived
        )
        for node in ProjectIndex._walk_body(func.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in DRAW_METHODS
            ):
                continue
            receiver = dotted_name(node.func.value)
            if receiver is None:
                continue
            head = receiver.split(".")[0]
            if not _RNG_RECEIVER_RE.search(receiver.lower()):
                continue
            if head in ctor_locals:
                # Constructed here: deterministic when seeded from the
                # function's own arguments, otherwise already reported at
                # the construction site.
                continue
            if head in derived or head in ("self", "cls"):
                self.draw_roots.add(func.qualname)
                continue
            # Draw on something neither parameter-fed nor locally seeded:
            # a module-level or otherwise ambient generator.
            findings.append(
                TaintFinding(
                    module=func.module,
                    node=node,
                    message=(
                        f"function {func.name!r} draws from ambient "
                        f"generator {receiver!r} not received as a "
                        f"parameter or seeded from one"
                    ),
                    suggestion="accept an rng/seed parameter and draw "
                    "from it",
                )
            )
        if findings:
            self._local_findings[func.qualname] = findings

    def _sanctioned(self, package_relpath: str) -> bool:
        return package_relpath == "sim/rng.py"

    def _param_derived_names(
        self, func: FunctionInfo, param_names: Set[str]
    ) -> Set[str]:
        """Locals whose value (transitively) references a parameter."""
        derived = set(param_names)
        for _ in range(2):  # two passes handle simple chains
            for node in ProjectIndex._walk_body(func.node):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    continue
                names = {
                    child.id
                    for child in ast.walk(node.value)
                    if isinstance(child, ast.Name)
                }
                if names & derived:
                    derived.add(node.targets[0].id)
        return derived

    def _generator_locals(
        self,
        func: FunctionInfo,
        module_name: str,
        derived: Set[str],
    ) -> Tuple[Set[str], Set[str], List[TaintFinding]]:
        """Locals bound to generators seeded from the function's own args.

        Returns ``(seeded, all_ctor_bound, findings)``: generator
        constructions with a fixed literal seed or no seed at all are
        reported as violations on the spot.
        """
        seeded: Set[str] = set()
        ctor_bound: Set[str] = set()
        findings: List[TaintFinding] = []
        for node in ProjectIndex._walk_body(func.node):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                continue
            call = node.value
            ctor = self._generator_ctor_name(module_name, call)
            if ctor is None:
                continue
            ctor_bound.add(node.targets[0].id)
            seed_args = list(call.args) + [kw.value for kw in call.keywords]
            arg_names = {
                child.id
                for arg in seed_args
                for child in ast.walk(arg)
                if isinstance(child, ast.Name)
            }
            if arg_names & derived:
                seeded.add(node.targets[0].id)
            elif not seed_args:
                findings.append(
                    TaintFinding(
                        module=func.module,
                        node=call,
                        message=(
                            f"function {func.name!r} constructs {ctor!r} "
                            f"without a seed — nondeterministic entropy "
                            f"from the OS"
                        ),
                        suggestion="pass a seed derived from a parameter",
                    )
                )
            else:
                findings.append(
                    TaintFinding(
                        module=func.module,
                        node=call,
                        message=(
                            f"function {func.name!r} constructs {ctor!r} "
                            f"with a seed not derived from any parameter "
                            f"— a hidden fixed seed"
                        ),
                        suggestion="derive the seed from a parameter so "
                        "callers control reproducibility",
                    )
                )
        return seeded, ctor_bound, findings

    def _generator_ctor_name(
        self, module_name: str, call: ast.Call
    ) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        if dotted.split(".")[-1] in _GENERATOR_CTOR_TAILS:
            return dotted
        resolved = self._index.resolve_name(module_name, dotted)
        if resolved and resolved[0] == "class":
            cls = self._index.classes.get(resolved[1])
            if cls is not None and _RNG_RECEIVER_RE.search(cls.name.lower()):
                return dotted
        return None

    # -- propagation and signature check -------------------------------
    def _propagate(self) -> None:
        self.stochastic = self._graph.callers_of(set(self.draw_roots))

    def _check_signatures(self) -> List[TaintFinding]:
        findings: List[TaintFinding] = []
        for qualname in sorted(self.stochastic):
            func = self._index.functions.get(qualname)
            if func is None:
                continue
            module = self._index.modules.get(func.module)
            if module is None or self._sanctioned(module.package_relpath):
                continue
            if func.name.startswith("__") and func.name.endswith("__"):
                continue  # dunders inherit their class's contract
            if self._signature_threads_rng(func):
                continue
            path = self._graph.path_to(qualname, self.draw_roots) or [qualname]
            chain = " -> ".join(part.split(".")[-1] for part in path)
            findings.append(
                TaintFinding(
                    module=func.module,
                    node=func.node,
                    message=(
                        f"function {func.name!r} transitively draws "
                        f"randomness (via {chain}) but threads no rng/seed "
                        f"parameter"
                    ),
                    suggestion="add an explicit rng or seed parameter (or "
                    "pass a seeded carrier object) so callers control "
                    "determinism",
                )
            )
        return findings

    def _signature_threads_rng(self, func: FunctionInfo) -> bool:
        if func.is_method and func.class_qualname in self._carrier_classes:
            if not func.is_static:
                return True
        for param in func.params:
            if param.name in ("self", "cls"):
                continue
            if _is_rngish_param(param.name):
                return True
            if self._is_carrier_annotation(func.module, param.type_names):
                return True
        return False
