"""Per-class lock summaries backing the RPR2xx concurrency rules.

The :class:`ConcurrencyIndex` is the third derived analysis on the phase-1
:class:`~repro.lintkit.semantic.symbols.ProjectIndex` (after the call graph
and purity). It answers, for every class that owns ``threading`` state:

* which attributes are *locks* — ``self._lock = threading.Lock()`` — and
  which other synchronization attributes alias them (a
  ``threading.Condition(self._lock)`` acquires the same underlying lock,
  so ``with self._not_empty:`` is a scope of ``_lock``);
* which attributes the class treats as *guarded*: anything written,
  augmented, or mutated inside a lock scope by a non-constructor method.
  Attributes only ever assigned in ``__init__`` (configuration, bounds,
  sub-objects with their own locks) are deliberately *not* guarded, so
  immutable state never produces findings;
* every attribute access of every method together with the lock scope it
  happened under (:class:`AttrAccess`), which is what RPR201/RPR202
  consume;
* every call site made while holding a class lock
  (:attr:`ConcurrencyIndex.locked_calls`), so a private helper that is
  *only ever called with the lock held* can be recognized and not flagged;
* which functions acquire any ``threading`` lock at all
  (:attr:`ConcurrencyIndex.lock_acquirers`) — combined with
  :meth:`~repro.lintkit.semantic.callgraph.CallGraph.callers_of` this
  tells RPR203 whether a multiprocessing worker can reach a lock
  acquisition.

Scopes are per-method: a method that takes the lock, releases it, and
takes it again has two distinct scope ids, which is exactly the split
RPR202's check-then-act detection keys on. Like the rest of the semantic
tier the walk never descends into nested ``def``/``class``/``lambda``
bodies — deferred code runs under unknown lock context and is excluded
rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    dotted_name,
)

__all__ = [
    "INIT_METHODS",
    "WRITE_KINDS",
    "AttrAccess",
    "MethodSummary",
    "ClassConcurrency",
    "LockedCall",
    "ConcurrencyIndex",
    "absolute_name",
    "sync_kind",
]

#: Methods whose writes establish (rather than mutate) object state; their
#: attribute stores never make an attribute "guarded" and are never flagged.
INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: Access kinds that count as writes when inferring the guarded set.
WRITE_KINDS = frozenset({"write", "augwrite", "mutate"})

#: Constructor dotted names → synchronization kind. Resolution goes through
#: the module's import table, so a project-local ``Event`` class (e.g.
#: ``repro.sim.events.Event``) is never mistaken for ``threading.Event``.
_SYNC_CONSTRUCTORS: Dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "condition",
    "threading.Event": "event",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "queue.Queue": "queue",
    "queue.LifoQueue": "queue",
    "queue.PriorityQueue": "queue",
    "queue.SimpleQueue": "queue",
    "multiprocessing.Queue": "queue",
    "multiprocessing.JoinableQueue": "queue",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
}

#: Direct calls that hand back an open OS resource.
_FILE_OPENERS = frozenset({"open", "io.open", "gzip.open", "bz2.open"})

#: Method names that mutate their receiver in place. The purity analysis
#: keeps its own (overlapping) list tuned for hoisting; this one is tuned
#: for shared containers — deque/OrderedDict reordering included.
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert", "add",
        "update", "pop", "popleft", "popitem", "remove", "discard",
        "clear", "sort", "reverse", "rotate", "setdefault", "move_to_end",
        "write", "writelines", "put", "send",
    }
)


def absolute_name(module: ModuleInfo, dotted: str) -> str:
    """Translate a dotted reference through the module's import table."""
    head, _, rest = dotted.partition(".")
    if head in module.imports:
        target = module.imports[head]
        return f"{target}.{rest}" if rest else target
    return dotted


def sync_kind(module: ModuleInfo, call: ast.Call) -> Optional[str]:
    """Synchronization/resource kind constructed by ``call``, if known.

    ``"lock" | "condition" | "event" | "semaphore" | "queue" | "socket" |
    "file"`` — or ``None`` for anything that is not a recognized
    ``threading``/``queue``/``socket`` constructor or file opener.
    """
    dotted = dotted_name(call.func)
    if dotted is not None:
        absolute = absolute_name(module, dotted)
        kind = _SYNC_CONSTRUCTORS.get(absolute)
        if kind is not None:
            return kind
        if absolute in _FILE_OPENERS:
            return "file"
    if isinstance(call.func, ast.Attribute) and call.func.attr == "open":
        # ``path.open(...)``, ``Path(p).open(...)`` — receiver-agnostic.
        return "file"
    return None


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` access inside a method, with its lock context."""

    attr: str
    node: ast.AST
    #: ``"read"`` | ``"write"`` | ``"augwrite"`` | ``"mutate"``.
    kind: str
    #: Canonical lock attribute held at the access, or ``None``.
    lock: Optional[str]
    #: Identity of the innermost lock scope (``with self._lock:`` block)
    #: the access sits in — distinct per acquisition, so two scopes of the
    #: same lock in one method do not compare equal. ``None`` when unlocked.
    scope: Optional[int]


@dataclass
class MethodSummary:
    """Lock-relevant facts about one method of a lock-owning class."""

    qualname: str
    name: str
    accesses: List[AttrAccess] = field(default_factory=list)
    acquires_lock: bool = False


@dataclass(frozen=True)
class LockedCall:
    """A call made while holding one or more of the caller's class locks."""

    caller: str
    #: The caller's ``self`` parameter name (receiver identity matters:
    #: ``self.helper()`` under ``self._lock`` protects *this* instance;
    #: ``other.helper()`` does not, even for the same class).
    receiver: str
    locks: FrozenSet[str]


@dataclass
class ClassConcurrency:
    """Lock summary of one class: locks, aliases, guarded set, accesses."""

    qualname: str
    #: Canonical guard names: plain lock attrs plus standalone conditions
    #: (a ``Condition()`` with no explicit lock owns one).
    locks: Set[str] = field(default_factory=set)
    #: Acquirable attr → canonical guard it takes (identity for locks,
    #: wrapped lock for ``Condition(self._lock)``).
    aliases: Dict[str, str] = field(default_factory=dict)
    conditions: Set[str] = field(default_factory=set)
    events: Set[str] = field(default_factory=set)
    queues: Set[str] = field(default_factory=set)
    sockets: Set[str] = field(default_factory=set)
    #: Every synchronization attribute (locks, conditions, events,
    #: semaphores, queues, sockets) — excluded from the guarded set.
    sync_attrs: Set[str] = field(default_factory=set)
    #: Guarded attribute → the canonical locks observed guarding its writes.
    guarded: Dict[str, Set[str]] = field(default_factory=dict)
    methods: Dict[str, MethodSummary] = field(default_factory=dict)

    def guard_for(self, expr: ast.expr, receiver: str) -> Optional[str]:
        """Canonical lock acquired by ``with <expr>:``, if any."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == receiver
        ):
            return self.aliases.get(expr.attr)
        return None


class ConcurrencyIndex:
    """Project-wide concurrency facts (built once per lint batch)."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassConcurrency] = {}
        #: ``id(ast.Call)`` → lock context of that call site.
        self.locked_calls: Dict[int, LockedCall] = {}
        #: Functions that *directly* acquire a ``threading`` lock —
        #: ``with`` on a class lock/condition attr, a lock-typed local or
        #: module global, or an explicit ``.acquire()`` on one of those.
        self.lock_acquirers: Set[str] = set()
        #: Module name → module-global name → sync kind, for globals like
        #: ``_CACHE_LOCK = threading.Lock()``.
        self.module_sync: Dict[str, Dict[str, str]] = {}
        self._scope_counter = 0
        self._callee_sites: Optional[Dict[str, list]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, index: ProjectIndex) -> "ConcurrencyIndex":
        """Scan every indexed class and function for lock usage."""
        conc = cls()
        for module in index.modules.values():
            conc._collect_module_globals(module)
        for module in index.modules.values():
            for cls_info in module.classes.values():
                conc._scan_class(module, cls_info)
        for func in index.functions.values():
            conc._scan_for_acquisition(index, func)
        return conc

    def _collect_module_globals(self, module: ModuleInfo) -> None:
        bindings: Dict[str, str] = {}
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                kind = sync_kind(module, stmt.value)
                if kind is not None:
                    bindings[stmt.targets[0].id] = kind
        if bindings:
            self.module_sync[module.name] = bindings

    # ------------------------------------------------------------------
    # per-class summary
    # ------------------------------------------------------------------
    def _scan_class(self, module: ModuleInfo, cls_info: ClassInfo) -> None:
        attr_kinds = self._attr_constructor_kinds(module, cls_info)
        if not attr_kinds:
            return
        cc = ClassConcurrency(qualname=cls_info.qualname)
        for attr, (kind, call) in attr_kinds.items():
            cc.sync_attrs.add(attr)
            if kind == "lock":
                cc.locks.add(attr)
                cc.aliases[attr] = attr
            elif kind == "queue":
                cc.queues.add(attr)
            elif kind == "event":
                cc.events.add(attr)
            elif kind == "socket":
                cc.sockets.add(attr)
            elif kind == "file":
                cc.sync_attrs.discard(attr)  # a file is a resource, not sync
        # Second pass so conditions alias locks regardless of declaration
        # order in ``__init__``.
        for attr, (kind, call) in attr_kinds.items():
            if kind != "condition":
                continue
            cc.conditions.add(attr)
            wrapped: Optional[str] = None
            if call.args:
                first = call.args[0]
                if isinstance(first, ast.Attribute) and isinstance(
                    first.value, ast.Name
                ):
                    wrapped = (
                        first.attr if first.attr in cc.locks else None
                    )
            if wrapped is not None:
                cc.aliases[attr] = cc.aliases[wrapped]
            else:
                # A bare Condition() owns its lock: acquiring the condition
                # is the only way to take it, so the condition *is* a guard.
                cc.locks.add(attr)
                cc.aliases[attr] = attr
        if cc.aliases:
            for method in cls_info.methods.values():
                cc.methods[method.name] = self._scan_method(cc, method)
            self._infer_guarded(cc)
        if cc.aliases or cc.queues or cc.events or cc.sockets:
            self.classes[cls_info.qualname] = cc

    def _attr_constructor_kinds(
        self, module: ModuleInfo, cls_info: ClassInfo
    ) -> Dict[str, Tuple[str, ast.Call]]:
        """``self.<attr> = <ctor>()`` kinds across all methods + class body."""
        kinds: Dict[str, Tuple[str, ast.Call]] = {}

        def note(target: ast.expr, value: ast.expr, receiver: str) -> None:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == receiver
                and isinstance(value, ast.Call)
            ):
                return
            kind = sync_kind(module, value)
            if kind is not None:
                kinds.setdefault(target.attr, (kind, value))

        for method in cls_info.methods.values():
            receiver = self._receiver(method)
            if receiver is None:
                continue
            for node in ProjectIndex._walk_body(method.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    note(node.targets[0], node.value, receiver)
                elif (
                    isinstance(node, ast.AnnAssign)
                    and node.value is not None
                ):
                    note(node.target, node.value, receiver)
        for stmt in cls_info.node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                kind = sync_kind(module, stmt.value)
                if kind is not None:
                    kinds.setdefault(stmt.targets[0].id, (kind, stmt.value))
        return kinds

    @staticmethod
    def _receiver(func: FunctionInfo) -> Optional[str]:
        if func.is_static or not func.params:
            return None
        return func.params[0].name

    def _infer_guarded(self, cc: ClassConcurrency) -> None:
        for summary in cc.methods.values():
            if summary.name in INIT_METHODS:
                continue
            for access in summary.accesses:
                if access.kind in WRITE_KINDS and access.lock is not None:
                    cc.guarded.setdefault(access.attr, set()).add(access.lock)
        for attr in cc.sync_attrs:
            cc.guarded.pop(attr, None)

    # ------------------------------------------------------------------
    # per-method walk: lock scopes, attribute accesses, locked calls
    # ------------------------------------------------------------------
    def _scan_method(
        self, cc: ClassConcurrency, func: FunctionInfo
    ) -> MethodSummary:
        summary = MethodSummary(qualname=func.qualname, name=func.name)
        receiver = self._receiver(func)
        if receiver is None:
            return summary
        self._scan_block(
            cc, func, receiver, summary, func.node.body, (), None
        )
        return summary

    def _next_scope(self) -> int:
        self._scope_counter += 1
        return self._scope_counter

    def _scan_block(
        self,
        cc: ClassConcurrency,
        func: FunctionInfo,
        receiver: str,
        summary: MethodSummary,
        stmts: List[ast.stmt],
        held: Tuple[str, ...],
        scope: Optional[int],
    ) -> None:
        def recurse(
            body: List[ast.stmt],
            new_held: Tuple[str, ...] = held,
            new_scope: Optional[int] = scope,
        ) -> None:
            self._scan_block(
                cc, func, receiver, summary, body, new_held, new_scope
            )
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: List[str] = []
                plain_items: List[ast.expr] = []
                for item in stmt.items:
                    lock = cc.guard_for(item.context_expr, receiver)
                    if lock is not None:
                        acquired.append(lock)
                    else:
                        plain_items.append(item.context_expr)
                self._record_exprs(
                    cc, func, receiver, summary, plain_items, held, scope
                )
                if acquired:
                    summary.acquires_lock = True
                    recurse(
                        stmt.body,
                        held + tuple(acquired),
                        self._next_scope(),
                    )
                else:
                    recurse(stmt.body)
            elif isinstance(stmt, ast.If):
                self._record_exprs(
                    cc, func, receiver, summary, [stmt.test], held, scope
                )
                recurse(stmt.body)
                recurse(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._record_exprs(
                    cc, func, receiver, summary, [stmt.iter], held, scope
                )
                self._record_simple(
                    cc, func, receiver, summary,
                    targets=[(stmt.target, "write")],
                    exprs=[], held=held, scope=scope,
                )
                recurse(stmt.body)
                recurse(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._record_exprs(
                    cc, func, receiver, summary, [stmt.test], held, scope
                )
                recurse(stmt.body)
                recurse(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                recurse(stmt.body)
                for handler in stmt.handlers:
                    recurse(handler.body)
                recurse(stmt.orelse)
                recurse(stmt.finalbody)
            else:
                self._record_stmt(
                    cc, func, receiver, summary, stmt, held, scope
                )

    def _record_stmt(
        self,
        cc: ClassConcurrency,
        func: FunctionInfo,
        receiver: str,
        summary: MethodSummary,
        stmt: ast.stmt,
        held: Tuple[str, ...],
        scope: Optional[int],
    ) -> None:
        targets: List[Tuple[ast.expr, str]] = []
        exprs: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = [(t, "write") for t in stmt.targets]
            exprs = [stmt.value]
        elif isinstance(stmt, ast.AnnAssign):
            targets = [(stmt.target, "write")]
            if stmt.value is not None:
                exprs = [stmt.value]
        elif isinstance(stmt, ast.AugAssign):
            targets = [(stmt.target, "augwrite")]
            exprs = [stmt.value]
        elif isinstance(stmt, ast.Delete):
            targets = [(t, "write") for t in stmt.targets]
        else:
            exprs = [
                child
                for child in ast.iter_child_nodes(stmt)
                if isinstance(child, ast.expr)
            ]
        self._record_simple(
            cc, func, receiver, summary, targets, exprs, held, scope
        )

    def _record_simple(
        self,
        cc: ClassConcurrency,
        func: FunctionInfo,
        receiver: str,
        summary: MethodSummary,
        targets: List[Tuple[ast.expr, str]],
        exprs: List[ast.expr],
        held: Tuple[str, ...],
        scope: Optional[int],
    ) -> None:
        consumed: Set[int] = set()
        side_exprs: List[ast.expr] = list(exprs)

        def record(attr: str, node: ast.AST, kind: str) -> None:
            if attr in cc.aliases:
                return  # taking/naming a lock is not a data access
            lock = held[-1] if held else None
            summary.accesses.append(
                AttrAccess(
                    attr=attr, node=node, kind=kind, lock=lock, scope=scope
                )
            )

        def classify_target(target: ast.expr, kind: str) -> None:
            if isinstance(target, ast.Attribute):
                if (
                    isinstance(target.value, ast.Name)
                    and target.value.id == receiver
                ):
                    record(target.attr, target, kind)
                    consumed.add(id(target))
                elif (
                    isinstance(target.value, ast.Attribute)
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id == receiver
                ):
                    # ``self.a.b = v`` writes *through* self.a: a mutation.
                    record(target.value.attr, target, "mutate")
                    consumed.add(id(target.value))
            elif isinstance(target, ast.Subscript):
                base = target.value
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == receiver
                ):
                    record(base.attr, target, "mutate")
                    consumed.add(id(base))
                side_exprs.append(target.slice)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    classify_target(element, kind)
            elif isinstance(target, ast.Starred):
                classify_target(target.value, kind)

        for target, kind in targets:
            classify_target(target, kind)
        self._record_exprs(
            cc, func, receiver, summary, side_exprs, held, scope, consumed
        )

    def _record_exprs(
        self,
        cc: ClassConcurrency,
        func: FunctionInfo,
        receiver: str,
        summary: MethodSummary,
        exprs: List[ast.expr],
        held: Tuple[str, ...],
        scope: Optional[int],
        consumed: Optional[Set[int]] = None,
    ) -> None:
        consumed = consumed if consumed is not None else set()
        lock = held[-1] if held else None
        for expr in exprs:
            for node in self._walk_expr(expr):
                if isinstance(node, ast.Call):
                    if held:
                        self.locked_calls[id(node)] = LockedCall(
                            caller=func.qualname,
                            receiver=receiver,
                            locks=frozenset(held),
                        )
                    inner = self._mutated_attr(node, receiver)
                    if inner is not None:
                        attr_node, attr = inner
                        consumed.add(id(attr_node))
                        if attr not in cc.aliases:
                            summary.accesses.append(
                                AttrAccess(
                                    attr=attr,
                                    node=node,
                                    kind="mutate",
                                    lock=lock,
                                    scope=scope,
                                )
                            )
                elif isinstance(node, ast.Attribute):
                    if (
                        id(node) not in consumed
                        and isinstance(node.value, ast.Name)
                        and node.value.id == receiver
                        and isinstance(node.ctx, ast.Load)
                        and node.attr not in cc.aliases
                    ):
                        summary.accesses.append(
                            AttrAccess(
                                attr=node.attr,
                                node=node,
                                kind="read",
                                lock=lock,
                                scope=scope,
                            )
                        )

    @staticmethod
    def _mutated_attr(
        call: ast.Call, receiver: str
    ) -> Optional[Tuple[ast.Attribute, str]]:
        """``self.<attr>.<mutator>(...)`` → the mutated attribute node."""
        func = call.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS
        ):
            return None
        base = func.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == receiver
        ):
            return base, base.attr
        return None

    @staticmethod
    def _walk_expr(expr: ast.expr) -> Iterator[ast.AST]:
        """Breadth-first expression walk that skips ``lambda`` bodies."""
        queue: List[ast.AST] = [expr]
        while queue:
            node = queue.pop(0)
            yield node
            if isinstance(node, ast.Lambda):
                continue
            queue.extend(ast.iter_child_nodes(node))

    # ------------------------------------------------------------------
    # lock acquisition (any function, for RPR203 reachability)
    # ------------------------------------------------------------------
    def _scan_for_acquisition(
        self, index: ProjectIndex, func: FunctionInfo
    ) -> None:
        cc = (
            self.classes.get(func.class_qualname)
            if func.class_qualname
            else None
        )
        summary = cc.methods.get(func.name) if cc is not None else None
        if summary is not None and summary.acquires_lock:
            self.lock_acquirers.add(func.qualname)
            return
        module = index.modules.get(func.module)
        if module is None:
            return
        locals_sync = self.local_bindings(module, func.node)
        globals_sync = self.module_sync.get(module.name, {})

        def is_lockish(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Name):
                kind = locals_sync.get(expr.id) or globals_sync.get(expr.id)
                return kind in ("lock", "condition", "semaphore")
            return False

        for node in ProjectIndex._walk_body(func.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(is_lockish(item.context_expr) for item in node.items):
                    self.lock_acquirers.add(func.qualname)
                    return
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and is_lockish(node.func.value)
            ):
                self.lock_acquirers.add(func.qualname)
                return

    # ------------------------------------------------------------------
    # shared helpers for the RPR203/204/205 rules
    # ------------------------------------------------------------------
    def local_bindings(
        self, module: ModuleInfo, func_node: ast.AST
    ) -> Dict[str, str]:
        """Locals of ``func_node`` bound to sync/resource constructors.

        ``name → kind`` for ``q = queue.Queue()``, ``fh = open(...)``,
        ``lock = threading.Lock()`` and friends — including names bound by
        ``with <ctor>() as name`` items.
        """
        bindings: Dict[str, str] = {}

        def note(name_node: Optional[ast.expr], value: ast.expr) -> None:
            if (
                isinstance(name_node, ast.Name)
                and isinstance(value, ast.Call)
            ):
                kind = sync_kind(module, value)
                if kind is not None:
                    bindings.setdefault(name_node.id, kind)

        for node in ProjectIndex._walk_body(func_node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                note(node.targets[0], node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                note(node.target, node.value)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    note(item.optional_vars, item.context_expr)
        return bindings

    def always_called_locked(
        self,
        index: ProjectIndex,
        cc: ClassConcurrency,
        method_qualname: str,
    ) -> bool:
        """Whether every resolved call of a method holds one of its locks.

        True only when the method has at least one resolved project call
        site and *every* one of them (a) is a ``self.<method>()`` call on
        the caller's own receiver, (b) comes from a method of the same
        class, and (c) executes while holding one of the class's canonical
        locks. Such a method is a lock-scope extension, not an escape.
        """
        sites = self._sites_by_callee(index).get(method_qualname)
        if not sites:
            return False
        for site in sites:
            locked = self.locked_calls.get(id(site.node))
            if locked is None or not (locked.locks & cc.locks):
                return False
            caller = index.functions.get(site.caller)
            if caller is None or caller.class_qualname != cc.qualname:
                return False
            func = site.node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == locked.receiver
            ):
                return False
        return True

    def _sites_by_callee(self, index: ProjectIndex) -> Dict[str, list]:
        if self._callee_sites is None:
            graph = index.call_graph()
            by_callee: Dict[str, list] = {}
            for sites in graph.sites.values():
                for site in sites:
                    by_callee.setdefault(site.callee, []).append(site)
            self._callee_sites = by_callee
        return self._callee_sites
