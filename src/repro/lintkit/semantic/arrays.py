"""Local inference of which names hold numpy arrays (for RPR103).

Deliberately shallow and high-precision: a name is *known* to be an array
only when it is bound from a numpy constructor (``np.zeros``, ``np.asarray``,
``np.linspace``, …), an elementwise ufunc applied to a known array
(``np.exp``, ``np.maximum``, …), an ``axis=`` reduction (``np.sum(a,
axis=0)``), an array-preserving method (``.astype``, ``.copy``),
a slice or boolean mask of a known array, a parameter or dataclass field
annotated ``np.ndarray``, or a project function whose return annotation
says ``np.ndarray``. Plain integer indexing (``arr[i]``) yields a scalar
and is *not* propagated, so loop counters never look like arrays.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from .symbols import (
    FunctionInfo,
    ProjectIndex,
    annotation_type_names,
    dotted_name,
)

__all__ = [
    "NUMPY_ARRAY_CONSTRUCTORS",
    "NUMPY_ELEMENTWISE_UFUNCS",
    "NUMPY_AXIS_REDUCTIONS",
    "known_array_names",
    "is_array_expr",
    "numpy_call_tail",
]

#: numpy callables (attribute tail) that return an ndarray.
NUMPY_ARRAY_CONSTRUCTORS = frozenset(
    {
        "array", "asarray", "asfarray", "zeros", "ones", "empty", "full",
        "zeros_like", "ones_like", "empty_like", "full_like", "arange",
        "linspace", "logspace", "geomspace", "concatenate", "stack",
        "vstack", "hstack", "column_stack", "atleast_1d", "unique", "sort",
        "cumsum", "cumprod", "diff", "clip", "where", "digitize",
        "flatnonzero", "nonzero", "argsort", "searchsorted", "repeat",
        "tile", "meshgrid", "fromiter", "frombuffer", "histogram",
    }
)

#: Elementwise numpy ufuncs: the result is an ndarray whenever any
#: argument is one (``ys = np.exp(xs)`` keeps ``ys`` an array).
NUMPY_ELEMENTWISE_UFUNCS = frozenset(
    {
        "exp", "expm1", "log", "log2", "log10", "log1p", "sqrt", "abs",
        "absolute", "fabs", "maximum", "minimum", "power", "round",
        "floor", "ceil", "sign", "negative", "add", "subtract",
        "multiply", "divide", "true_divide", "mod", "hypot", "arctan2",
    }
)

#: numpy reductions that collapse to a scalar *unless* ``axis=`` is given,
#: in which case they return an ndarray of the surviving axes.
NUMPY_AXIS_REDUCTIONS = frozenset(
    {"sum", "prod", "mean", "median", "std", "var", "min", "max",
     "amin", "amax", "nansum", "nanmean", "nanmin", "nanmax"}
)

#: ndarray methods that return another ndarray.
_ARRAY_METHODS = frozenset(
    {"astype", "copy", "reshape", "ravel", "flatten", "cumsum", "clip",
     "round", "squeeze", "transpose"}
)

_NDARRAY_TAILS = frozenset({"ndarray", "NDArray", "ArrayLike"})


def _annotation_is_array(annotation: Optional[ast.expr]) -> bool:
    return any(
        name.split(".")[-1] in _NDARRAY_TAILS
        for name in annotation_type_names(annotation)
    )


def numpy_call_tail(call: ast.Call) -> Optional[str]:
    """The numpy function name when ``call`` is ``np.<name>(...)``."""
    if isinstance(call.func, ast.Attribute):
        head = dotted_name(call.func.value)
        if head in ("np", "numpy") or (
            head is not None and head.startswith(("np.", "numpy."))
        ):
            return call.func.attr
    return None


def _call_has_axis(call: ast.Call) -> bool:
    return any(
        keyword.arg == "axis"
        and not (
            isinstance(keyword.value, ast.Constant)
            and keyword.value.value is None
        )
        for keyword in call.keywords
    )


def is_array_expr(
    expr: ast.expr,
    known: Set[str],
    index: Optional[ProjectIndex] = None,
    module_name: str = "",
    local_types: Optional[Dict[str, str]] = None,
) -> bool:
    """Whether ``expr`` is known to evaluate to a numpy array."""
    dotted = dotted_name(expr)
    if dotted is not None:
        return dotted in known
    if isinstance(expr, ast.Call):
        tail = numpy_call_tail(expr)
        if tail in NUMPY_ARRAY_CONSTRUCTORS:
            return True
        if tail in NUMPY_ELEMENTWISE_UFUNCS and any(
            is_array_expr(arg, known, index, module_name, local_types)
            for arg in expr.args
        ):
            return True
        if (
            tail in NUMPY_AXIS_REDUCTIONS
            and _call_has_axis(expr)
            and expr.args
            and is_array_expr(
                expr.args[0], known, index, module_name, local_types
            )
        ):
            return True
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _ARRAY_METHODS
            and is_array_expr(
                expr.func.value, known, index, module_name, local_types
            )
        ):
            return True
        if index is not None:
            resolved = index.resolve_call(module_name, expr, local_types)
            if resolved is not None and resolved[0] == "function":
                func = index.functions.get(resolved[1])
                if func is not None and _annotation_is_array(func.returns):
                    return True
        return False
    if isinstance(expr, ast.Subscript):
        if not is_array_expr(
            expr.value, known, index, module_name, local_types
        ):
            return False
        # Slices and boolean masks keep arrays arrays; scalar indexing
        # (arr[i]) does not.
        inner = expr.slice
        if isinstance(inner, ast.Slice):
            return True
        if isinstance(inner, ast.Tuple) and any(
            isinstance(element, ast.Slice) for element in inner.elts
        ):
            return True
        if isinstance(inner, (ast.Compare, ast.BinOp, ast.UnaryOp)):
            return True  # mask / fancy arithmetic index
        return is_array_expr(inner, known, index, module_name, local_types)
    if isinstance(expr, ast.BinOp):
        return is_array_expr(
            expr.left, known, index, module_name, local_types
        ) or is_array_expr(expr.right, known, index, module_name, local_types)
    return False


def known_array_names(
    func: FunctionInfo,
    index: ProjectIndex,
) -> Set[str]:
    """Dotted names known to hold numpy arrays inside ``func``.

    Includes parameters annotated ``np.ndarray``, attribute chains through
    project dataclass fields annotated ``np.ndarray`` (``series.times_s``),
    and locals assigned from array-producing expressions (iterated to a
    small fixpoint so chains like ``a = np.asarray(...); b = a[1:]`` work).
    """
    known: Set[str] = set()
    local_types = index.local_class_types(func)
    for param in func.params:
        if _annotation_is_array(param.annotation):
            known.add(param.name)
    for receiver, class_qualname in local_types.items():
        cls = index.classes.get(class_qualname)
        if cls is None:
            continue
        for field_name, annotation in cls.fields.items():
            if _annotation_is_array(annotation):
                known.add(f"{receiver}.{field_name}")
    for _ in range(3):
        before = len(known)
        for node in ProjectIndex._walk_body(func.node):
            if not (
                isinstance(node, (ast.Assign, ast.AnnAssign))
            ):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if len(targets) != 1 or not isinstance(targets[0], ast.Name):
                continue
            value = node.value
            if value is None:
                continue
            if is_array_expr(
                value, known, index, func.module, local_types
            ):
                known.add(targets[0].id)
        if len(known) == before:
            break
    return known
