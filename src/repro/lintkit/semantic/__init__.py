"""Project-level semantic analyses backing reprolint's flow-sensitive rules.

Phase 1 of the linter builds a :class:`~repro.lintkit.semantic.symbols.ProjectIndex`
over every file in the lint batch: dotted module names, function/class
signatures, and import tables (absolute, relative, and ``__init__``
re-exports). Phase 2 rules then consult the derived analyses, each computed
lazily and cached on the index:

* :mod:`~repro.lintkit.semantic.callgraph` — project-internal call graph with
  method resolution through annotated receivers;
* :mod:`~repro.lintkit.semantic.purity` — side-effect inference (greatest
  fixpoint) used to decide whether a call may be hoisted;
* :mod:`~repro.lintkit.semantic.units` — the unit-suffix lattice plus a
  forward dataflow that propagates unit tags through assignments, returns,
  and call sites (RPR101);
* :mod:`~repro.lintkit.semantic.taint` — determinism taint: which functions
  transitively draw randomness, and whether they thread an ``rng``/seed
  (RPR102);
* :mod:`~repro.lintkit.semantic.arrays` — local inference of which names are
  numpy arrays, for the scalar-loop performance lint (RPR103);
* :mod:`~repro.lintkit.semantic.concurrency` — per-class lock summaries:
  which attributes are locks, which attributes those locks guard, and the
  lock scope of every access and call site (RPR201–RPR205);
* :mod:`~repro.lintkit.semantic.shapes` — abstract interpretation inferring
  symbolic shape, dtype, and writability (fresh / view / read-only plane)
  for array-valued names, plus the hot-path function set seeded from
  ``# reprolint: hot-path`` markers and the benchmark call graph
  (RPR301–RPR305).

Everything here is stdlib-only (``ast``), like the rest of ``lintkit``.
"""

from __future__ import annotations

from .concurrency import ConcurrencyIndex
from .shapes import ShapeIndex, ShapeInfo
from .symbols import FunctionInfo, ModuleInfo, ProjectIndex
from .units import (
    ALLOWED_MIXES,
    UNIT_DIMENSIONS,
    conflict_description,
    has_unit_suffix,
    unit_suffix,
)

__all__ = [
    "ProjectIndex",
    "ModuleInfo",
    "FunctionInfo",
    "ConcurrencyIndex",
    "ShapeIndex",
    "ShapeInfo",
    "UNIT_DIMENSIONS",
    "ALLOWED_MIXES",
    "unit_suffix",
    "has_unit_suffix",
    "conflict_description",
]
