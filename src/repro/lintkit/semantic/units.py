"""Unit-suffix lattice and project-wide unit-inference dataflow (RPR101).

The vocabulary half (``UNIT_DIMENSIONS``, ``unit_suffix``, …) is the single
source of truth for the repository's suffix convention; RPR001 re-exports
it for its purely textual per-expression check.

The :class:`UnitInference` half is the semantic upgrade: a forward abstract
interpretation per function where the abstract value of an expression is
its unit tag (``"s"``, ``"dbm"``, …) or unknown. Units enter the lattice
from identifier suffixes, flow through assignments, ``float()``/numpy
passthroughs, aggregation methods, tuple-unpacking ``for`` targets, and —
crucially — across call sites: a call to a project function whose name
carries a suffix (or all of whose ``return`` expressions agree on a unit)
evaluates to that unit. Three checks consume the flow:

* additive arithmetic/comparison conflicts where at least one operand's
  unit was *inferred* (the textual-only case is RPR001's);
* assigning a known-unit value to a name whose suffix disagrees;
* passing a known-unit argument to a parameter whose suffix disagrees —
  the cross-module case no per-file rule can see;
* returning a known-unit value from a function whose name suffix declares
  a different unit. The ``db``/``dbm`` exemption does **not** apply here:
  adding a dB gain to a dBm level is log-domain arithmetic, but *returning*
  a dB ratio from a ``_dbm`` function claims an identity that only holds
  relative to an implicit reference level.

Log-domain arithmetic is modelled: ``dBm − dBm → dB``, ``dBm ± dB → dBm``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .symbols import FunctionInfo, ProjectIndex, dotted_name

__all__ = [
    "UNIT_DIMENSIONS",
    "ALLOWED_MIXES",
    "unit_suffix",
    "has_unit_suffix",
    "conflict_description",
    "UnitConflict",
    "UnitInference",
]

#: Recognized unit suffix -> physical dimension.
UNIT_DIMENSIONS = {
    "s": "time",
    "ms": "time",
    "us": "time",
    "ns": "time",
    "dbm": "power",
    "db": "power",
    "mw": "power",
    "w": "power",
    "bytes": "data",
    "bits": "data",
    "bps": "rate",
    "kbps": "rate",
    "j": "energy",
    "uj": "energy",
    "mj": "energy",
    "hz": "frequency",
    "khz": "frequency",
    "mhz": "frequency",
    "m": "length",
    "km": "length",
    "v": "voltage",
    "a": "current",
    "ma": "current",
    "k": "temperature",
}

#: Unit pairs that may legitimately mix in additive arithmetic: dB ratios
#: compose with dBm absolute powers in the log domain.
ALLOWED_MIXES: FrozenSet[FrozenSet[str]] = frozenset(
    {frozenset({"db", "dbm"})}
)


def unit_suffix(identifier: str) -> Optional[str]:
    """The recognized plain unit suffix of ``identifier``, if it has one.

    Only multi-token names qualify (``t_ms`` yes, a bare loop variable
    ``s`` no), so short mathematical names are never misread as units.
    Compound per-unit names (``..._uj_per_bit``) return ``None`` here —
    they carry a unit but do not participate in plain-suffix conflict
    checks; see :func:`has_unit_suffix`.
    """
    parts = identifier.lower().split("_")
    if len(parts) < 2:
        return None
    suffix = parts[-1]
    return suffix if suffix in UNIT_DIMENSIONS else None


def has_unit_suffix(identifier: str) -> bool:
    """Whether ``identifier`` carries a plain or compound unit suffix.

    Compound form: ``<unit>_per_<anything>`` (``energy_uj_per_bit``,
    ``cost_j_per_k``).
    """
    if unit_suffix(identifier) is not None:
        return True
    parts = identifier.lower().split("_")
    return (
        len(parts) >= 3
        and parts[-2] == "per"
        and parts[-3] in UNIT_DIMENSIONS
    )


def conflict_description(left: str, right: str) -> Optional[str]:
    """A human-readable description of the unit conflict, or ``None``."""
    if left == right:
        return None
    if frozenset({left, right}) in ALLOWED_MIXES:
        return None
    dim_left = UNIT_DIMENSIONS[left]
    dim_right = UNIT_DIMENSIONS[right]
    if dim_left == dim_right:
        return f"mixes {dim_left} scales _{left} and _{right}"
    return f"mixes dimensions {dim_left} (_{left}) and {dim_right} (_{right})"


def _combine_additive(op: ast.operator, left: str, right: str) -> Optional[str]:
    """Resulting unit of ``left <op> right`` for compatible operands."""
    if left == right:
        if left == "dbm" and isinstance(op, ast.Sub):
            return "db"  # difference of absolute powers is a ratio
        return left
    if frozenset({left, right}) in ALLOWED_MIXES:
        if isinstance(op, ast.Add):
            return "dbm"
        return "dbm" if left == "dbm" else None
    return None


#: numpy helpers whose result carries the unit of their first argument.
_NUMPY_PASSTHROUGH = frozenset(
    {
        "abs", "clip", "asarray", "array", "atleast_1d", "ravel", "squeeze",
        "sort", "unique", "mean", "median", "nanmean", "min", "max", "amin",
        "amax", "nanmin", "nanmax", "percentile", "quantile", "round",
        "floor", "ceil", "copy", "cumsum", "full_like",
    }
)

#: numpy helpers whose result joins the units of all their arguments.
_NUMPY_JOIN = frozenset({"maximum", "minimum", "fmax", "fmin"})

#: builtins transparent to units.
_BARE_PASSTHROUGH = frozenset({"float", "abs", "round", "int", "sum", "sorted"})
_BARE_JOIN = frozenset({"min", "max"})

#: methods whose result carries the unit of their receiver.
_AGG_METHODS = frozenset(
    {
        "mean", "sum", "min", "max", "std", "item", "copy", "astype",
        "clip", "tolist", "cumsum",
    }
)

_ORDERING_EXEMPT = (ast.In, ast.NotIn, ast.Is, ast.IsNot)


@dataclass(frozen=True)
class UnitConflict:
    """One flow-derived unit conflict, anchored at an AST node."""

    node: ast.AST
    message: str
    suggestion: str


@dataclass
class _Analysis:
    """Per-function result: conflicts found and units of return exprs."""

    conflicts: List[UnitConflict] = field(default_factory=list)
    return_units: List[Optional[str]] = field(default_factory=list)
    has_value_return: bool = False


class UnitInference:
    """Lazily analyses project functions; results are memoised per function."""

    def __init__(self, index: ProjectIndex) -> None:
        self._index = index
        self._analyses: Dict[str, _Analysis] = {}
        self._return_units: Dict[str, Optional[str]] = {}

    # -- public API ----------------------------------------------------
    def conflicts_for_module(self, module_name: str) -> List[UnitConflict]:
        """All unit conflicts inside functions defined in ``module_name``."""
        conflicts: List[UnitConflict] = []
        for func in sorted(
            self._index.functions.values(), key=lambda f: f.qualname
        ):
            if func.module == module_name:
                conflicts.extend(self._analyze(func).conflicts)
        return conflicts

    def return_unit(self, qualname: str) -> Optional[str]:
        """The unit a call to ``qualname`` evaluates to, if inferable."""
        if qualname in self._return_units:
            return self._return_units[qualname]
        func = self._index.functions.get(qualname)
        if func is None:
            return None
        self._return_units[qualname] = None  # cycle guard
        declared = unit_suffix(func.name)
        if declared is not None:
            self._return_units[qualname] = declared
            return declared
        analysis = self._analyze(func)
        units = [u for u in analysis.return_units if u is not None]
        if (
            analysis.has_value_return
            and units
            and len(units) == len(analysis.return_units)
            and len(set(units)) == 1
        ):
            self._return_units[qualname] = units[0]
        return self._return_units[qualname]

    # -- internals -----------------------------------------------------
    def _analyze(self, func: FunctionInfo) -> _Analysis:
        if func.qualname in self._analyses:
            return self._analyses[func.qualname]
        analysis = _Analysis()
        self._analyses[func.qualname] = analysis
        walker = _FunctionWalker(self, func, analysis)
        walker.run()
        return analysis


class _FunctionWalker:
    """Single forward pass over one function body, branch-sensitive."""

    def __init__(
        self,
        engine: UnitInference,
        func: FunctionInfo,
        analysis: _Analysis,
    ) -> None:
        self._engine = engine
        self._index = engine._index
        self._func = func
        self._analysis = analysis
        self._types = self._index.local_class_types(func)
        self._reported: Set[int] = set()

    def run(self) -> None:
        """Interpret the function body with an empty initial environment."""
        env: Dict[str, Optional[str]] = {}
        body = getattr(self._func.node, "body", [])
        self._exec_block(body, env)

    # -- statements ----------------------------------------------------
    def _exec_block(
        self, stmts: List[ast.stmt], env: Dict[str, Optional[str]]
    ) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(
        self, stmt: ast.stmt, env: Dict[str, Optional[str]]
    ) -> None:
        if isinstance(stmt, ast.Assign):
            unit, inferred = self._expr(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, unit, inferred, env, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                unit, inferred = self._expr(stmt.value, env)
                self._bind(stmt.target, unit, inferred, env, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value_unit, value_inferred = self._expr(stmt.value, env)
            target_unit, target_inferred = self._target_unit(stmt.target, env)
            if (
                isinstance(stmt.op, (ast.Add, ast.Sub))
                and value_unit
                and target_unit
                and (value_inferred or target_inferred)
            ):
                description = conflict_description(target_unit, value_unit)
                if description:
                    self._report(
                        stmt,
                        f"unit conflict (flow): augmented assignment "
                        f"{description}",
                        "convert the value so both sides share a unit",
                    )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit, inferred = self._expr(stmt.value, env)
                self._analysis.return_units.append(unit)
                self._analysis.has_value_return = True
                self._check_return(stmt, unit, inferred)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test, env)
            env_true = dict(env)
            env_false = dict(env)
            self._exec_block(stmt.body, env_true)
            self._exec_block(stmt.orelse, env_false)
            self._merge_into(env, env_true, env_false)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_unit, _ = self._expr(stmt.iter, env)
            self._bind_loop_target(stmt.target, stmt.iter, iter_unit, env)
            env_body = dict(env)
            self._exec_block(stmt.body, env_body)
            self._exec_block(stmt.orelse, env_body)
            self._merge_into(env, env, env_body)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, env)
            env_body = dict(env)
            self._exec_block(stmt.body, env_body)
            self._exec_block(stmt.orelse, env_body)
            self._merge_into(env, env, env_body)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self._clear_target(item.optional_vars, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            env_body = dict(env)
            self._exec_block(stmt.body, env_body)
            for handler in stmt.handlers:
                self._exec_block(handler.body, dict(env))
            self._exec_block(stmt.orelse, env_body)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._clear_target(target, env)
        # nested defs/classes and pass/break/continue: nothing flows

    def _check_return(
        self, stmt: ast.Return, unit: Optional[str], inferred: bool
    ) -> None:
        """Returned unit must match the function's declared name suffix.

        Unlike additive arithmetic, the log-domain ``db``/``dbm`` mix is
        *not* exempt: a return value states what the function yields, and a
        dB ratio only equals a dBm level relative to an implicit reference.
        """
        declared = unit_suffix(self._func.name)
        if not (declared and unit) or unit == declared:
            return
        description = conflict_description(unit, declared)
        if description is None:
            description = (
                f"yields a _{unit} ratio where the name declares an "
                f"absolute _{declared} level"
            )
        else:
            description = f"{description} against the declared suffix"
        provenance = ""
        if inferred and stmt.value is not None:
            provenance = (
                f" ({self._describe(stmt.value)} was inferred to carry "
                f"_{unit})"
            )
        self._report(
            stmt,
            f"unit conflict (flow): return of {self._func.name!r} "
            f"{description}{provenance}",
            "make the conversion explicit (e.g. divide by the reference "
            "level) or rename the function to its actual unit",
        )

    def _bind(
        self,
        target: ast.expr,
        unit: Optional[str],
        inferred: bool,
        env: Dict[str, Optional[str]],
        value: ast.expr,
    ) -> None:
        if isinstance(target, ast.Name):
            textual = unit_suffix(target.id)
            if textual and unit and inferred:
                description = conflict_description(textual, unit)
                if description:
                    self._report(
                        value,
                        f"unit conflict (flow): assigning a _{unit} value "
                        f"to {target.id!r} {description}",
                        "convert the value or rename the target to match "
                        "its actual unit",
                    )
            env[target.id] = textual or unit
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._clear_target(element, env)
        # attribute/subscript targets: no local binding to track

    def _bind_loop_target(
        self,
        target: ast.expr,
        iterable: ast.expr,
        iter_unit: Optional[str],
        env: Dict[str, Optional[str]],
    ) -> None:
        """Bind loop targets: elements of a ``_s`` array are in seconds."""
        self._clear_target(target, env)
        if isinstance(target, ast.Name) and iter_unit:
            env[target.id] = iter_unit
        elif (
            isinstance(target, (ast.Tuple, ast.List))
            and isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "zip"
            and len(iterable.args) == len(target.elts)
        ):
            for element, arg in zip(target.elts, iterable.args):
                if isinstance(element, ast.Name):
                    arg_unit, _ = self._expr(arg, env)
                    if arg_unit:
                        env[element.id] = arg_unit

    def _clear_target(
        self, target: ast.expr, env: Dict[str, Optional[str]]
    ) -> None:
        if isinstance(target, ast.Name):
            env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._clear_target(element, env)
        elif isinstance(target, ast.Starred):
            self._clear_target(target.value, env)

    @staticmethod
    def _merge_into(
        env: Dict[str, Optional[str]],
        left: Dict[str, Optional[str]],
        right: Dict[str, Optional[str]],
    ) -> None:
        merged = {
            name: unit
            for name, unit in left.items()
            if right.get(name) == unit
        }
        env.clear()
        env.update(merged)

    def _target_unit(
        self, target: ast.expr, env: Dict[str, Optional[str]]
    ) -> Tuple[Optional[str], bool]:
        if isinstance(target, ast.Name):
            textual = unit_suffix(target.id)
            if textual:
                return textual, False
            if target.id in env and env[target.id]:
                return env[target.id], True
        elif isinstance(target, ast.Attribute):
            return unit_suffix(target.attr), False
        return None, False

    # -- expressions ---------------------------------------------------
    def _expr(
        self, node: ast.expr, env: Dict[str, Optional[str]]
    ) -> Tuple[Optional[str], bool]:
        """Unit of ``node`` plus whether it was inferred (vs. textual)."""
        if isinstance(node, ast.Name):
            textual = unit_suffix(node.id)
            if textual:
                return textual, False
            unit = env.get(node.id)
            return (unit, True) if unit else (None, False)
        if isinstance(node, ast.Attribute):
            self._expr(node.value, env)
            return unit_suffix(node.attr), False
        if isinstance(node, ast.Subscript):
            unit, inferred = self._expr(node.value, env)
            if isinstance(node.slice, ast.expr):
                self._expr(node.slice, env)
            return unit, inferred
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.BinOp):
            return self._binop(node, env)
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand, env)
        if isinstance(node, ast.Compare):
            self._compare(node, env)
            return None, False
        if isinstance(node, ast.BoolOp):
            return self._join(
                [self._expr(value, env) for value in node.values]
            )
        if isinstance(node, ast.IfExp):
            self._expr(node.test, env)
            return self._join(
                [self._expr(node.body, env), self._expr(node.orelse, env)]
            )
        if isinstance(node, ast.Starred):
            return self._expr(node.value, env)
        self._generic_visit(node, env)
        return None, False

    def _generic_visit(
        self, node: ast.AST, env: Dict[str, Optional[str]]
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, env)
            elif isinstance(child, (ast.comprehension, ast.keyword)):
                self._generic_visit(child, env)

    @staticmethod
    def _join(
        units: List[Tuple[Optional[str], bool]]
    ) -> Tuple[Optional[str], bool]:
        known = [unit for unit, _ in units if unit]
        if known and len(known) == len(units) and len(set(known)) == 1:
            return known[0], any(inferred for _, inferred in units)
        return None, False

    def _binop(
        self, node: ast.BinOp, env: Dict[str, Optional[str]]
    ) -> Tuple[Optional[str], bool]:
        left_unit, left_inferred = self._expr(node.left, env)
        right_unit, right_inferred = self._expr(node.right, env)
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return None, False  # *, /, %, ** legitimately change units
        if left_unit and right_unit:
            if left_inferred or right_inferred:
                description = conflict_description(left_unit, right_unit)
                if description:
                    provenance = self._provenance(
                        node.left, left_unit, left_inferred,
                        node.right, right_unit, right_inferred,
                    )
                    self._report(
                        node,
                        f"unit conflict (flow): expression {description}"
                        f"{provenance}",
                        "convert one operand (see repro.units) so both "
                        "sides share a unit",
                    )
                    return None, False
            result = _combine_additive(node.op, left_unit, right_unit)
            return result, (left_inferred or right_inferred)
        return None, False

    def _compare(
        self, node: ast.Compare, env: Dict[str, Optional[str]]
    ) -> None:
        operands = [node.left] + list(node.comparators)
        units = [self._expr(operand, env) for operand in operands]
        for op, (left, right) in zip(
            node.ops, zip(zip(operands, units), zip(operands[1:], units[1:]))
        ):
            if isinstance(op, _ORDERING_EXEMPT):
                continue
            (left_node, (left_unit, left_inferred)) = left
            (right_node, (right_unit, right_inferred)) = right
            if not (left_unit and right_unit):
                continue
            if not (left_inferred or right_inferred):
                continue  # textual-vs-textual is RPR001's finding
            description = conflict_description(left_unit, right_unit)
            if description:
                provenance = self._provenance(
                    left_node, left_unit, left_inferred,
                    right_node, right_unit, right_inferred,
                )
                self._report(
                    node,
                    f"unit conflict (flow): comparison {description}"
                    f"{provenance}",
                    "convert one operand (see repro.units) so both sides "
                    "share a unit",
                )

    @staticmethod
    def _describe(node: ast.expr) -> str:
        dotted = dotted_name(node)
        if dotted:
            return repr(dotted)
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            return f"call to {callee!r}" if callee else "a call"
        return "an expression"

    def _provenance(
        self,
        left_node: ast.expr,
        left_unit: str,
        left_inferred: bool,
        right_node: ast.expr,
        right_unit: str,
        right_inferred: bool,
    ) -> str:
        notes = []
        if left_inferred:
            notes.append(
                f"{self._describe(left_node)} was inferred to carry "
                f"_{left_unit}"
            )
        if right_inferred:
            notes.append(
                f"{self._describe(right_node)} was inferred to carry "
                f"_{right_unit}"
            )
        return f" ({'; '.join(notes)})" if notes else ""

    # -- calls ---------------------------------------------------------
    def _call(
        self, node: ast.Call, env: Dict[str, Optional[str]]
    ) -> Tuple[Optional[str], bool]:
        arg_units = [self._expr(arg, env) for arg in node.args]
        keyword_units = [
            (kw, self._expr(kw.value, env)) for kw in node.keywords
        ]
        resolved = self._index.resolve_call(
            self._func.module, node, self._types
        )
        if resolved is not None:
            self._check_call_args(node, resolved, arg_units, keyword_units)
            if resolved[0] == "function":
                return self._engine.return_unit(resolved[1]), True
            return None, False
        return self._external_call_unit(node, env, arg_units)

    def _external_call_unit(
        self,
        node: ast.Call,
        env: Dict[str, Optional[str]],
        arg_units: List[Tuple[Optional[str], bool]],
    ) -> Tuple[Optional[str], bool]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _BARE_PASSTHROUGH and arg_units:
                return arg_units[0]
            if func.id in _BARE_JOIN and arg_units:
                return self._join(arg_units)
            return None, False
        if isinstance(func, ast.Attribute):
            head = dotted_name(func.value)
            if head in ("np", "numpy"):
                if func.attr in _NUMPY_PASSTHROUGH and arg_units:
                    return arg_units[0]
                if func.attr in _NUMPY_JOIN and arg_units:
                    return self._join(arg_units)
                if func.attr == "where" and len(arg_units) == 3:
                    return self._join(arg_units[1:])
                return None, False
            if func.attr in _AGG_METHODS and not node.args:
                return self._expr(func.value, env)
            if func.attr in _AGG_METHODS:
                return self._expr(func.value, env)[0], True
        return None, False

    def _check_call_args(
        self,
        node: ast.Call,
        resolved: Tuple[str, str],
        arg_units: List[Tuple[Optional[str], bool]],
        keyword_units: List[Tuple[ast.keyword, Tuple[Optional[str], bool]]],
    ) -> None:
        kind, qualname = resolved
        if kind == "function":
            func = self._index.functions.get(qualname)
            if func is None:
                return
            params = func.callable_params()
        else:
            params = self._index.constructor_params(qualname)
        by_name = {param.name: param for param in params}
        for position, (arg, (unit, _)) in enumerate(
            zip(node.args, arg_units)
        ):
            if isinstance(arg, ast.Starred) or position >= len(params):
                continue
            self._check_one_arg(node, qualname, params[position].name, arg, unit)
        for keyword, (unit, _) in keyword_units:
            if keyword.arg is not None and keyword.arg in by_name:
                self._check_one_arg(
                    node, qualname, keyword.arg, keyword.value, unit
                )

    def _check_one_arg(
        self,
        call: ast.Call,
        qualname: str,
        param_name: str,
        arg: ast.expr,
        arg_unit: Optional[str],
    ) -> None:
        param_unit = unit_suffix(param_name)
        if not (param_unit and arg_unit):
            return
        description = conflict_description(arg_unit, param_unit)
        if description:
            self._report(
                arg,
                f"unit conflict (flow): argument for parameter "
                f"{param_name!r} of {qualname!r} {description} "
                f"({self._describe(arg)} carries _{arg_unit})",
                "convert the argument to the unit the parameter name "
                "declares",
            )

    def _report(self, node: ast.AST, message: str, suggestion: str) -> None:
        key = id(node)
        if key in self._reported:
            return
        self._reported.add(key)
        self._analysis.conflicts.append(
            UnitConflict(node=node, message=message, suggestion=suggestion)
        )
