"""Text and JSON reporters for reprolint findings."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .findings import Finding, Severity

__all__ = [
    "REPORT_VERSION",
    "render_text",
    "render_json",
]

#: Schema version of the JSON report envelope.
REPORT_VERSION = 1


def _summary(findings: Sequence[Finding]) -> Dict[str, int]:
    counts = {severity.value: 0 for severity in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines: List[str] = [finding.format() for finding in findings]
    if findings:
        counts = _summary(findings)
        per_rule: Dict[str, int] = {}
        for finding in findings:
            per_rule[finding.rule_id] = per_rule.get(finding.rule_id, 0) + 1
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(per_rule.items())
        )
        lines.append(
            f"found {len(findings)} problem(s) "
            f"({counts['error']} error(s), {counts['warning']} warning(s)) "
            f"[{breakdown}]"
        )
    else:
        lines.append("no problems found")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report with a stable envelope schema.

    The envelope is ``{"version", "count", "summary", "findings"}`` where
    each finding row follows :meth:`Finding.to_dict`.
    """
    document = {
        "version": REPORT_VERSION,
        "count": len(findings),
        "summary": _summary(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(document, indent=2)
