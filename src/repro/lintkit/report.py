"""Text and JSON reporters for reprolint findings."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .findings import Finding, Severity

__all__ = [
    "REPORT_VERSION",
    "per_rule_counts",
    "render_text",
    "render_json",
]

#: Schema version of the JSON report envelope.
REPORT_VERSION = 1


def _summary(findings: Sequence[Finding]) -> Dict[str, int]:
    counts = {severity.value: 0 for severity in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


def per_rule_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    """Finding count per rule id, sorted by rule id."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return dict(sorted(counts.items()))


def render_text(findings: Sequence[Finding], statistics: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary line.

    With ``statistics`` a per-rule count table follows the summary —
    most-frequent rule first, then by rule id.
    """
    lines: List[str] = [finding.format() for finding in findings]
    if findings:
        counts = _summary(findings)
        breakdown = ", ".join(
            f"{rule}: {count}"
            for rule, count in per_rule_counts(findings).items()
        )
        lines.append(
            f"found {len(findings)} problem(s) "
            f"({counts['error']} error(s), {counts['warning']} warning(s)) "
            f"[{breakdown}]"
        )
    else:
        lines.append("no problems found")
    if statistics:
        lines.append("per-rule statistics:")
        per_rule = per_rule_counts(findings)
        if per_rule:
            for rule, count in sorted(
                per_rule.items(), key=lambda item: (-item[1], item[0])
            ):
                lines.append(f"  {rule}  {count}")
        else:
            lines.append("  (no findings)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], statistics: bool = False) -> str:
    """Machine-readable report with a stable envelope schema.

    The envelope is ``{"version", "count", "summary", "findings"}`` where
    each finding row follows :meth:`Finding.to_dict`; ``statistics`` adds a
    ``"statistics"`` object mapping rule id to finding count.
    """
    document = {
        "version": REPORT_VERSION,
        "count": len(findings),
        "summary": _summary(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    if statistics:
        document["statistics"] = per_rule_counts(findings)
    return json.dumps(document, indent=2)
