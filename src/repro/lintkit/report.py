"""Text, JSON, and SARIF reporters for reprolint findings."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Type

from .findings import Finding, Severity

__all__ = [
    "REPORT_VERSION",
    "SARIF_VERSION",
    "per_rule_counts",
    "render_text",
    "render_json",
    "render_sarif",
]

#: Schema version of the JSON report envelope.
REPORT_VERSION = 1

#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _summary(findings: Sequence[Finding]) -> Dict[str, int]:
    counts = {severity.value: 0 for severity in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


def per_rule_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    """Finding count per rule id, sorted by rule id."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return dict(sorted(counts.items()))


def render_text(findings: Sequence[Finding], statistics: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary line.

    With ``statistics`` a per-rule count table follows the summary —
    most-frequent rule first, then by rule id.
    """
    lines: List[str] = [finding.format() for finding in findings]
    if findings:
        counts = _summary(findings)
        breakdown = ", ".join(
            f"{rule}: {count}"
            for rule, count in per_rule_counts(findings).items()
        )
        lines.append(
            f"found {len(findings)} problem(s) "
            f"({counts['error']} error(s), {counts['warning']} warning(s)) "
            f"[{breakdown}]"
        )
    else:
        lines.append("no problems found")
    if statistics:
        lines.append("per-rule statistics:")
        per_rule = per_rule_counts(findings)
        if per_rule:
            for rule, count in sorted(
                per_rule.items(), key=lambda item: (-item[1], item[0])
            ):
                lines.append(f"  {rule}  {count}")
        else:
            lines.append("  (no findings)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], statistics: bool = False) -> str:
    """Machine-readable report with a stable envelope schema.

    The envelope is ``{"version", "count", "summary", "findings"}`` where
    each finding row follows :meth:`Finding.to_dict`; ``statistics`` adds a
    ``"statistics"`` object mapping rule id to finding count.
    """
    document = {
        "version": REPORT_VERSION,
        "count": len(findings),
        "summary": _summary(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    if statistics:
        document["statistics"] = per_rule_counts(findings)
    return json.dumps(document, indent=2)


def _sarif_level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _sarif_rule_metadata(rule_cls: Type) -> Dict[str, object]:
    """One ``reportingDescriptor`` from a rule class's explain card."""
    help_lines = [rule_cls.rationale]
    if rule_cls.example_bad:
        help_lines.append("Bad:\n" + rule_cls.example_bad.rstrip())
    if rule_cls.example_good:
        help_lines.append("Good:\n" + rule_cls.example_good.rstrip())
    return {
        "id": rule_cls.rule_id,
        "name": rule_cls.name,
        "shortDescription": {"text": rule_cls.description},
        "fullDescription": {"text": rule_cls.rationale},
        "help": {"text": "\n\n".join(line for line in help_lines if line)},
        "defaultConfiguration": {
            "level": _sarif_level(rule_cls.severity),
        },
    }


def render_sarif(
    findings: Sequence[Finding],
    rules: Optional[Sequence[Type]] = None,
) -> str:
    """SARIF 2.1.0 log for CI code-scanning upload.

    One run from the ``reprolint`` driver; ``rules`` (rule *classes*, e.g.
    from :func:`repro.lintkit.all_rules`) populate the driver's rule
    metadata from the same rationale/example cards ``--explain`` prints,
    so code-scanning annotations carry the full explanation. Rules that
    produced findings but are missing from ``rules`` still resolve via
    their bare id.
    """
    rule_classes = list(rules) if rules is not None else []
    rule_index = {rule_cls.rule_id: i for i, rule_cls in enumerate(rule_classes)}
    results = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": _sarif_level(finding.severity),
            "message": {
                "text": finding.message
                + (f" [{finding.suggestion}]" if finding.suggestion else "")
            },
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    document = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": str(REPORT_VERSION),
                        "rules": [
                            _sarif_rule_metadata(rule_cls)
                            for rule_cls in rule_classes
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
