"""Registry of the paper's named numeric constants (RPR003's ground truth).

The registry is built by statically parsing the modules that pin the paper's
published values — ``radio/timing.py``, ``radio/cc2420.py`` and
``core/constants.py`` — so the linter never imports the runtime package it
is checking. Two literal shapes are collected:

* module-level ``UPPER_CASE = <number>`` assignments (optionally negated),
  e.g. ``TURNAROUND_TIME_S = 0.224e-3``;
* numeric keyword arguments of module-level constructor calls, e.g. the
  ``alpha=0.0128`` inside ``PER_FIT = ExpFitCoefficients(alpha=0.0128, ...)``,
  registered as ``PER_FIT.alpha``.

Only **distinctive** values (at least three significant decimal digits) are
kept: flagging every ``5.0`` that happens to equal ``GREY_ZONE_LOW_DB``
would bury real duplications such as a re-hardcoded ``8.192e-3`` in noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "RegisteredConstant",
    "REGISTRY_MODULES",
    "MIN_SIGNIFICANT_DIGITS",
    "significant_digits",
    "is_distinctive",
    "load_registry",
    "match_constant",
]

#: Package-relative modules whose constants populate the registry. The
#: first three are the canonical registries named in the rule docs; the
#: path-loss module joins them because the channel layer is where the
#: Fig. 3 fit is *defined* (``core.constants`` only re-exports it).
REGISTRY_MODULES: Tuple[str, ...] = (
    "radio/timing.py",
    "radio/cc2420.py",
    "core/constants.py",
    "channel/pathloss.py",
)

#: Values with fewer significant decimal digits than this are too common to
#: police (0.02, 3.2, 114, ...) and are left to human review.
MIN_SIGNIFICANT_DIGITS = 3


@dataclass(frozen=True)
class RegisteredConstant:
    """One named paper constant and where it is defined."""

    name: str
    value: float
    module: str


def significant_digits(value: float) -> int:
    """Number of significant decimal digits in ``value``.

    >>> significant_digits(0.224e-3)
    3
    >>> significant_digits(250_000)
    2
    """
    if value == 0:
        return 0
    text = repr(abs(float(value)))
    if "e" in text or "E" in text:
        text = text.split("e")[0].split("E")[0]
    digits = text.replace(".", "").strip("0")
    return len(digits)


def is_distinctive(value: float) -> bool:
    """Whether ``value`` is specific enough to attribute to the paper."""
    return significant_digits(value) >= MIN_SIGNIFICANT_DIGITS


def _literal_value(node: ast.expr) -> Optional[float]:
    """The numeric value of a literal (or negated literal), else ``None``."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_value(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None


def _iter_module_constants(
    tree: ast.Module, module: str
) -> Iterator[RegisteredConstant]:
    for stmt in tree.body:
        targets = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            continue
        literal = _literal_value(value)
        if literal is not None:
            for name in names:
                if name.isupper():
                    yield RegisteredConstant(name, literal, module)
            continue
        if isinstance(value, ast.Call):
            for keyword in value.keywords:
                if keyword.arg is None:
                    continue
                kw_value = _literal_value(keyword.value)
                if kw_value is not None:
                    for name in names:
                        if name.isupper():
                            yield RegisteredConstant(
                                f"{name}.{keyword.arg}", kw_value, module
                            )


_CACHE: Dict[Path, Tuple[RegisteredConstant, ...]] = {}


def load_registry(package_root: Path) -> Tuple[RegisteredConstant, ...]:
    """All distinctive constants found under ``package_root`` (cached)."""
    package_root = package_root.resolve()
    if package_root not in _CACHE:
        constants = []
        for module in REGISTRY_MODULES:
            path = package_root / module
            if not path.is_file():
                continue
            tree = ast.parse(path.read_text(encoding="utf-8"))
            constants.extend(
                c for c in _iter_module_constants(tree, module) if is_distinctive(c.value)
            )
        _CACHE[package_root] = tuple(constants)
    return _CACHE[package_root]


def match_constant(
    value: float,
    registry: Tuple[RegisteredConstant, ...],
    rel_tol: float = 1e-6,
) -> Optional[RegisteredConstant]:
    """The registered constant that ``value`` duplicates, if any.

    Matching is sign-insensitive (negative literals parse as ``USub`` around
    a positive constant) and uses a relative tolerance so ``0.000224``
    matches ``0.224e-3`` exactly but not ``0.225e-3``.
    """
    magnitude = abs(float(value))
    if magnitude == 0:
        return None
    for constant in registry:
        reference = abs(constant.value)
        if reference == 0:
            continue
        if abs(magnitude - reference) <= rel_tol * reference:
            return constant
    return None
