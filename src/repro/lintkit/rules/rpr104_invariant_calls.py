"""RPR104 — loop-invariant pure calls that should be hoisted.

A call executed on every iteration of a hot loop, whose callee is a *pure*
project function (see :mod:`repro.lintkit.semantic.purity`) and whose
arguments never change inside the loop, recomputes the same value each
time. In campaign sweeps the loop body runs tens of thousands of times, so
a loop-invariant ``SimulationOptions(...)`` construction or model-table
rebuild is pure waste.

Precision guards (each one eliminates a class of false positives):

* only **direct statements** of the loop body count — a call under an
  ``if``/``try`` is conditional, and hoisting would change behavior;
* only calls resolved to **project** functions/constructors inferred pure
  — builtins, numpy, and unresolved methods are never flagged;
* constructors are only flagged for **frozen** dataclasses — hoisting a
  mutable object out of a loop aliases one instance across iterations;
* arguments must be simple (names/attributes/constants, no nested calls)
  and must not mention any name bound anywhere inside the loop;
* ``return``/``raise`` statements are exempt (they execute at most once).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..findings import Finding, Severity
from ..semantic.purity import class_constructor_pure
from ..semantic.symbols import module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "InvariantCallRule",
]


def _bound_names(loop: ast.AST) -> Set[str]:
    """Every name bound anywhere inside ``loop`` (targets, walrus, with-as)."""
    bound: Set[str] = set()

    def _collect(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                _collect(element)
        elif isinstance(target, ast.Starred):
            _collect(target.value)

    for node in ast.walk(loop):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                _collect(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            _collect(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            _collect(node.target)
        elif isinstance(node, ast.NamedExpr):
            _collect(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    _collect(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, ast.comprehension):
            _collect(node.target)
    return bound


def _simple_invariant_args(call: ast.Call, bound: Set[str]) -> bool:
    """Whether every argument is loop-invariant and side-effect free."""
    expressions: List[ast.expr] = list(call.args) + [
        keyword.value for keyword in call.keywords
    ]
    for expr in expressions:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Call, ast.Await, ast.NamedExpr)):
                return False
            if isinstance(node, ast.Name) and node.id in bound:
                return False
    return True


@register
class InvariantCallRule(Rule):
    """Flag pure project calls with loop-invariant arguments inside loops."""

    rule_id = "RPR104"
    name = "loop-invariant-call"
    severity = Severity.ERROR
    description = (
        "calls to pure project functions whose arguments do not change "
        "inside the enclosing loop should be hoisted out of it"
    )
    rationale = (
        "A pure call with loop-invariant arguments returns the same "
        "value every iteration; recomputing it inside a sweep multiplies "
        "its cost by the grid size for no change in the answer."
    )
    example_bad = (
        "for config in grid:\n"
        "    bounds = default_bounds_for(evaluator)  # invariant\n"
        "    score(config, bounds)\n"
    )
    example_good = (
        "bounds = default_bounds_for(evaluator)\n"
        "for config in grid:\n"
        "    score(config, bounds)\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        graph = ctx.project.call_graph()
        pure = ctx.project.purity()
        for func in sorted(
            ctx.project.functions.values(), key=lambda f: f.qualname
        ):
            if func.module != module_name:
                continue
            for node in ast.walk(func.node):
                if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    yield from self._check_loop(ctx, node, graph, pure)

    def _check_loop(
        self,
        ctx: FileContext,
        loop: ast.AST,
        graph,
        pure: Set[str],
    ) -> Iterator[Finding]:
        bound = _bound_names(loop)
        for stmt in loop.body:
            if not isinstance(
                stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr)
            ):
                continue  # conditionals/returns/nested loops handled apart
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                site = graph.site_for(node)
                if site is None:
                    continue
                if site.kind == "function":
                    if site.callee not in pure:
                        continue
                    label = site.callee.split(".")[-1]
                else:
                    cls = ctx.project.classes.get(site.callee)
                    if (
                        cls is None
                        or not cls.is_frozen
                        or not class_constructor_pure(
                            ctx.project, site.callee, pure
                        )
                    ):
                        continue
                    label = site.callee.split(".")[-1]
                if not _simple_invariant_args(node, bound):
                    continue
                yield ctx.finding(
                    self,
                    node,
                    f"loop-invariant call to pure {label!r}: arguments "
                    f"never change inside this loop",
                    suggestion="hoist the call above the loop and reuse "
                    "the result",
                )
