"""RPR103 — scalar Python loops over numpy arrays in model/analysis code.

The reproduction's scale target (~50k configurations, ~200M simulated
packets) makes per-element Python iteration over numpy arrays the single
most expensive anti-pattern in the codebase: every element access boxes a
numpy scalar and re-enters the interpreter. Flagged shapes (statement
``for`` loops only — comprehensions over small grids are idiomatic and
exempt):

* ``for x in arr:`` where ``arr`` is known to be an ndarray (including
  slices like ``grid[::-1]`` and fresh results like ``np.unique(bins)``);
* ``for ... in zip(a, b):`` / ``enumerate(a)`` with a known array operand;
* ``for i in range(len(arr)):`` / ``range(arr.size)`` — index-loops;
* per-element writes ``arr[i] = …`` / ``arr[i] += …`` inside a loop whose
  scalar index comes from the loop counter (or ``int(...)`` of it) —
  the accumulate-into-preallocated-array pattern that ``np.add.at`` or a
  list build replaces.

Fix patterns: vectorize (``np.digitize`` + ``np.add.at``, boolean masks),
or accumulate into a Python list and convert once with ``np.asarray``.
Inherently sequential recurrences (state at ``t`` depends on ``t-1``)
should build lists, or suppress with a justification comment.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..findings import Finding, Severity
from ..semantic.arrays import is_array_expr, known_array_names
from ..semantic.symbols import dotted_name, module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "ScalarLoopRule",
]

_SIZE_ATTRS = frozenset({"size", "shape"})


@register
class ScalarLoopRule(Rule):
    """Flag per-element Python iteration and writes over numpy arrays."""

    rule_id = "RPR103"
    name = "scalar-numpy-loop"
    severity = Severity.ERROR
    description = (
        "statement loops must not iterate or index numpy arrays "
        "element-by-element; vectorize or build a list and convert once"
    )
    rationale = (
        "A Python-level loop over a numpy array pays interpreter and "
        "boxing overhead per element — the columnar kernels exist "
        "precisely because the broadcast form of the same computation is "
        "hundreds of times faster on the full grid."
    )
    example_bad = (
        "total = 0.0\n"
        "for value in energy_uj:  # numpy array\n"
        "    total += value\n"
    )
    example_good = (
        "total = float(energy_uj.sum())\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        module = ctx.project.modules.get(module_name)
        if module is None:
            return
        seen = set()
        for func in sorted(
            ctx.project.functions.values(), key=lambda f: f.qualname
        ):
            if func.module != module_name:
                continue
            known = known_array_names(func, ctx.project)
            local_types = ctx.project.local_class_types(func)
            for node in ast.walk(func.node):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    for finding in self._check_loop(
                        ctx, node, known, module_name, local_types
                    ):
                        key = (finding.line, finding.col, finding.message)
                        if key not in seen:
                            seen.add(key)
                            yield finding

    # -- iteration checks ----------------------------------------------
    def _check_loop(
        self,
        ctx: FileContext,
        loop: ast.For,
        known: Set[str],
        module_name: str,
        local_types,
    ) -> Iterator[Finding]:
        def _is_array(expr: ast.expr) -> bool:
            return is_array_expr(
                expr, known, ctx.project, module_name, local_types
            )

        iterated = self._iterated_array(loop.iter, _is_array)
        if iterated is not None:
            yield ctx.finding(
                self,
                loop,
                f"loop iterates numpy array {iterated} element-by-element",
                suggestion="vectorize with numpy ufuncs/masks, or convert "
                "once with .tolist() if a Python-level scan is required",
            )
        index_name = self._range_len_index(loop, _is_array)
        if index_name is not None:
            yield ctx.finding(
                self,
                loop,
                f"loop indexes numpy array via range({index_name})",
                suggestion="vectorize, or iterate the array's .tolist()",
            )
        yield from self._check_element_writes(ctx, loop, _is_array)

    @staticmethod
    def _iterated_array(iterable: ast.expr, _is_array) -> Optional[str]:
        """Describe the array iterated element-wise, if any."""
        if _is_array(iterable):
            dotted = dotted_name(iterable)
            return repr(dotted) if dotted else "expression"
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("zip", "enumerate", "reversed")
        ):
            for arg in iterable.args:
                if _is_array(arg):
                    dotted = dotted_name(arg)
                    label = repr(dotted) if dotted else "expression"
                    return f"{label} (via {iterable.func.id}(...))"
        return None

    @staticmethod
    def _range_len_index(loop: ast.For, _is_array) -> Optional[str]:
        """Detect ``for i in range(len(arr))`` / ``range(arr.size)``."""
        iterable = loop.iter
        if not (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
            and len(iterable.args) == 1
        ):
            return None
        bound = iterable.args[0]
        if (
            isinstance(bound, ast.Call)
            and isinstance(bound.func, ast.Name)
            and bound.func.id == "len"
            and len(bound.args) == 1
            and _is_array(bound.args[0])
        ):
            inner = dotted_name(bound.args[0]) or "..."
            return f"len({inner})"
        if (
            isinstance(bound, ast.Attribute)
            and bound.attr in _SIZE_ATTRS
            and _is_array(bound.value)
        ):
            return f"{dotted_name(bound) or '...'}"
        return None

    # -- element-write checks ------------------------------------------
    def _check_element_writes(
        self, ctx: FileContext, loop: ast.For, _is_array
    ) -> Iterator[Finding]:
        scalar_indices = self._scalar_index_names(loop)
        if not scalar_indices:
            return
        for node in ast.walk(loop):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if not (
                    isinstance(target, ast.Subscript)
                    and _is_array(target.value)
                ):
                    continue
                index = target.slice
                if (
                    isinstance(index, ast.Name)
                    and index.id in scalar_indices
                ):
                    array_label = dotted_name(target.value) or "array"
                    yield ctx.finding(
                        self,
                        node,
                        f"per-element write {array_label}[{index.id}] "
                        f"inside a Python loop",
                        suggestion="vectorize (np.add.at / boolean masks), "
                        "or append to a list and np.asarray once after the "
                        "loop",
                    )

    @staticmethod
    def _scalar_index_names(loop: ast.For) -> Set[str]:
        """Loop counters and ``int(...)``-derived locals bound in the body."""
        names: Set[str] = set()

        def _collect_target(target: ast.expr) -> None:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    _collect_target(element)

        _collect_target(loop.target)
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id == "int"
            ):
                names.add(node.targets[0].id)
        return names
