"""RPR304 — writes into read-only array planes.

``GridEvaluation`` freezes its columns (``flags.writeable = False``) and
``FleetTopology`` freezes its position matrix precisely so shared planes
can be handed to the serve workers and the fleet engine without copies.
A store into one of those buffers raises ``ValueError`` at runtime — but
only on the code path that actually executes the write. The shapes pass
tracks writability (*fresh* / *view* / *readonly*), so the write is
caught statically instead, including:

* direct stores and ``+=`` through a frozen plane or a view of one
  (slices and basic indexing keep the read-only tag);
* numpy mutators (``np.copyto``, ``np.put``, ``np.place``,
  ``np.add.at``-style ``.at`` calls) whose destination is frozen;
* escapes: passing a frozen array to a project helper whose body writes
  through that parameter.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..findings import Finding, Severity
from ..semantic.arrays import numpy_call_tail
from ..semantic.symbols import dotted_name, module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "ReadonlyMutationRule",
]

#: numpy callables that mutate their first argument in place.
_MUTATOR_TAILS = frozenset({"copyto", "put", "place", "putmask", "at"})


@register
class ReadonlyMutationRule(Rule):
    """Flag stores into arrays that flow from frozen producers."""

    rule_id = "RPR304"
    name = "readonly-plane-mutation"
    severity = Severity.ERROR
    description = (
        "arrays flowing from frozen producers (GridEvaluation planes, "
        "setflags(write=False) buffers) must not be written, in place or "
        "through helper calls"
    )
    rationale = (
        "Frozen planes are shared zero-copy across the oracle cache, the "
        "serve workers, and the fleet engine; a write either raises "
        "ValueError on the one path that executes it or — if someone "
        "'fixes' that by unfreezing — corrupts every other reader. "
        "Mutation must happen on a .copy() the writer owns."
    )
    example_bad = (
        "plane = grid_eval.objective_column('energy')\n"
        "plane[bad] = np.inf  # ValueError: read-only plane\n"
    )
    example_good = (
        "plane = grid_eval.objective_column('energy').copy()\n"
        "plane[bad] = np.inf\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        if ctx.project.modules.get(module_name) is None:
            return
        shapes = ctx.project.shapes()
        seen = set()
        for func in sorted(
            ctx.project.functions.values(), key=lambda f: f.qualname
        ):
            if func.module != module_name:
                continue
            env = shapes.env(func)
            local_types = ctx.project.local_class_types(func)
            for node in ast.walk(func.node):
                for finding in self._check_node(
                    ctx, node, shapes, env, func, local_types
                ):
                    key = (finding.line, finding.col, finding.message)
                    if key not in seen:
                        seen.add(key)
                        yield finding

    def _check_node(
        self, ctx: FileContext, node: ast.AST, shapes, env, func, local_types
    ) -> Iterator[Finding]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            label = self._frozen_store_target(
                target, shapes, env, func, local_types,
                augmented=isinstance(node, ast.AugAssign),
            )
            if label is not None:
                yield ctx.finding(
                    self,
                    node,
                    f"write into read-only array {label}",
                    suggestion="copy the plane first (arr = plane.copy()) "
                    "or compute a fresh array instead of mutating the "
                    "shared one",
                )
        if isinstance(node, ast.Call):
            yield from self._check_call(
                ctx, node, shapes, env, func, local_types
            )

    def _frozen_store_target(
        self, target: ast.expr, shapes, env, func, local_types, augmented: bool
    ) -> Optional[str]:
        """Label of the frozen buffer this store writes, if any."""
        if isinstance(target, ast.Subscript):
            base = target.value
            info = shapes.infer(base, env, func, local_types)
            if info is not None and info.is_readonly:
                return repr(dotted_name(base) or "expression")
            return None
        if augmented:
            # ``x += ...`` mutates in place when x is an ndarray.
            name = dotted_name(target)
            info = env.get(name) if name else None
            if info is not None and info.is_readonly:
                return repr(name)
        return None

    def _check_call(
        self, ctx: FileContext, call: ast.Call, shapes, env, func, local_types
    ) -> Iterator[Finding]:
        tail = numpy_call_tail(call)
        if tail in _MUTATOR_TAILS and call.args:
            info = shapes.infer(call.args[0], env, func, local_types)
            if info is not None and info.is_readonly:
                destination = dotted_name(call.args[0]) or "expression"
                yield ctx.finding(
                    self,
                    call,
                    f"np.{tail} writes into read-only array "
                    f"{destination!r}",
                    suggestion="copy the frozen array before mutating it",
                )
            return
        resolved = ctx.project.resolve_call(func.module, call, local_types)
        if resolved is None or resolved[0] != "function":
            return
        callee = ctx.project.functions.get(resolved[1])
        mutated = shapes.mutated_params.get(resolved[1], set())
        if callee is None or not mutated:
            return
        params = callee.callable_params()
        for position, arg in enumerate(call.args):
            if position >= len(params):
                break
            if params[position].name not in mutated:
                continue
            info = shapes.infer(arg, env, func, local_types)
            if info is not None and info.is_readonly:
                yield ctx.finding(
                    self,
                    call,
                    f"read-only array {dotted_name(arg) or 'expression'!r} "
                    f"escapes to {callee.name}(), which writes parameter "
                    f"{params[position].name!r}",
                    suggestion="pass a copy, or make the helper return a "
                    "new array instead of mutating its argument",
                )
        for keyword in call.keywords:
            if keyword.arg not in mutated:
                continue
            info = shapes.infer(keyword.value, env, func, local_types)
            if info is not None and info.is_readonly:
                yield ctx.finding(
                    self,
                    call,
                    f"read-only array "
                    f"{dotted_name(keyword.value) or 'expression'!r} "
                    f"escapes to {callee.name}(), which writes parameter "
                    f"{keyword.arg!r}",
                    suggestion="pass a copy, or make the helper return a "
                    "new array instead of mutating its argument",
                )
