"""RPR205 — blocking-call deadlines: waits on shared state must be bounded.

The serve tier promises backpressure and per-request deadlines, but both
guarantees evaporate the moment any thread blocks forever: a worker stuck
in an untimed ``Condition.wait()`` never re-checks ``_closed``, a
``queue.get()`` without a timeout starves shutdown, and a socket
``recv()`` with no deadline holds a connection slot for as long as the
peer cares to stay silent. Bounding every blocking call is what lets the
surrounding loop notice deadline expiry, shutdown flags, and dead peers.

Flagged, on receivers whose type the concurrency analysis knows
(``self.<attr>`` synchronization attributes, sync-constructor locals, and
module globals like ``_WAKEUP = threading.Event()``):

* ``Condition.wait()`` / ``Condition.wait_for(pred)`` without a timeout —
  the canonical fix is ``wait(timeout=...)`` inside the existing
  re-checking ``while`` loop, which is spurious-wakeup-safe by
  construction;
* ``Event.wait()`` without a timeout;
* ``queue.Queue.get()`` / ``put(item)`` in blocking mode with no
  timeout (``get_nowait``/``put_nowait`` and ``block=False`` are clean,
  as is an explicit positional timeout);
* socket ``accept``/``recv``/``recvfrom``/``recv_into``/``sendall`` on a
  socket that is never given a ``settimeout(...)`` by its owner (the
  whole class is searched for ``self.<sock>.settimeout``, the whole
  function for a local socket).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from ..findings import Finding, Severity
from ..semantic.symbols import FunctionInfo, ProjectIndex, module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "BlockingDeadlineRule",
]

#: Socket methods that block until the peer acts.
_SOCKET_BLOCKERS = frozenset(
    {"accept", "recv", "recvfrom", "recv_into", "sendall", "connect"}
)


@register
class BlockingDeadlineRule(Rule):
    """Flag unbounded waits on conditions, events, queues, and sockets."""

    rule_id = "RPR205"
    name = "blocking-deadlines"
    severity = Severity.WARNING
    description = (
        "condition/event waits, queue get/put, and socket operations "
        "must carry a timeout so shutdown and deadlines cannot be starved"
    )
    rationale = (
        "Deadline and backpressure guarantees hold only while every "
        "thread re-checks them; one untimed wait() is a thread that "
        "sleeps through shutdown and deadline expiry alike. A bounded "
        "wait inside the usual re-checking while loop costs one wakeup "
        "per interval and is already spurious-wakeup-safe."
    )
    example_bad = (
        "def _take(self):\n"
        "    with self._not_empty:\n"
        "        while not self._queue and not self._closed:\n"
        "            self._not_empty.wait()  # sleeps through close()\n"
    )
    example_good = (
        "def _take(self):\n"
        "    with self._not_empty:\n"
        "        while not self._queue and not self._closed:\n"
        "            self._not_empty.wait(timeout=_WAKE_INTERVAL_S)\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        module = ctx.project.modules.get(module_name)
        if module is None:
            return
        conc = ctx.project.concurrency()
        for func in sorted(
            ctx.project.functions.values(), key=lambda f: f.qualname
        ):
            if func.module != module_name:
                continue
            yield from self._check_function(ctx, module, func, conc)

    # ------------------------------------------------------------------
    def _check_function(
        self, ctx: FileContext, module, func: FunctionInfo, conc
    ) -> Iterator[Finding]:
        locals_sync = conc.local_bindings(module, func.node)
        globals_sync = conc.module_sync.get(module.name, {})
        cc = (
            conc.classes.get(func.class_qualname)
            if func.class_qualname
            else None
        )
        receiver = (
            func.params[0].name
            if func.is_method and not func.is_static and func.params
            else None
        )

        def kind_of(expr: ast.expr) -> Optional[str]:
            if isinstance(expr, ast.Name):
                return locals_sync.get(expr.id) or globals_sync.get(expr.id)
            if (
                cc is not None
                and receiver is not None
                and isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == receiver
            ):
                attr = expr.attr
                if attr in cc.conditions:
                    return "condition"
                if attr in cc.events:
                    return "event"
                if attr in cc.queues:
                    return "queue"
                if attr in cc.sockets:
                    return "socket"
            return None

        for node in ProjectIndex._walk_body(func.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            kind = kind_of(node.func.value)
            if kind is None:
                continue
            method = node.func.attr
            if kind in ("condition", "event") and method in (
                "wait",
                "wait_for",
            ):
                if kind == "event" and method == "wait_for":
                    continue
                if not self._wait_has_timeout(node, method):
                    yield ctx.finding(
                        self,
                        node,
                        f"untimed {kind} {method}() blocks forever; "
                        f"shutdown and deadline checks never run",
                        suggestion="pass timeout=... and re-check the "
                        "condition in the surrounding while loop",
                    )
            elif kind == "queue" and method in ("get", "put"):
                if not self._queue_op_bounded(node, method):
                    yield ctx.finding(
                        self,
                        node,
                        f"blocking queue {method}() without a timeout can "
                        f"starve shutdown and backpressure deadlines",
                        suggestion="pass timeout=... (handling Empty/Full) "
                        f"or use {method}_nowait()",
                    )
            elif kind == "socket" and method in _SOCKET_BLOCKERS:
                if not self._socket_has_deadline(
                    ctx, func, node.func.value, locals_sync
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"socket {method}() on a socket with no "
                        f"settimeout(); a silent peer holds this thread "
                        f"forever",
                        suggestion="call settimeout(...) on the socket "
                        "before blocking on it",
                    )

    # ------------------------------------------------------------------
    @staticmethod
    def _wait_has_timeout(call: ast.Call, method: str) -> bool:
        """Whether ``wait``/``wait_for`` carries a timeout argument.

        ``wait(timeout)`` takes it as the first positional argument,
        ``wait_for(predicate, timeout)`` as the second; an explicit
        ``timeout=None`` keyword is still unbounded and stays flagged.
        """
        positional_slot = 0 if method == "wait" else 1
        if len(call.args) > positional_slot:
            return True
        for keyword in call.keywords:
            if keyword.arg == "timeout":
                return not (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                )
        return False

    @staticmethod
    def _queue_op_bounded(call: ast.Call, method: str) -> bool:
        """Whether a queue ``get``/``put`` cannot block forever.

        Clean when a timeout is given (keyword or positional:
        ``get(block, timeout)`` / ``put(item, block, timeout)``) or when
        ``block=False`` makes the call non-blocking.
        """
        timeout_slot = 1 if method == "get" else 2
        if len(call.args) > timeout_slot:
            return True
        for keyword in call.keywords:
            if keyword.arg == "timeout" and not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            ):
                return True
            if keyword.arg == "block" and (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            ):
                return True
        block_slot = 0 if method == "get" else 1
        if len(call.args) > block_slot:
            block = call.args[block_slot]
            if isinstance(block, ast.Constant) and block.value is False:
                return True
        return False

    def _socket_has_deadline(
        self,
        ctx: FileContext,
        func: FunctionInfo,
        receiver_expr: ast.expr,
        locals_sync: Dict[str, str],
    ) -> bool:
        """Whether the blocked-on socket is ever given a ``settimeout``.

        A local socket is searched for within the function; a
        ``self.<attr>`` socket anywhere in its owning class, since the
        deadline is usually set once at connect time.
        """
        if isinstance(receiver_expr, ast.Name):
            return self._calls_settimeout(func.node, receiver_expr.id, None)
        if isinstance(receiver_expr, ast.Attribute) and isinstance(
            receiver_expr.value, ast.Name
        ):
            cls = (
                ctx.project.classes.get(func.class_qualname)
                if func.class_qualname
                else None
            )
            if cls is None:
                return False
            return any(
                self._calls_settimeout(
                    method.node, receiver_expr.value.id, receiver_expr.attr
                )
                for method in cls.methods.values()
            )
        return False

    @staticmethod
    def _calls_settimeout(
        func_node: ast.AST, base: str, attr: Optional[str]
    ) -> bool:
        for node in ProjectIndex._walk_body(func_node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "settimeout"
            ):
                continue
            target = node.func.value
            if attr is None:
                if isinstance(target, ast.Name) and target.id == base:
                    return True
            elif (
                isinstance(target, ast.Attribute)
                and target.attr == attr
                and isinstance(target.value, ast.Name)
                and target.value.id == base
            ):
                return True
        return False
