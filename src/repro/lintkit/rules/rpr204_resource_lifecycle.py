"""RPR204 — resource lifecycle: every acquired OS resource has an owner
that provably releases it.

Files, sockets, process pools, and executors are not garbage-collected
resources in any sense that matters for a long-running serve tier: a
leaked file descriptor per request is an ``EMFILE`` crash at production
traffic, and an unclosed pool leaves zombie workers. The checkpoint
writers in ``campaign.checkpoint`` (append + fsync per batch) are the
motivating case — a dropped handle there loses the very durability the
fsync was buying.

A resource acquisition is clean when:

* it is the context expression of a ``with`` item (``with open(p) as f:``
  or ``with ctx.Pool(...) as pool:``);
* it is bound to a local that is later entered via ``with name:``;
* it is bound to a local that is released by a close-like call inside a
  ``try/finally`` ``finally:`` block;
* ownership escapes the function — the local is returned, yielded,
  passed to another call, stored into a container or attribute, so the
  caller is responsible;
* it is returned directly (``return open(p)``) — caller owns it;
* it is stored on ``self`` and a close-like call on that attribute is
  reachable from one of the owner class's own release methods
  (``close``/``__exit__``/``shutdown``/``stop``/``terminate``/
  ``server_close``), directly or through same-class helpers.

Everything else is flagged — including a bare ``close()`` on the main
path, which leaks on every exception raised between acquisition and
close.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..findings import Finding, Severity
from ..semantic.concurrency import absolute_name
from ..semantic.symbols import (
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    dotted_name,
    module_name_for,
)
from .base import FileContext, Rule, register

__all__ = [
    "ResourceLifecycleRule",
]

#: Direct calls that acquire a releasable OS resource → short label.
_RESOURCE_CONSTRUCTORS: Dict[str, str] = {
    "open": "file",
    "io.open": "file",
    "gzip.open": "file",
    "bz2.open": "file",
    "tempfile.TemporaryFile": "file",
    "tempfile.NamedTemporaryFile": "file",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "subprocess.Popen": "process",
    "multiprocessing.Pool": "pool",
    "multiprocessing.pool.Pool": "pool",
    "concurrent.futures.ThreadPoolExecutor": "executor",
    "concurrent.futures.ProcessPoolExecutor": "executor",
}

#: Method calls that release a resource.
_CLOSERS = frozenset(
    {
        "close", "shutdown", "terminate", "server_close", "release",
        "kill", "stop", "disconnect", "join", "__exit__",
    }
)

#: Class methods a resource-owning class is expected to release from.
_OWNER_RELEASE_METHODS = frozenset(
    {
        "close", "__exit__", "__del__", "shutdown", "stop", "terminate",
        "server_close",
    }
)


@register
class ResourceLifecycleRule(Rule):
    """Flag acquired files/sockets/pools/executors without a release path."""

    rule_id = "RPR204"
    name = "resource-lifecycle"
    severity = Severity.ERROR
    description = (
        "files, sockets, pools, and executors must be released via with, "
        "try/finally, or a close() reachable from the owner's close()"
    )
    rationale = (
        "A leaked descriptor or worker pool survives the request that "
        "created it; at serving rates that is resource exhaustion, and "
        "for fsync'd checkpoint writers it silently voids the durability "
        "guarantee. A close() only on the happy path still leaks on every "
        "exception in between."
    )
    example_bad = (
        "def dump(path, rows):\n"
        "    fh = open(path, 'w')\n"
        "    for row in rows:\n"
        "        fh.write(row)  # any exception here leaks fh\n"
        "    fh.close()\n"
    )
    example_good = (
        "def dump(path, rows):\n"
        "    with open(path, 'w') as fh:\n"
        "        for row in rows:\n"
        "            fh.write(row)\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        module = ctx.project.modules.get(module_name)
        if module is None:
            return
        for func in sorted(
            ctx.project.functions.values(), key=lambda f: f.qualname
        ):
            if func.module != module_name:
                continue
            yield from self._check_function(ctx, module, func)

    # ------------------------------------------------------------------
    def _check_function(
        self, ctx: FileContext, module, func: FunctionInfo
    ) -> Iterator[Finding]:
        ctx_locals = self._context_locals(module, func.node)
        parents = self._parent_map(func.node)
        for node in ProjectIndex._walk_body(func.node):
            if not isinstance(node, ast.Call):
                continue
            label = self._resource_label(module, node, ctx_locals)
            if label is None:
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.withitem):
                continue  # with open(...) as f: — the sanctioned form
            if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                continue  # ownership transfers to the caller
            if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                target = parent.targets[0]
                if isinstance(target, ast.Name):
                    if self._local_released(func.node, target.id):
                        continue
                    yield self._finding(ctx, node, label, target.id)
                    continue
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                ):
                    if self._owner_releases(ctx, func, target.attr):
                        continue
                    yield ctx.finding(
                        self,
                        node,
                        f"{label} stored on self.{target.attr} has no "
                        f"release path from the owner's close()/__exit__",
                        suggestion="close it from the owning class's "
                        "close() (or __exit__), directly or via a helper "
                        "it calls",
                    )
                    continue
            yield self._finding(ctx, node, label, None)

    def _finding(
        self, ctx: FileContext, node: ast.AST, label: str, name: Optional[str]
    ) -> Finding:
        where = f" bound to {name!r}" if name else ""
        return ctx.finding(
            self,
            node,
            f"{label} acquired here{where} is not reliably released "
            f"(no with, no finally, no ownership transfer)",
            suggestion="use `with`, or close it in a `finally:` block",
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _context_locals(module, func_node: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ProjectIndex._walk_body(func_node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                dotted = dotted_name(node.value.func)
                if (
                    dotted is not None
                    and absolute_name(module, dotted)
                    == "multiprocessing.get_context"
                ):
                    names.add(node.targets[0].id)
        return names

    @staticmethod
    def _resource_label(
        module, call: ast.Call, ctx_locals: Set[str]
    ) -> Optional[str]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ctx_locals
            and func.attr == "Pool"
        ):
            return "pool"
        dotted = dotted_name(func)
        if dotted is not None:
            label = _RESOURCE_CONSTRUCTORS.get(absolute_name(module, dotted))
            if label is not None:
                return label
        if isinstance(func, ast.Attribute) and func.attr == "open":
            return "file"  # path.open(...), Path(p).open(...)
        return None

    @staticmethod
    def _parent_map(func_node: ast.AST) -> Dict[int, ast.AST]:
        parents: Dict[int, ast.AST] = {}
        for node in ProjectIndex._walk_body(func_node):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        for child in ast.iter_child_nodes(func_node):
            parents.setdefault(id(child), func_node)
        return parents

    # ------------------------------------------------------------------
    def _local_released(self, func_node: ast.AST, name: str) -> bool:
        """Whether local ``name`` is with-entered, finally-closed, or escapes."""
        for node in ProjectIndex._walk_body(func_node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == name:
                        return True
                    # ``with contextlib.closing(x):`` and friends
                    if isinstance(expr, ast.Call) and any(
                        isinstance(arg, ast.Name) and arg.id == name
                        for arg in expr.args
                    ):
                        return True
            elif isinstance(node, ast.Try):
                if self._block_closes(node.finalbody, name):
                    return True
            elif isinstance(node, ast.Return) and node.value is not None:
                if self._mentions(node.value, name):
                    return True
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None and self._mentions(
                    node.value, name
                ):
                    return True
            elif isinstance(node, ast.Assign):
                # stored into an attribute/container/other name: escapes
                if self._mentions(node.value, name) and not (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and isinstance(node.value.func.value, ast.Name)
                    and node.value.func.value.id == name
                ):
                    return True
            elif isinstance(node, ast.Call):
                # passed to another function (not a method of itself):
                # ownership is transferred or shared — out of scope here.
                if any(
                    self._mentions(arg, name)
                    for arg in list(node.args)
                    + [kw.value for kw in node.keywords]
                ):
                    return True
        return False

    @staticmethod
    def _block_closes(stmts: List[ast.stmt], name: str) -> bool:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CLOSERS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                ):
                    return True
        return False

    @staticmethod
    def _mentions(expr: ast.expr, name: str) -> bool:
        return any(
            isinstance(node, ast.Name) and node.id == name
            for node in ast.walk(expr)
        )

    # ------------------------------------------------------------------
    def _owner_releases(
        self, ctx: FileContext, func: FunctionInfo, attr: str
    ) -> bool:
        """Whether ``self.<attr>`` is closed from the class's release path."""
        if func.class_qualname is None:
            return False
        cls = ctx.project.classes.get(func.class_qualname)
        if cls is None:
            return False
        receiver = (
            func.params[0].name
            if not func.is_static and func.params
            else "self"
        )
        reachable = self._release_reachable_methods(cls)
        for method_name in reachable:
            method = cls.methods.get(method_name)
            if method is None:
                continue
            for node in ProjectIndex._walk_body(method.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CLOSERS
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr == attr
                    and isinstance(node.func.value.value, ast.Name)
                ):
                    return True
        return False

    @staticmethod
    def _release_reachable_methods(cls: ClassInfo) -> Set[str]:
        """Class methods reachable from the release entry points via self."""
        reachable: Set[str] = {
            name for name in cls.methods if name in _OWNER_RELEASE_METHODS
        }
        frontier = list(reachable)
        while frontier:
            current = cls.methods.get(frontier.pop())
            if current is None:
                continue
            for node in ProjectIndex._walk_body(current.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.attr in cls.methods
                    and node.func.attr not in reachable
                ):
                    reachable.add(node.func.attr)
                    frontier.append(node.func.attr)
        return reachable
