"""RPR004 — exception discipline.

Everything the library raises must derive from :class:`repro.errors.ReproError`
so applications can catch library failures with one handler (the contract
documented in ``errors.py`` and pinned by ``tests/test_errors.py``). A bare
``raise ValueError(...)`` silently escapes that net.

The allowed class names are read statically from ``errors.py`` — adding a
new subclass there automatically teaches the rule about it. A small set of
structural builtins (``NotImplementedError`` for abstract methods,
``StopIteration``, ``SystemExit``) stays permitted, and raises of
unresolvable expressions (``raise exc``) are ignored: the rule only judges
names it can prove are builtin exception types.
"""

from __future__ import annotations

import ast
import builtins
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, Optional

from ..findings import Finding, Severity
from .base import FileContext, Rule, package_root, register

__all__ = [
    "ALLOWED_BUILTINS",
    "repro_error_names",
    "ExceptionDisciplineRule",
]

#: Builtin exceptions that remain legitimate to raise directly.
ALLOWED_BUILTINS: FrozenSet[str] = frozenset(
    {
        "NotImplementedError",
        "StopIteration",
        "StopAsyncIteration",
        "SystemExit",
        "KeyboardInterrupt",
    }
)

_BUILTIN_EXCEPTIONS: FrozenSet[str] = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

_CACHE: Dict[Path, FrozenSet[str]] = {}


def repro_error_names(root: Path) -> FrozenSet[str]:
    """Class names defined in the package's ``errors.py`` (cached)."""
    root = root.resolve()
    if root not in _CACHE:
        errors_path = root / "errors.py"
        names = set()
        if errors_path.is_file():
            tree = ast.parse(errors_path.read_text(encoding="utf-8"))
            names = {
                stmt.name
                for stmt in tree.body
                if isinstance(stmt, ast.ClassDef)
            }
        _CACHE[root] = frozenset(names)
    return _CACHE[root]


def _raised_name(node: ast.Raise) -> Optional[str]:
    target = node.exc
    if isinstance(target, ast.Call):
        target = target.func
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


@register
class ExceptionDisciplineRule(Rule):
    """Require every ``raise`` to use a ReproError subclass."""

    rule_id = "RPR004"
    name = "exception-discipline"
    severity = Severity.ERROR
    description = (
        "raise statements must use a ReproError subclass from errors.py, "
        "not bare builtins like ValueError/TypeError/RuntimeError"
    )
    rationale = (
        "Callers (the CLI, the serve tier) catch ReproError to separate "
        "domain failures from bugs; a bare ValueError either escapes as "
        "a 500 or forces except-everything handlers. The hierarchy keeps "
        "ValueError in the MRO for stdlib compatibility."
    )
    example_bad = (
        "def check_power(level):\n"
        "    if not 3 <= level <= 31:\n"
        "        raise ValueError(f'bad power level {level}')\n"
    )
    example_good = (
        "from repro.errors import ConfigurationError\n"
        "def check_power(level):\n"
        "    if not 3 <= level <= 31:\n"
        "        raise ConfigurationError(f'bad power level {level}')\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allowed = repro_error_names(package_root()) | ALLOWED_BUILTINS
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = _raised_name(node)
            if name is None or name in allowed:
                continue
            if name in _BUILTIN_EXCEPTIONS:
                yield ctx.finding(
                    self,
                    node,
                    f"raise of builtin {name!r} escapes the ReproError "
                    f"hierarchy",
                    suggestion="raise the matching ReproError subclass "
                    "(repro.errors); subclass ValueError there if callers "
                    "rely on it",
                )
