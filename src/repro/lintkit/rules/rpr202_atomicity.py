"""RPR202 — atomicity: check-then-act split across lock releases, and
unprotected read-modify-write on guarded attributes.

Taking the right lock is not enough if the *decision* and the *action*
happen in different critical sections. ``if key in self._table: ...``
under one ``with self._lock:`` followed by ``self._table[key] = value``
under a second one lets another thread change the table in the gap — the
classic lost-update on the oracle's precomputed-table install. Likewise
``self._hits += 1`` without the lock is a read-modify-write that loses
increments under contention even though single opcodes look atomic.

Two detections, both over the per-method access stream produced by
:mod:`repro.lintkit.semantic.concurrency`:

* **split check-then-act** — a locked write of a guarded attribute in
  scope *j*, preceded by a locked read of the same attribute in a
  *different* scope *i*, with no re-read inside *j* before the write.
  Re-checking inside the acting scope (double-checked install) is the
  sanctioned fix and is recognized as clean;
* **unlocked RMW** — ``+=``-style augmented assignment of a guarded
  attribute outside every lock scope (unless the method is a lock-scope
  extension — see RPR201's helper escape).
"""

from __future__ import annotations

from typing import Iterator, List

from ..findings import Finding, Severity
from ..semantic.concurrency import (
    INIT_METHODS,
    WRITE_KINDS,
    AttrAccess,
    MethodSummary,
)
from ..semantic.symbols import module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "AtomicityRule",
]

#: Access kinds that count as "observing" an attribute for re-check
#: purposes (an augmented assignment reads before it writes).
_READ_KINDS = frozenset({"read", "augwrite"})


@register
class AtomicityRule(Rule):
    """Flag non-atomic check-then-act and unlocked read-modify-write."""

    rule_id = "RPR202"
    name = "atomicity"
    severity = Severity.ERROR
    description = (
        "check-then-act on guarded state must not span lock releases, "
        "and read-modify-write of guarded attributes must hold the lock"
    )
    rationale = (
        "A decision made under one lock acquisition is stale by the time "
        "a second acquisition acts on it; and `x += 1` is a read plus a "
        "write, so without the lock concurrent increments overwrite each "
        "other. Both lose updates only under contention, which is why "
        "they survive single-threaded tests."
    )
    example_bad = (
        "def install(self, key, value):\n"
        "    with self._lock:\n"
        "        if key in self._table:\n"
        "            return\n"
        "    value = expensive_build(key)\n"
        "    with self._lock:\n"
        "        self._table[key] = value  # raced: no re-check\n"
    )
    example_good = (
        "def install(self, key, value):\n"
        "    with self._lock:\n"
        "        if key in self._table:\n"
        "            return\n"
        "    value = expensive_build(key)\n"
        "    with self._lock:\n"
        "        if key not in self._table:  # double-checked install\n"
        "            self._table[key] = value\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        module = ctx.project.modules.get(module_name)
        if module is None:
            return
        conc = ctx.project.concurrency()
        for class_name in sorted(module.classes):
            cls = module.classes[class_name]
            cc = conc.classes.get(cls.qualname)
            if cc is None or not cc.locks or not cc.guarded:
                continue
            for method_name in sorted(cc.methods):
                summary = cc.methods[method_name]
                if summary.name in INIT_METHODS:
                    continue
                yield from self._check_unlocked_rmw(ctx, cc, summary)
                yield from self._check_split_check_act(ctx, cls.name, cc, summary)

    def _check_unlocked_rmw(
        self, ctx: FileContext, cc, summary: MethodSummary
    ) -> Iterator[Finding]:
        conc = ctx.project.concurrency()
        for access in summary.accesses:
            if (
                access.kind == "augwrite"
                and access.lock is None
                and access.attr in cc.guarded
            ):
                if conc.always_called_locked(
                    ctx.project, cc, summary.qualname
                ):
                    continue
                lock = sorted(cc.guarded[access.attr])[0]
                yield ctx.finding(
                    self,
                    access.node,
                    f"read-modify-write of guarded {access.attr!r} outside "
                    f"a lock scope loses updates under contention",
                    suggestion=f"perform the update inside "
                    f"`with self.{lock}:`",
                )

    def _check_split_check_act(
        self, ctx: FileContext, class_name: str, cc, summary: MethodSummary
    ) -> Iterator[Finding]:
        for attr in sorted(cc.guarded):
            accesses: List[AttrAccess] = [
                a for a in summary.accesses if a.attr == attr
            ]
            locked_writes = [
                a
                for a in accesses
                if a.kind in WRITE_KINDS and a.scope is not None
            ]
            locked_reads = [
                a
                for a in accesses
                if a.kind in _READ_KINDS and a.scope is not None
            ]
            for write in locked_writes:
                line = getattr(write.node, "lineno", 0)
                checked_elsewhere = any(
                    read.scope != write.scope
                    and getattr(read.node, "lineno", 0) < line
                    for read in locked_reads
                )
                rechecked_here = any(
                    read.scope == write.scope
                    and getattr(read.node, "lineno", 0) <= line
                    for read in locked_reads
                )
                if checked_elsewhere and not rechecked_here:
                    yield ctx.finding(
                        self,
                        write.node,
                        f"write to {class_name}.{attr} acts on a check made "
                        f"under an earlier lock acquisition; the state may "
                        f"have changed in between",
                        suggestion="re-check the condition inside this lock "
                        "scope (double-checked install) or hold the lock "
                        "across check and act",
                    )
