"""RPR001 — unit-suffix discipline.

The library's dimensional convention (see ``repro.units``) is carried in
identifier suffixes: ``_s``/``_ms``/``_us`` for time, ``_dbm``/``_db``/
``_mw``/``_w`` for power, ``_bytes``/``_bits`` for data, and so on. This
rule flags:

* additive arithmetic (``+``/``-``) or comparisons whose two operands carry
  conflicting unit suffixes — either different scales of the same dimension
  (``t_ms + d_s``) or different dimensions outright (``t_s > n_bytes``).
  Multiplication and division are exempt (they *produce* new units), and the
  log-domain pair ``_db``/``_dbm`` is explicitly allowed because adding a dB
  gain to a dBm power is how link budgets work;
* public module-level functions taking a ``float`` parameter whose name
  names a physical quantity (``delay``, ``power``, ``distance``, ...) but
  carries no recognized unit suffix — the reader cannot know whether a bare
  ``timeout`` is seconds or milliseconds.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Tuple

from ..findings import Finding, Severity
from ..semantic.units import (  # noqa: F401  (re-exported: historical home)
    ALLOWED_MIXES,
    UNIT_DIMENSIONS,
    conflict_description,
    has_unit_suffix,
    unit_suffix,
)
from .base import FileContext, Rule, register

__all__ = [
    "UNIT_DIMENSIONS",
    "ALLOWED_MIXES",
    "QUANTITY_STEMS",
    "unit_suffix",
    "has_unit_suffix",
    "UnitSuffixRule",
]

#: Name fragments that denote a dimensioned physical quantity. A public
#: ``float`` parameter containing one of these must carry a unit suffix.
QUANTITY_STEMS: FrozenSet[str] = frozenset(
    {
        "time",
        "delay",
        "duration",
        "timeout",
        "power",
        "distance",
        "rate",
        "energy",
        "bandwidth",
        "backoff",
        "period",
        "interval",
        "frequency",
        "rssi",
        "snr",
        "noise",
        "current",
        "voltage",
        "temperature",
    }
)


def _operand_suffix(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return unit_suffix(node.id)
    if isinstance(node, ast.Attribute):
        return unit_suffix(node.attr)
    return None


def _is_float_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "float"
    if isinstance(annotation, ast.Constant):
        return annotation.value == "float"
    return False


@register
class UnitSuffixRule(Rule):
    """Flag arithmetic across conflicting unit suffixes and unitless params."""

    rule_id = "RPR001"
    name = "unit-suffix-discipline"
    severity = Severity.ERROR
    description = (
        "additive arithmetic/comparison must not mix identifiers with "
        "conflicting unit suffixes, and public float parameters naming a "
        "physical quantity must carry a unit suffix"
    )
    rationale = (
        "The paper's models mix dBm, mW, ms, and bytes; adding a _ms "
        "quantity to a _s one is silently wrong by 1000x. Suffixes make "
        "the unit part of the name so the mismatch is visible to both "
        "readers and this lint."
    )
    example_bad = (
        "def total_delay(t_pkt_ms, backoff_s):\n"
        "    return t_pkt_ms + backoff_s  # ms + s\n"
    )
    example_good = (
        "def total_delay(t_pkt_ms, backoff_ms):\n"
        "    return t_pkt_ms + backoff_ms\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(ctx, node, node.left, node.right)
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    # Membership/identity tests compare against containers
                    # and sentinels, not quantities of the same dimension.
                    if isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)):
                        continue
                    yield from self._check_pair(ctx, node, left, right)
        for func in ctx.tree.body:
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not func.name.startswith("_"):
                    yield from self._check_parameters(ctx, func)

    def _check_pair(
        self,
        ctx: FileContext,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
    ) -> Iterator[Finding]:
        suffix_left = _operand_suffix(left)
        suffix_right = _operand_suffix(right)
        if suffix_left is None or suffix_right is None:
            return
        conflict = conflict_description(suffix_left, suffix_right)
        if conflict is not None:
            yield ctx.finding(
                self,
                node,
                f"unit conflict: expression {conflict}",
                suggestion="convert one operand (see repro.units) so both "
                "sides share a suffix",
            )

    def _check_parameters(
        self, ctx: FileContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        args: Tuple[ast.arg, ...] = tuple(
            list(func.args.posonlyargs)
            + list(func.args.args)
            + list(func.args.kwonlyargs)
        )
        for arg in args:
            if arg.arg in ("self", "cls") or arg.arg.startswith("_"):
                continue
            if not _is_float_annotation(arg.annotation):
                continue
            if has_unit_suffix(arg.arg):
                continue
            tokens = set(arg.arg.lower().split("_"))
            stems = tokens & QUANTITY_STEMS
            if stems:
                stem = sorted(stems)[0]
                yield ctx.finding(
                    self,
                    arg,
                    f"float parameter {arg.arg!r} of public function "
                    f"{func.name!r} names a physical quantity ({stem}) but "
                    f"has no unit suffix",
                    suggestion="rename with the unit it carries, "
                    "e.g. _s, _ms, _dbm, _bytes",
                )
