"""RPR001 — unit-suffix discipline.

The library's dimensional convention (see ``repro.units``) is carried in
identifier suffixes: ``_s``/``_ms``/``_us`` for time, ``_dbm``/``_db``/
``_mw``/``_w`` for power, ``_bytes``/``_bits`` for data, and so on. This
rule flags:

* additive arithmetic (``+``/``-``) or comparisons whose two operands carry
  conflicting unit suffixes — either different scales of the same dimension
  (``t_ms + d_s``) or different dimensions outright (``t_s > n_bytes``).
  Multiplication and division are exempt (they *produce* new units), and the
  log-domain pair ``_db``/``_dbm`` is explicitly allowed because adding a dB
  gain to a dBm power is how link budgets work;
* public module-level functions taking a ``float`` parameter whose name
  names a physical quantity (``delay``, ``power``, ``distance``, ...) but
  carries no recognized unit suffix — the reader cannot know whether a bare
  ``timeout`` is seconds or milliseconds.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Tuple

from ..findings import Finding, Severity
from .base import FileContext, Rule, register

__all__ = [
    "UNIT_DIMENSIONS",
    "ALLOWED_MIXES",
    "QUANTITY_STEMS",
    "unit_suffix",
    "has_unit_suffix",
    "UnitSuffixRule",
]

#: Recognized unit suffix -> physical dimension.
UNIT_DIMENSIONS = {
    "s": "time",
    "ms": "time",
    "us": "time",
    "ns": "time",
    "dbm": "power",
    "db": "power",
    "mw": "power",
    "w": "power",
    "bytes": "data",
    "bits": "data",
    "bps": "rate",
    "kbps": "rate",
    "j": "energy",
    "uj": "energy",
    "mj": "energy",
    "hz": "frequency",
    "khz": "frequency",
    "mhz": "frequency",
    "m": "length",
    "km": "length",
    "v": "voltage",
    "a": "current",
    "ma": "current",
    "k": "temperature",
}

#: Unit pairs that may legitimately mix in additive arithmetic: dB ratios
#: compose with dBm absolute powers in the log domain.
ALLOWED_MIXES: FrozenSet[FrozenSet[str]] = frozenset(
    {frozenset({"db", "dbm"})}
)

#: Name fragments that denote a dimensioned physical quantity. A public
#: ``float`` parameter containing one of these must carry a unit suffix.
QUANTITY_STEMS: FrozenSet[str] = frozenset(
    {
        "time",
        "delay",
        "duration",
        "timeout",
        "power",
        "distance",
        "rate",
        "energy",
        "bandwidth",
        "backoff",
        "period",
        "interval",
        "frequency",
        "rssi",
        "snr",
        "noise",
        "current",
        "voltage",
        "temperature",
    }
)


def unit_suffix(identifier: str) -> Optional[str]:
    """The recognized plain unit suffix of ``identifier``, if it has one.

    Only multi-token names qualify (``t_ms`` yes, a bare loop variable
    ``s`` no), so short mathematical names are never misread as units.
    Compound per-unit names (``..._uj_per_bit``) return ``None`` here —
    they carry a unit but do not participate in plain-suffix conflict
    checks; see :func:`has_unit_suffix`.
    """
    parts = identifier.lower().split("_")
    if len(parts) < 2:
        return None
    suffix = parts[-1]
    return suffix if suffix in UNIT_DIMENSIONS else None


def has_unit_suffix(identifier: str) -> bool:
    """Whether ``identifier`` carries a plain or compound unit suffix.

    Compound form: ``<unit>_per_<anything>`` (``energy_uj_per_bit``,
    ``cost_j_per_k``).
    """
    if unit_suffix(identifier) is not None:
        return True
    parts = identifier.lower().split("_")
    return (
        len(parts) >= 3
        and parts[-2] == "per"
        and parts[-3] in UNIT_DIMENSIONS
    )


def _operand_suffix(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return unit_suffix(node.id)
    if isinstance(node, ast.Attribute):
        return unit_suffix(node.attr)
    return None


def _conflict(left: str, right: str) -> Optional[str]:
    """A human-readable description of the unit conflict, or ``None``."""
    if left == right:
        return None
    if frozenset({left, right}) in ALLOWED_MIXES:
        return None
    dim_left = UNIT_DIMENSIONS[left]
    dim_right = UNIT_DIMENSIONS[right]
    if dim_left == dim_right:
        return f"mixes {dim_left} scales _{left} and _{right}"
    return f"mixes dimensions {dim_left} (_{left}) and {dim_right} (_{right})"


def _is_float_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "float"
    if isinstance(annotation, ast.Constant):
        return annotation.value == "float"
    return False


@register
class UnitSuffixRule(Rule):
    """Flag arithmetic across conflicting unit suffixes and unitless params."""

    rule_id = "RPR001"
    name = "unit-suffix-discipline"
    severity = Severity.ERROR
    description = (
        "additive arithmetic/comparison must not mix identifiers with "
        "conflicting unit suffixes, and public float parameters naming a "
        "physical quantity must carry a unit suffix"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(ctx, node, node.left, node.right)
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    # Membership/identity tests compare against containers
                    # and sentinels, not quantities of the same dimension.
                    if isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)):
                        continue
                    yield from self._check_pair(ctx, node, left, right)
        for func in ctx.tree.body:
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not func.name.startswith("_"):
                    yield from self._check_parameters(ctx, func)

    def _check_pair(
        self,
        ctx: FileContext,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
    ) -> Iterator[Finding]:
        suffix_left = _operand_suffix(left)
        suffix_right = _operand_suffix(right)
        if suffix_left is None or suffix_right is None:
            return
        conflict = _conflict(suffix_left, suffix_right)
        if conflict is not None:
            yield ctx.finding(
                self,
                node,
                f"unit conflict: expression {conflict}",
                suggestion="convert one operand (see repro.units) so both "
                "sides share a suffix",
            )

    def _check_parameters(
        self, ctx: FileContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        args: Tuple[ast.arg, ...] = tuple(
            list(func.args.posonlyargs)
            + list(func.args.args)
            + list(func.args.kwonlyargs)
        )
        for arg in args:
            if arg.arg in ("self", "cls") or arg.arg.startswith("_"):
                continue
            if not _is_float_annotation(arg.annotation):
                continue
            if has_unit_suffix(arg.arg):
                continue
            tokens = set(arg.arg.lower().split("_"))
            stems = tokens & QUANTITY_STEMS
            if stems:
                stem = sorted(stems)[0]
                yield ctx.finding(
                    self,
                    arg,
                    f"float parameter {arg.arg!r} of public function "
                    f"{func.name!r} names a physical quantity ({stem}) but "
                    f"has no unit suffix",
                    suggestion="rename with the unit it carries, "
                    "e.g. _s, _ms, _dbm, _bytes",
                )
