"""RPR102 — determinism taint: stochastic functions must thread their rng.

The campaign layer's bit-identical-replay guarantee holds only if every
function between an entry point and a random draw lets the caller control
the seed. RPR002 catches ambient randomness *syntactically* (global numpy
API, wall clocks); this rule works on the project call graph instead and
flags:

* any function that **transitively** reaches a random draw but has no
  ``rng``/seed-ish parameter, no carrier-typed parameter (a class that
  stores a seed or generator, e.g. ``SimulationOptions``, ``RngStreams``),
  and is not a method of such a carrier class;
* constructing a generator with a fixed or absent seed
  (``default_rng()``, ``RngStreams(42)``) regardless of signature;
* drawing from an ambient (module-level) generator.

Deliberately *not* flagged: generators seeded from the function's own
arguments (``default_rng(int(distance_m * 1000))`` — a pure function of
its inputs), and ``sim/rng.py`` itself, which is the sanctioned home of
generator plumbing. A seed packed inside a tuple/dict parameter does not
count as threading — the signature must show the contract.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding, Severity
from ..semantic.symbols import module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "RngTaintRule",
]


@register
class RngTaintRule(Rule):
    """Flag stochastic functions that hide their randomness from callers."""

    rule_id = "RPR102"
    name = "rng-taint"
    severity = Severity.ERROR
    description = (
        "functions transitively reaching random draws must thread an "
        "explicit rng/seed parameter (or a seeded carrier object)"
    )
    rationale = (
        "Randomness that enters through a side door (a default-seeded "
        "global, a freshly-constructed generator) cannot be replayed; "
        "threading rng/seed through every stochastic call chain is what "
        "makes campaign results and fleet drift reproducible."
    )
    example_bad = (
        "def sample_fading():\n"
        "    return make_default_rng().normal()\n"
    )
    example_good = (
        "def sample_fading(rng):\n"
        "    return rng.normal()  # caller owns the seeded stream\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        for finding in ctx.project.rng_taint().findings_for_module(
            module_name
        ):
            yield ctx.finding(
                self,
                finding.node,
                finding.message,
                suggestion=finding.suggestion,
            )
