"""RPR101 — flow-sensitive unit inference across functions and modules.

RPR001 compares the *textual* suffixes of two operands in one expression.
This rule runs the project-wide dataflow from
:mod:`repro.lintkit.semantic.units` instead: unit tags propagate through
assignments, ``float()``/numpy passthroughs, loop targets, function return
values, and call sites, so it catches the mixes RPR001 cannot see —

* ``delay = frame_air_time_s(n); total_ms = delay + t_ms`` (the unit of
  ``delay`` is only known by looking at the callee);
* passing a milliseconds value to a parameter named ``*_s`` two modules
  away;
* assigning a dBm-valued expression to a ``*_mw`` name.

Findings carry provenance (*which* operand was inferred to carry *what*)
so the fix is obvious at the report line.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding, Severity
from ..semantic.symbols import module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "UnitFlowRule",
]


@register
class UnitFlowRule(Rule):
    """Flag unit conflicts discovered by project-wide unit inference."""

    rule_id = "RPR101"
    name = "unit-flow"
    severity = Severity.ERROR
    description = (
        "unit tags propagated through assignments, returns and call sites "
        "must not conflict (cross-function/module version of RPR001)"
    )
    rationale = (
        "A correctly-suffixed value loses its name when passed across a "
        "call or rebound to a bare local; dataflow carries the unit tag "
        "along so a _ms value flowing into a _s parameter two modules "
        "away is still caught."
    )
    example_bad = (
        "def slot_time_s(t_backoff_ms):\n"
        "    ...\n"
        "delay = compute_delay_ms(cfg)\n"
        "slot_time_s(delay)  # ms value into _s parameter\n"
    )
    example_good = (
        "delay_ms = compute_delay_ms(cfg)\n"
        "slot_time_s(delay_ms / 1000.0)\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        for conflict in ctx.project.units().conflicts_for_module(module_name):
            yield ctx.finding(
                self,
                conflict.node,
                conflict.message,
                suggestion=conflict.suggestion,
            )
