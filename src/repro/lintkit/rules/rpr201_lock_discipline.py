"""RPR201 — lock discipline: guarded attributes accessed without the lock.

A class that owns a ``threading.Lock`` declares, by its own behavior,
which attributes that lock guards: everything a non-constructor method
writes inside a ``with self._lock:`` block (see
:mod:`repro.lintkit.semantic.concurrency`). Any *other* read or write of
a guarded attribute that happens outside every lock scope is a data race:
the serve tier's worker threads will interleave it with the locked
writers, and a torn read of ``_queue`` or a lost ``_closed`` transition
becomes a silent wrong answer under load.

Precision guards:

* attributes assigned only in ``__init__``/``__post_init__`` are never
  guarded — immutable configuration needs no lock, so reading it
  lock-free is clean;
* ``threading.Condition(self._lock)`` aliases the wrapped lock, so
  ``with self._not_empty:`` opens a scope of ``_lock``;
* a private helper whose every resolved call site is a ``self.<helper>()``
  call made while holding the class lock *extends* the lock scope rather
  than escaping it (resolved through the project call graph), and is not
  flagged;
* unlocked ``+=``/``-=`` on guarded attributes is RPR202's
  read-modify-write case and is left to it, so one defect yields one
  finding.
"""

from __future__ import annotations

from typing import Iterator, Set

from ..findings import Finding, Severity
from ..semantic.concurrency import INIT_METHODS
from ..semantic.symbols import module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "LockDisciplineRule",
]


@register
class LockDisciplineRule(Rule):
    """Flag unlocked access to attributes the class guards with its lock."""

    rule_id = "RPR201"
    name = "lock-discipline"
    severity = Severity.ERROR
    description = (
        "attributes written under a class's lock must not be read or "
        "written outside a lock scope by other methods"
    )
    rationale = (
        "A lock only helps if every access to the state it guards goes "
        "through it. The guarded set is inferred from the class's own "
        "locked writes, so one unlocked read is one thread observing "
        "half-updated state."
    )
    example_bad = (
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._total = 0\n"
        "    def add(self, n):\n"
        "        with self._lock:\n"
        "            self._total = self._total + n\n"
        "    def snapshot(self):\n"
        "        return self._total  # unlocked read of guarded state\n"
    )
    example_good = (
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._total = 0\n"
        "    def add(self, n):\n"
        "        with self._lock:\n"
        "            self._total = self._total + n\n"
        "    def snapshot(self):\n"
        "        with self._lock:\n"
        "            return self._total\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        module = ctx.project.modules.get(module_name)
        if module is None:
            return
        conc = ctx.project.concurrency()
        for class_name in sorted(module.classes):
            cls = module.classes[class_name]
            cc = conc.classes.get(cls.qualname)
            if cc is None or not cc.locks or not cc.guarded:
                continue
            extensions = self._lock_scope_extensions(ctx, cc)
            for method_name in sorted(cc.methods):
                summary = cc.methods[method_name]
                if summary.name in INIT_METHODS or method_name in extensions:
                    continue
                for access in summary.accesses:
                    if access.lock is not None:
                        continue
                    if access.attr not in cc.guarded:
                        continue
                    if access.kind == "augwrite":
                        continue  # RPR202's read-modify-write case
                    verb = "read" if access.kind == "read" else "write"
                    lock = sorted(cc.guarded[access.attr])[0]
                    yield ctx.finding(
                        self,
                        access.node,
                        f"{verb} of {access.attr!r} outside a lock scope: "
                        f"{cls.name} guards it with {lock!r}",
                        suggestion=f"wrap the access in `with self.{lock}:` "
                        f"(or document why this method is single-threaded)",
                    )

    @staticmethod
    def _lock_scope_extensions(ctx: FileContext, cc) -> Set[str]:
        """Method names whose every caller already holds the class lock."""
        conc = ctx.project.concurrency()
        return {
            name
            for name, summary in cc.methods.items()
            if conc.always_called_locked(ctx.project, cc, summary.qualname)
        }
