"""RPR003 — paper-constant duplication.

The paper's measured and fitted values (T_TR = 0.224 ms, T_waitACK =
8.192 ms, the Eq. 3 coefficients, the CC2420 datasheet currents, ...) are
pinned once in ``radio/timing.py``, ``radio/cc2420.py`` and
``core/constants.py``. A numeric literal elsewhere in the package that
reproduces one of those distinctive values is almost certainly a silent
re-hardcoding that will drift when the registry is recalibrated — it must
reference the named constant instead.

The registry is built statically (see ``repro.lintkit.constant_registry``)
and matching uses a relative tolerance, so ``0.000224`` and ``2.24e-4``
both resolve to ``TURNAROUND_TIME_S``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..constant_registry import load_registry, match_constant
from ..findings import Finding, Severity
from .base import FileContext, Rule, package_root, register
from ..constant_registry import REGISTRY_MODULES

__all__ = [
    "PaperConstantRule",
]


@register
class PaperConstantRule(Rule):
    """Flag numeric literals that duplicate a registered paper constant."""

    rule_id = "RPR003"
    name = "paper-constant-duplication"
    severity = Severity.ERROR
    description = (
        "numeric literals matching a registered paper constant must "
        "reference the named constant from radio/timing.py, "
        "radio/cc2420.py, or core/constants.py"
    )
    rationale = (
        "Each paper constant (symbol rate, CCA backoff, power levels) "
        "has exactly one named definition; a re-typed literal drifts "
        "silently when the registry is corrected and hides which model "
        "parameter the number encodes."
    )
    example_bad = (
        "def payload_airtime_ms(payload_bytes):\n"
        "    return payload_bytes * 8 / 250.0  # re-typed bitrate\n"
    )
    example_good = (
        "from repro.radio.cc2420 import BITRATE_KBPS\n"
        "def payload_airtime_ms(payload_bytes):\n"
        "    return payload_bytes * 8 / BITRATE_KBPS\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package_relpath in REGISTRY_MODULES:
            return
        registry = load_registry(package_root())
        if not registry:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            if not isinstance(node.value, (int, float)) or isinstance(
                node.value, bool
            ):
                continue
            matched = match_constant(float(node.value), registry)
            if matched is not None:
                yield ctx.finding(
                    self,
                    node,
                    f"literal {node.value!r} duplicates paper constant "
                    f"{matched.name} defined in {matched.module}",
                    suggestion=f"import and use {matched.name}",
                )
