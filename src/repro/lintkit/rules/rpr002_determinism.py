"""RPR002 — determinism discipline.

Reproducible campaigns require every stochastic draw to flow from a named,
seeded stream (``repro.sim.rng.RngStreams``). This rule forbids, anywhere
under ``src/repro`` except the sanctioned ``sim/rng.py``:

* calls into the stdlib ``random`` module (global Mersenne state);
* numpy global-state calls (``np.random.seed``, ``np.random.rand``, ... and
  the legacy ``np.random.RandomState``) — the explicit-generator API
  (``default_rng``, ``SeedSequence``, ``Generator``) remains allowed;
* wall-clock reads: ``time.time``/``time.time_ns`` and
  ``datetime.now``/``utcnow``/``today``.

Import aliases are resolved from the file's own import statements, so
``import numpy.random as nr; nr.seed(0)`` is still caught.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

from ..findings import Finding, Severity
from .base import FileContext, Rule, register

__all__ = [
    "ALLOWED_NUMPY_RANDOM",
    "SANCTIONED_MODULES",
    "DeterminismRule",
]

#: numpy.random attributes that are explicit-generator plumbing, not global
#: state, and therefore always allowed.
ALLOWED_NUMPY_RANDOM: FrozenSet[str] = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Package-relative files where raw RNG plumbing is the point.
SANCTIONED_MODULES: FrozenSet[str] = frozenset({"sim/rng.py"})

#: Dotted wall-clock calls that break trace reproducibility.
_WALL_CLOCK: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> canonical dotted module/name for relevant imports."""
    aliases: Dict[str, str] = {}
    interesting = ("random", "numpy", "time", "datetime")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                root = name.name.split(".")[0]
                if root in interesting:
                    local = name.asname or name.name.split(".")[0]
                    aliases[local] = name.name if name.asname else root
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            root = node.module.split(".")[0]
            if root in interesting:
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _dotted_name(node: ast.expr) -> Optional[Tuple[str, ...]]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


@register
class DeterminismRule(Rule):
    """Forbid global-state RNG and wall-clock reads outside ``sim/rng.py``."""

    rule_id = "RPR002"
    name = "determinism"
    severity = Severity.ERROR
    description = (
        "no stdlib random, numpy global-state RNG, or wall-clock reads "
        "outside the sanctioned sim/rng.py; use seeded RngStreams"
    )
    rationale = (
        "Reproduction means bit-identical reruns: one ambient "
        "random.random() or time.time() read makes results depend on "
        "global interpreter state and the wall clock. All randomness "
        "flows through seeded per-stream generators instead."
    )
    example_bad = (
        "import random\n"
        "def jitter_ms():\n"
        "    return random.uniform(0.0, 5.0)\n"
    )
    example_good = (
        "def jitter_ms(rng):\n"
        "    return rng.uniform(0.0, 5.0)  # rng: seeded stream\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package_relpath in SANCTIONED_MODULES:
            return
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            resolved = aliases.get(dotted[0])
            if resolved is None:
                continue
            canonical = ".".join(resolved.split(".") + list(dotted[1:]))
            message = self._violation(canonical)
            if message is not None:
                yield ctx.finding(
                    self,
                    node,
                    message,
                    suggestion="draw from a named RngStreams stream "
                    "(repro.sim.rng) or pass timestamps in explicitly",
                )

    @staticmethod
    def _violation(canonical: str) -> Optional[str]:
        """Message for a banned dotted call, or ``None`` when allowed."""
        parts = canonical.split(".")
        if parts[0] == "random" and len(parts) >= 2:
            return (
                f"call to stdlib global-state RNG '{canonical}' breaks "
                f"reproducibility"
            )
        if parts[:2] == ["numpy", "random"] and len(parts) >= 3:
            if parts[2] not in ALLOWED_NUMPY_RANDOM:
                return (
                    f"call to numpy global-state RNG '{canonical}' breaks "
                    f"reproducibility"
                )
            return None
        if canonical in _WALL_CLOCK:
            return (
                f"wall-clock read '{canonical}()' makes runs "
                f"non-reproducible"
            )
        return None
