"""RPR301 — loop-invariant array allocation inside hot-path loops.

The columnar kernels and the fleet engine are benchmarked end to end
(``BENCH_grid_kernel.json``, ``BENCH_fleet.json``); an allocation that
sneaks into one of their loops — ``np.zeros`` per iteration, a hidden
``astype`` copy, or the list-append-then-``asarray`` build — silently
turns an O(1)-allocation step into O(iterations) garbage pressure.

A function is *hot* when its module carries a ``# reprolint: hot-path``
marker comment, when it lives in a ``bench_*`` module in the lint batch,
or when the project call graph reaches it from either. Inside hot
functions the rule flags, in statement loops only:

* array-allocating calls (``np.zeros``, ``np.array``, ``concatenate``,
  ``.astype``/``.copy``/``.flatten``, …) whose arguments mention no name
  bound inside the loop — i.e. the allocation is loop-invariant and can
  be hoisted (a per-block ``np.empty(stop - start)`` is loop-variant and
  stays exempt);
* ``buf.append(...)`` in a loop when the function later materializes
  ``np.asarray(buf)`` — hot loops should write into preallocated output.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..findings import Finding, Severity
from ..semantic.arrays import numpy_call_tail
from ..semantic.symbols import dotted_name, module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "HotLoopAllocationRule",
]

#: numpy callables that allocate a new buffer (subset of the constructor
#: set: lookups like ``np.unique`` / ``np.argsort`` are algorithmic work,
#: not hoistable allocations).
_ALLOC_TAILS = frozenset(
    {
        "array", "asarray", "ascontiguousarray", "zeros", "ones", "empty",
        "full", "zeros_like", "ones_like", "empty_like", "full_like",
        "arange", "linspace", "logspace", "geomspace", "concatenate",
        "stack", "vstack", "hstack", "column_stack", "tile", "repeat",
        "meshgrid", "fromiter",
    }
)

#: ndarray methods that copy the receiver into a fresh buffer.
_ALLOC_METHODS = frozenset({"astype", "copy", "flatten"})


@register
class HotLoopAllocationRule(Rule):
    """Flag hoistable array allocations in loops on the hot path."""

    rule_id = "RPR301"
    name = "hot-loop-allocation"
    severity = Severity.ERROR
    description = (
        "loops in hot-path functions (# reprolint: hot-path modules, "
        "benchmark call graph) must not re-run loop-invariant array "
        "allocations or build arrays via per-iteration append"
    )
    rationale = (
        "The recommend/drift loops run per tick across the whole fleet; "
        "an allocation whose size does not depend on the loop variable "
        "costs a malloc + memset every iteration for a buffer that could "
        "be created once outside. The BENCH files pin throughput, and "
        "allocation churn is the usual way it regresses without any "
        "numeric change."
    )
    example_bad = (
        "# reprolint: hot-path\n"
        "for step in range(n_steps):\n"
        "    scratch = np.zeros(n_links)  # same size every iteration\n"
        "    scratch += snr_db\n"
    )
    example_good = (
        "# reprolint: hot-path\n"
        "scratch = np.zeros(n_links)\n"
        "for step in range(n_steps):\n"
        "    scratch[:] = 0.0\n"
        "    scratch += snr_db\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        if ctx.project.modules.get(module_name) is None:
            return
        shapes = ctx.project.shapes()
        seen = set()
        for func in sorted(
            ctx.project.functions.values(), key=lambda f: f.qualname
        ):
            if func.module != module_name:
                continue
            if func.qualname not in shapes.hot_functions:
                continue
            asarray_built = self._asarray_built_lists(func.node)
            for node in ast.walk(func.node):
                if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    continue
                for finding in self._check_loop(ctx, node, asarray_built):
                    key = (finding.line, finding.col, finding.message)
                    if key not in seen:
                        seen.add(key)
                        yield finding

    @staticmethod
    def _asarray_built_lists(func_node: ast.AST) -> Set[str]:
        """Names passed to ``np.asarray``/``np.array`` in this function."""
        built: Set[str] = set()
        for node in ast.walk(func_node):
            if (
                isinstance(node, ast.Call)
                and numpy_call_tail(node) in ("asarray", "array")
                and node.args
            ):
                name = dotted_name(node.args[0])
                if name is not None:
                    built.add(name)
        return built

    # ------------------------------------------------------------------
    def _check_loop(
        self, ctx: FileContext, loop: ast.stmt, asarray_built: Set[str]
    ) -> Iterator[Finding]:
        bound = self._loop_bound_names(loop)
        for node in self._walk_loop_body(loop):
            if not isinstance(node, ast.Call):
                continue
            label = self._allocation_label(node)
            if (
                label is not None
                and self._is_loop_invariant(node, bound)
                and not self._is_defensive_copy(node, loop)
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"loop-invariant allocation {label} inside a hot-path "
                    f"loop",
                    suggestion="hoist the allocation above the loop and "
                    "refill in place (scratch[:] = ...), or reuse via out=",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and dotted_name(node.func.value) in asarray_built
            ):
                list_name = dotted_name(node.func.value)
                yield ctx.finding(
                    self,
                    node,
                    f"hot-path loop appends to {list_name!r} which is later "
                    f"materialized with np.asarray",
                    suggestion="preallocate the output array before the "
                    "loop and write slices/elements into it",
                )

    @staticmethod
    def _walk_loop_body(loop: ast.stmt) -> Iterator[ast.AST]:
        """Walk the loop body (per-iteration code), not the iterable."""
        for stmt in getattr(loop, "body", []):
            yield from ast.walk(stmt)

    @staticmethod
    def _loop_bound_names(loop: ast.stmt) -> Set[str]:
        """Names (re)bound each iteration: targets plus body assignments."""
        names: Set[str] = set()

        def _collect(target: ast.expr) -> None:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    _collect(element)
            elif isinstance(target, ast.Starred):
                _collect(target.value)

        if isinstance(loop, (ast.For, ast.AsyncFor)):
            _collect(loop.target)
        for stmt in getattr(loop, "body", []):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        _collect(target)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    _collect(node.target)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    _collect(node.target)
                elif isinstance(node, ast.withitem) and node.optional_vars:
                    _collect(node.optional_vars)
        return names

    @staticmethod
    def _allocation_label(call: ast.Call) -> Optional[str]:
        """Describe ``call`` when it allocates an array buffer."""
        tail = numpy_call_tail(call)
        if tail in _ALLOC_TAILS:
            return f"np.{tail}(...)"
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _ALLOC_METHODS
            and numpy_call_tail(call) is None
        ):
            receiver = dotted_name(call.func.value) or "..."
            return f"{receiver}.{call.func.attr}(...)"
        return None

    @classmethod
    def _is_defensive_copy(cls, call: ast.Call, loop: ast.stmt) -> bool:
        """Whether ``call`` is a ``.copy()`` handed to a mutating callee.

        ``fresh = state.copy(); engine.step(fresh)`` per iteration is the
        point of the loop (the callee consumes/mutates the buffer), not a
        hoistable allocation — exempt a copy whose result is passed as a
        call argument inside the same loop body.
        """
        if not (
            isinstance(call.func, ast.Attribute) and call.func.attr == "copy"
        ):
            return False
        target: Optional[str] = None
        for node in cls._walk_loop_body(loop):
            if (
                isinstance(node, ast.Assign)
                and node.value is call
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                target = node.targets[0].id
                break
        else:
            # An inline ``f(state.copy())`` escapes directly.
            for node in cls._walk_loop_body(loop):
                if isinstance(node, ast.Call) and any(
                    arg is call for arg in node.args
                ):
                    return True
            return False
        for node in cls._walk_loop_body(loop):
            if isinstance(node, ast.Call) and any(
                isinstance(arg, ast.Name) and arg.id == target
                for arg in node.args
            ):
                return True
        return False

    @staticmethod
    def _is_loop_invariant(call: ast.Call, bound: Set[str]) -> bool:
        """No argument (or method receiver) mentions a loop-bound name."""
        for node in ast.walk(call):
            if isinstance(node, ast.Name) and node.id in bound:
                return False
        return True
