"""Rule base class, per-file context, and the rule registry."""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Type

from ...errors import LintError
from ..findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..semantic.symbols import ProjectIndex

__all__ = [
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "package_root",
]


def package_root() -> Path:
    """Filesystem directory of the ``repro`` package being linted.

    Rules that consult the package's own source (the paper-constant registry,
    the exception hierarchy) resolve it relative to this file so the linter
    works from any working directory.
    """
    return Path(__file__).resolve().parents[2]


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one source file."""

    #: Path as it should appear in findings (as passed on the command line).
    path: str
    #: Path of the file relative to the ``repro`` package root, in posix
    #: form (e.g. ``"sim/rng.py"``), or ``""`` when the file lies outside
    #: the package. Rules use this for sanction/exclusion lists.
    package_relpath: str
    tree: ast.Module
    source: str
    #: Phase-1 symbol table over the whole lint batch, or ``None`` when a
    #: rule is exercised standalone. Flow-sensitive rules (RPR101–RPR104)
    #: return no findings without it; per-file rules ignore it.
    project: Optional["ProjectIndex"] = None

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        suggestion: str = "",
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` for ``rule``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule.rule_id,
            severity=rule.severity,
            message=message,
            suggestion=suggestion,
        )


class Rule(abc.ABC):
    """One invariant check; subclasses set the class attributes and visit."""

    #: Stable identifier, e.g. ``"RPR001"``; used by --select and suppressions.
    rule_id: str = ""
    #: Short human name shown in rule listings.
    name: str = ""
    severity: Severity = Severity.ERROR
    #: One-line description for ``docs/LINTS.md`` and ``--list-rules``.
    description: str = ""
    #: Why the invariant matters here, shown by ``wsnlink lint --explain``.
    rationale: str = ""
    #: Minimal violating snippet for ``--explain`` (kept on the rule class
    #: so the docs cannot drift from the implementation).
    example_bad: str = ""
    #: The corresponding clean form of :attr:`example_bad`.
    example_good: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""

    @classmethod
    def validate(cls) -> None:
        """Sanity-check the subclass declaration at registration time."""
        if not cls.rule_id or not cls.description:
            raise LintError(
                f"rule {cls.__name__} must declare rule_id and description"
            )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_cls.validate()
    if rule_cls.rule_id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule_cls.rule_id!r}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, ordered by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]
