"""RPR302 — silent dtype drift in array arithmetic.

The entire pipeline is float64 by contract (``GridEvaluation`` validates
its planes, checkpoints round-trip bit-identically). Dtype drift breaks
that silently: mixing a float32 array into a float64 expression promotes
and copies on every op; accumulating floats into an int array truncates
(or, via ``+=``, raises under numpy 2 casting rules); building arrays
from ragged sequences or ``dtype=object`` turns vectorized kernels into
per-element Python dispatch. All three are invisible at runtime until a
checkpoint or benchmark diverges — exactly what a static pass can pin.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..semantic.arrays import numpy_call_tail
from ..semantic.shapes import literal_is_ragged
from ..semantic.symbols import dotted_name, module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "DtypeDriftRule",
]

_INT_DTYPES = frozenset({"int64", "bool"})

#: numpy constructors whose ``dtype=object`` result kills vectorization.
_CONSTRUCTOR_TAILS = frozenset(
    {"array", "asarray", "zeros", "ones", "empty", "full"}
)


@register
class DtypeDriftRule(Rule):
    """Flag float32/float64 mixing, int-accumulator upcasts, object dtype."""

    rule_id = "RPR302"
    name = "dtype-drift"
    severity = Severity.ERROR
    description = (
        "array expressions must not silently mix float32/float64, "
        "accumulate floats into integer arrays, or create object-dtype "
        "arrays (ragged sequences, dtype=object)"
    )
    rationale = (
        "A float32 operand in a float64 expression promotes and copies on "
        "every op; a float value accumulated into an int64 array truncates "
        "or raises under numpy 2 casting; an object-dtype array executes "
        "per element in the interpreter. Each breaks the float64 plane "
        "contract the checkpoints and 1e-9 equivalence benches pin."
    )
    example_bad = (
        "weights = np.zeros(n, dtype=np.float32)\n"
        "score = weights * energy_uj  # float64 plane: promote + copy\n"
    )
    example_good = (
        "weights = np.zeros(n)  # float64, matching the planes\n"
        "score = weights * energy_uj\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        if ctx.project.modules.get(module_name) is None:
            return
        shapes = ctx.project.shapes()
        seen = set()
        for func in sorted(
            ctx.project.functions.values(), key=lambda f: f.qualname
        ):
            if func.module != module_name:
                continue
            env = shapes.env(func)
            local_types = ctx.project.local_class_types(func)
            for node in ast.walk(func.node):
                for finding in self._check_node(
                    ctx, node, shapes, env, func, local_types
                ):
                    key = (finding.line, finding.col, finding.message)
                    if key not in seen:
                        seen.add(key)
                        yield finding

    def _check_node(
        self, ctx: FileContext, node: ast.AST, shapes, env, func, local_types
    ) -> Iterator[Finding]:
        if isinstance(node, ast.BinOp):
            left = shapes.infer(node.left, env, func, local_types)
            right = shapes.infer(node.right, env, func, local_types)
            if (
                left is not None
                and right is not None
                and {left.dtype, right.dtype} == {"float32", "float64"}
            ):
                yield ctx.finding(
                    self,
                    node,
                    "binary op mixes float32 and float64 arrays "
                    "(silent promotion copies the float32 operand)",
                    suggestion="cast once at the boundary with "
                    ".astype(np.float64) (or keep the whole pipeline "
                    "float32) instead of promoting per-op",
                )
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
        ):
            target_name = dotted_name(node.target)
            target_info = env.get(target_name) if target_name else None
            if target_info is not None and target_info.dtype in _INT_DTYPES:
                value = shapes.infer(node.value, env, func, local_types)
                value_is_float = (
                    value is not None and value.dtype in ("float64", "float32")
                ) or (
                    isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, float)
                ) or isinstance(node.op, ast.Div)
                if value_is_float:
                    yield ctx.finding(
                        self,
                        node,
                        f"float value accumulated into {target_info.dtype} "
                        f"array {target_name!r}",
                        suggestion="allocate the accumulator as float64, or "
                        "round/cast the value explicitly before accumulating",
                    )
        elif isinstance(node, ast.Call):
            tail = numpy_call_tail(node)
            if tail in _CONSTRUCTOR_TAILS:
                for keyword in node.keywords:
                    if (
                        keyword.arg == "dtype"
                        and dotted_name(keyword.value)
                        in ("object", "np.object_", "numpy.object_")
                    ):
                        yield ctx.finding(
                            self,
                            node,
                            f"np.{tail}(..., dtype=object) creates an "
                            f"object-dtype array",
                            suggestion="keep parallel numeric arrays (or a "
                            "list) instead of an object-dtype array",
                        )
                if (
                    tail in ("array", "asarray")
                    and node.args
                    and literal_is_ragged(node.args[0])
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"np.{tail} over a ragged nested sequence yields an "
                        f"object-dtype array",
                        suggestion="pad rows to a common length or keep a "
                        "flat array plus offsets",
                    )
