"""RPR203 — fork safety: no live OS state into multiprocessing workers.

A ``multiprocessing`` worker gets its arguments by pickling (spawn) or by
copying the parent's memory (fork). Either way, a ``threading.Lock``, an
open file, a socket, or a thread ``queue.Queue`` that crosses the boundary
is wrong: locks arrive held-or-broken, file descriptors are shared or
silently rebound, and a thread queue in a child is an empty decoy that
never sees the parent's items. The campaign sweep pool
(`campaign/parallel.py`) stays safe by shipping a *frozen dataclass spec*
through the pool initializer and rebuilding everything stateful inside
the worker — that is the sanctioned pattern this rule proves clean.

Flagged, per pool/process creation and per pool submission call:

* ``initargs=``/``args=`` elements that are lock/condition/event/
  semaphore/queue/socket/file locals, module globals, ``self.<attr>``
  synchronization attributes, or inline ``threading.Lock()``-style
  constructor calls;
* ``initializer=``/``target=``/worker functions that are lambdas or
  nested functions capturing such locals from the enclosing scope;
* worker/initializer functions from which a ``threading`` lock
  acquisition is reachable in the project call graph — pre-fork lock
  state must not be assumed by post-fork code.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding, Severity
from ..semantic.concurrency import absolute_name
from ..semantic.symbols import FunctionInfo, module_name_for, dotted_name
from .base import FileContext, Rule, register

__all__ = [
    "ForkSafetyRule",
]

#: Pool methods whose first positional argument runs in a worker process.
_POOL_SUBMIT_METHODS = frozenset(
    {
        "apply", "apply_async", "map", "map_async", "imap",
        "imap_unordered", "starmap", "starmap_async",
    }
)

#: Dotted names that create a pool or process directly.
_POOL_CONSTRUCTORS = frozenset(
    {
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
        "multiprocessing.Process",
        "multiprocessing.context.SpawnContext.Pool",
    }
)

_KIND_LABELS = {
    "lock": "a threading lock",
    "condition": "a threading condition",
    "event": "a threading event",
    "semaphore": "a threading semaphore",
    "queue": "a thread queue",
    "socket": "a socket",
    "file": "an open file",
}


@register
class ForkSafetyRule(Rule):
    """Flag threading/OS state captured by multiprocessing workers."""

    rule_id = "RPR203"
    name = "fork-safety"
    severity = Severity.ERROR
    description = (
        "multiprocessing initializers and workers must not capture locks, "
        "open files, sockets, or thread queues, nor reach a lock acquisition"
    )
    rationale = (
        "Worker processes copy or re-pickle whatever crosses the pool "
        "boundary: a copied lock can be permanently held, a shared file "
        "descriptor interleaves writes, and a thread queue silently "
        "becomes per-process. Ship a frozen spec and rebuild stateful "
        "objects inside the worker instead."
    )
    example_bad = (
        "lock = threading.Lock()\n"
        "with multiprocessing.get_context('spawn').Pool(\n"
        "    2, initializer=setup, initargs=(lock,),  # lock crosses fork\n"
        ") as pool:\n"
        "    pool.map(work, jobs)\n"
    )
    example_good = (
        "spec = WorkerSpec(seed=42)  # frozen dataclass, plain data\n"
        "with multiprocessing.get_context('spawn').Pool(\n"
        "    2, initializer=setup, initargs=(spec,),\n"
        ") as pool:\n"
        "    pool.map(work, jobs)\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        module = ctx.project.modules.get(module_name)
        if module is None:
            return
        conc = ctx.project.concurrency()
        graph = ctx.project.call_graph()
        lock_reachers = graph.callers_of(set(conc.lock_acquirers))
        for func in sorted(
            ctx.project.functions.values(), key=lambda f: f.qualname
        ):
            if func.module != module_name:
                continue
            yield from self._check_function(
                ctx, module, func, conc, lock_reachers
            )

    # ------------------------------------------------------------------
    def _check_function(
        self,
        ctx: FileContext,
        module,
        func: FunctionInfo,
        conc,
        lock_reachers: Set[str],
    ) -> Iterator[Finding]:
        from ..semantic.symbols import ProjectIndex

        unsafe_locals = {
            name: kind
            for name, kind in conc.local_bindings(module, func.node).items()
        }
        globals_sync = conc.module_sync.get(module.name, {})
        ctx_locals = self._context_locals(module, func.node)
        nested_defs = {
            node.name: node
            for node in ast.iter_child_nodes(func.node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        pool_locals = self._pool_locals(module, func.node, ctx_locals)
        cc = (
            conc.classes.get(func.class_qualname)
            if func.class_qualname
            else None
        )
        receiver = (
            func.params[0].name
            if func.is_method and not func.is_static and func.params
            else None
        )

        for node in ProjectIndex._walk_body(func.node):
            if not isinstance(node, ast.Call):
                continue
            worker_exprs: List[ast.expr] = []
            arg_tuples: List[ast.expr] = []
            if self._is_pool_creation(module, node, ctx_locals):
                for keyword in node.keywords:
                    if keyword.arg in ("initializer", "target"):
                        worker_exprs.append(keyword.value)
                    elif keyword.arg in ("initargs", "args"):
                        arg_tuples.append(keyword.value)
            elif self._is_pool_submission(node, pool_locals):
                if node.args:
                    worker_exprs.append(node.args[0])
                for keyword in node.keywords:
                    if keyword.arg == "func":
                        worker_exprs.append(keyword.value)
            else:
                continue
            for expr in worker_exprs:
                yield from self._check_worker(
                    ctx, module, func, expr, unsafe_locals, globals_sync,
                    nested_defs, lock_reachers, cc, receiver,
                )
            for expr in arg_tuples:
                yield from self._check_args(
                    ctx, module, expr, unsafe_locals, globals_sync,
                    cc, receiver,
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _context_locals(module, func_node: ast.AST) -> Set[str]:
        """Locals bound from ``multiprocessing.get_context(...)``."""
        from ..semantic.symbols import ProjectIndex

        names: Set[str] = set()
        for node in ProjectIndex._walk_body(func_node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                dotted = dotted_name(node.value.func)
                if dotted is not None and absolute_name(
                    module, dotted
                ) in ("multiprocessing.get_context",):
                    names.add(node.targets[0].id)
        return names

    def _is_pool_creation(
        self, module, call: ast.Call, ctx_locals: Set[str]
    ) -> bool:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ctx_locals
            and func.attr in ("Pool", "Process")
        ):
            return True
        dotted = dotted_name(func)
        if dotted is None:
            return False
        return absolute_name(module, dotted) in _POOL_CONSTRUCTORS

    def _pool_locals(
        self, module, func_node: ast.AST, ctx_locals: Set[str]
    ) -> Set[str]:
        """Names bound to a created pool (assignment or ``with ... as``)."""
        from ..semantic.symbols import ProjectIndex

        names: Set[str] = set()
        for node in ProjectIndex._walk_body(func_node):
            value: Optional[ast.expr] = None
            target: Optional[ast.expr] = None
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
            ):
                value, target = node.value, node.targets[0]
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(
                        item.context_expr, ast.Call
                    ) and self._is_pool_creation(
                        module, item.context_expr, ctx_locals
                    ):
                        if isinstance(item.optional_vars, ast.Name):
                            names.add(item.optional_vars.id)
                continue
            if (
                isinstance(value, ast.Call)
                and isinstance(target, ast.Name)
                and self._is_pool_creation(module, value, ctx_locals)
            ):
                names.add(target.id)
        return names

    @staticmethod
    def _is_pool_submission(call: ast.Call, pool_locals: Set[str]) -> bool:
        return (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in pool_locals
            and call.func.attr in _POOL_SUBMIT_METHODS
        )

    # ------------------------------------------------------------------
    def _check_worker(
        self,
        ctx: FileContext,
        module,
        func: FunctionInfo,
        expr: ast.expr,
        unsafe_locals: Dict[str, str],
        globals_sync: Dict[str, str],
        nested_defs: Dict[str, ast.AST],
        lock_reachers: Set[str],
        cc,
        receiver: Optional[str],
    ) -> Iterator[Finding]:
        captured_body: Optional[ast.AST] = None
        label = ""
        if isinstance(expr, ast.Lambda):
            captured_body, label = expr, "lambda worker"
        elif isinstance(expr, ast.Name) and expr.id in nested_defs:
            captured_body, label = nested_defs[expr.id], f"nested worker {expr.id!r}"
        if captured_body is not None:
            yield from self._check_closure(
                ctx, expr, captured_body, label, unsafe_locals, cc, receiver
            )
            return
        dotted = dotted_name(expr)
        if dotted is None:
            return
        resolved = ctx.project.resolve_name(module.name, dotted)
        if resolved is None or resolved[0] != "function":
            return
        if resolved[1] in lock_reachers:
            graph = ctx.project.call_graph()
            conc = ctx.project.concurrency()
            path = graph.path_to(resolved[1], set(conc.lock_acquirers))
            via = " -> ".join(p.split(".")[-1] for p in path) if path else ""
            detail = f" (via {via})" if via else ""
            yield ctx.finding(
                self,
                expr,
                f"worker function {dotted!r} can reach a threading lock "
                f"acquisition{detail}; pre-fork lock state must not cross "
                f"the process boundary",
                suggestion="rebuild stateful objects inside the worker from "
                "plain data instead of sharing lock-guarded ones",
            )

    def _check_closure(
        self,
        ctx: FileContext,
        anchor: ast.expr,
        body: ast.AST,
        label: str,
        unsafe_locals: Dict[str, str],
        cc,
        receiver: Optional[str],
    ) -> Iterator[Finding]:
        bound: Set[str] = {
            arg.arg
            for arg in ast.walk(body)
            if isinstance(arg, ast.arg)
        }
        seen: Set[Tuple[str, str]] = set()
        for node in ast.walk(body):
            if (
                isinstance(node, ast.Name)
                and node.id in unsafe_locals
                and node.id not in bound
            ):
                key = (node.id, unsafe_locals[node.id])
                if key not in seen:
                    seen.add(key)
                    kind = _KIND_LABELS[unsafe_locals[node.id]]
                    yield ctx.finding(
                        self,
                        anchor,
                        f"{label} captures {kind} ({node.id!r}) across the "
                        f"process boundary",
                        suggestion="pass plain picklable data and rebuild "
                        "the resource inside the worker",
                    )
            elif (
                cc is not None
                and receiver is not None
                and isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == receiver
                and node.attr in cc.sync_attrs
            ):
                yield ctx.finding(
                    self,
                    anchor,
                    f"{label} captures synchronization attribute "
                    f"self.{node.attr} across the process boundary",
                    suggestion="pass plain picklable data and rebuild "
                    "the resource inside the worker",
                )

    def _check_args(
        self,
        ctx: FileContext,
        module,
        tuple_expr: ast.expr,
        unsafe_locals: Dict[str, str],
        globals_sync: Dict[str, str],
        cc,
        receiver: Optional[str],
    ) -> Iterator[Finding]:
        elements = (
            list(tuple_expr.elts)
            if isinstance(tuple_expr, (ast.Tuple, ast.List))
            else [tuple_expr]
        )
        from ..semantic.concurrency import sync_kind

        for element in elements:
            kind: Optional[str] = None
            what = ""
            if isinstance(element, ast.Name):
                kind = unsafe_locals.get(element.id) or globals_sync.get(
                    element.id
                )
                what = repr(element.id)
            elif isinstance(element, ast.Call):
                kind = sync_kind(module, element)
                what = "an inline constructor call"
            elif (
                cc is not None
                and receiver is not None
                and isinstance(element, ast.Attribute)
                and isinstance(element.value, ast.Name)
                and element.value.id == receiver
                and element.attr in cc.sync_attrs
            ):
                if element.attr in cc.queues:
                    kind = "queue"
                elif element.attr in cc.events:
                    kind = "event"
                elif element.attr in cc.sockets:
                    kind = "socket"
                elif element.attr in cc.conditions:
                    kind = "condition"
                else:
                    kind = "lock"
                what = f"self.{element.attr}"
            if kind is None:
                continue
            yield ctx.finding(
                self,
                element,
                f"initializer/worker arguments carry {_KIND_LABELS[kind]} "
                f"({what}) across the process boundary",
                suggestion="ship a frozen spec of plain data and construct "
                "the resource inside the worker process",
            )
