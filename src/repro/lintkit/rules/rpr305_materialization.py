"""RPR305 — redundant array materialization.

Copies that buy nothing: ``.flatten()`` always copies where ``.ravel()``
returns a view when it can; ``np.asarray``/``np.array`` re-wrapping a
value already known to be an ndarray (with no dtype/order change) is a
no-op or a gratuitous copy; ``x = x + y`` on a buffer this code freshly
allocated leaves the old buffer for the GC when ``x += y`` (or ``out=``)
would reuse it. None of these change results — they only add allocation
traffic to kernels the BENCH files time — so the rule is a warning, and
it only fires where the shapes pass *proves* the materialization is
redundant (the flatten result is never written, the asarray argument is
already an array, the rebound name is fresh and stays float64).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..findings import Finding, Severity
from ..semantic.arrays import numpy_call_tail
from ..semantic.shapes import WRITE_FRESH
from ..semantic.symbols import dotted_name, module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "RedundantMaterializationRule",
]

_WRAPPER_TAILS = frozenset({"asarray", "array", "ascontiguousarray"})

_INPLACE_OPS = {
    ast.Add: "+=",
    ast.Sub: "-=",
    ast.Mult: "*=",
    ast.Div: "/=",
}


@register
class RedundantMaterializationRule(Rule):
    """Flag copies the shapes pass proves unnecessary."""

    rule_id = "RPR305"
    name = "redundant-materialization"
    severity = Severity.WARNING
    description = (
        "avoid provably redundant copies: flatten where ravel suffices, "
        "asarray/array on known arrays, x = x op y on fresh buffers"
    )
    rationale = (
        "flatten() always copies while ravel() returns a view when the "
        "buffer is contiguous; asarray on something already an ndarray "
        "is pure wrapper noise; rebinding x = x + y throws away a buffer "
        "this code just allocated when x += y updates it in place. Each "
        "is free to fix and they add up in the kernels the BENCH files "
        "time."
    )
    example_bad = (
        "flat = plane.flatten()      # copies, result only read\n"
        "cols = np.asarray(columns)  # columns is already an ndarray\n"
        "acc = np.zeros(n)\n"
        "acc = acc + delta           # abandons the fresh buffer\n"
    )
    example_good = (
        "flat = plane.ravel()\n"
        "cols = columns\n"
        "acc = np.zeros(n)\n"
        "acc += delta\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        if ctx.project.modules.get(module_name) is None:
            return
        shapes = ctx.project.shapes()
        seen = set()
        for func in sorted(
            ctx.project.functions.values(), key=lambda f: f.qualname
        ):
            if func.module != module_name:
                continue
            env = shapes.env(func)
            local_types = ctx.project.local_class_types(func)
            written = self._written_names(func.node)
            for node in ast.walk(func.node):
                for finding in self._check_node(
                    ctx, node, shapes, env, func, local_types, written
                ):
                    key = (finding.line, finding.col, finding.message)
                    if key not in seen:
                        seen.add(key)
                        yield finding

    @staticmethod
    def _written_names(func_node: ast.AST) -> Set[str]:
        """Names mutated through subscript stores or ``+=`` in the body."""
        written: Set[str] = set()
        for node in ast.walk(func_node):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    name = dotted_name(target.value)
                    if name:
                        written.add(name)
                elif isinstance(node, ast.AugAssign) and isinstance(
                    target, ast.Name
                ):
                    written.add(target.id)
        return written

    def _check_node(
        self,
        ctx: FileContext,
        node: ast.AST,
        shapes,
        env,
        func,
        local_types,
        written: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_flatten(
                ctx, node, shapes, env, func, local_types, written
            )
            yield from self._check_wrapper(
                ctx, node, shapes, env, func, local_types
            )
        elif isinstance(node, ast.Assign):
            yield from self._check_rebind(
                ctx, node, shapes, env, func, local_types
            )

    def _check_flatten(
        self, ctx, call, shapes, env, func, local_types, written
    ) -> Iterator[Finding]:
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "flatten"
            and numpy_call_tail(call) is None
        ):
            return
        receiver = shapes.infer(call.func.value, env, func, local_types)
        if receiver is None:
            return
        # If the flattened result is bound to a name that is later written,
        # the copy is load-bearing — ravel could alias the source.
        parent_target = self._assigned_name(func.node, call)
        if parent_target is not None and parent_target in written:
            return
        label = dotted_name(call.func.value) or "array"
        yield ctx.finding(
            self,
            call,
            f"{label}.flatten() copies; the result is never written",
            suggestion="use .ravel() (view when contiguous) or .reshape(-1)",
        )

    @staticmethod
    def _assigned_name(func_node: ast.AST, call: ast.Call):
        """The name ``call``'s value is bound to, when directly assigned."""
        for node in ast.walk(func_node):
            if (
                isinstance(node, ast.Assign)
                and node.value is call
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                return node.targets[0].id
        return None

    def _check_wrapper(
        self, ctx, call, shapes, env, func, local_types
    ) -> Iterator[Finding]:
        tail = numpy_call_tail(call)
        if (
            tail not in _WRAPPER_TAILS
            or call.keywords  # dtype=/order=/copy= make the call meaningful
            or len(call.args) != 1
        ):
            return
        info = shapes.infer(call.args[0], env, func, local_types)
        if info is None:
            return
        label = dotted_name(call.args[0]) or "expression"
        if tail == "array":
            yield ctx.finding(
                self,
                call,
                f"np.array({label}) copies a value already known to be an "
                f"ndarray",
                suggestion="drop the wrapper, or use .copy() if the copy "
                "is intentional",
            )
        else:
            yield ctx.finding(
                self,
                call,
                f"np.{tail}({label}) is redundant: the argument is already "
                f"an ndarray",
                suggestion="drop the wrapper (keep it only at "
                "ArrayLike-accepting API boundaries)",
            )

    def _check_rebind(
        self, ctx, node, shapes, env, func, local_types
    ) -> Iterator[Finding]:
        if not (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.BinOp)
        ):
            return
        op_type = type(node.value.op)
        if op_type not in _INPLACE_OPS:
            return
        target = node.targets[0].id
        left = node.value.left
        if not (isinstance(left, ast.Name) and left.id == target):
            return
        info = env.get(target)
        if (
            info is None
            or info.writability != WRITE_FRESH
            or info.dtype != "float64"
        ):
            return
        # In-place is only equivalent when the op result stays float64.
        result = shapes.infer(node.value, env, func, local_types)
        if result is None or result.dtype != "float64":
            return
        yield ctx.finding(
            self,
            node,
            f"{target} = {target} {_INPLACE_OPS[op_type][0]} ... abandons a "
            f"fresh float64 buffer",
            suggestion=f"update in place: {target} "
            f"{_INPLACE_OPS[op_type]} ... (or use np.<op>(..., out="
            f"{target}))",
        )
