"""RPR303 — symbolic broadcast-shape conflicts at binary ops.

The tuning grid is a struct of 1-D columns over *different* axes:
``(n_payload,)`` payload sizes, ``(n_power,)`` power levels, ``(n_cfg,)``
flattened configs. Combining two columns from different axes without an
explicit ``reshape``/``[:, None]`` either crashes at runtime (unequal
lengths) or — worse — silently broadcasts when the lengths happen to
match in a test fixture and then explodes on the real grid. The shapes
pass tracks sizes symbolically (``np.zeros(n_payload)`` has shape
``("n_payload",)``), so two arrays seeded from *different* size symbols
(or unequal concrete literals) are flagged at the op that mixes them,
while an operand spelled ``col[:, None]`` / ``col.reshape(-1, 1)``
declares the alignment intentional and is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..semantic.arrays import NUMPY_ELEMENTWISE_UFUNCS, numpy_call_tail
from ..semantic.shapes import broadcast_dims, has_explicit_expansion
from ..semantic.symbols import module_name_for
from .base import FileContext, Rule, register

__all__ = [
    "BroadcastContractRule",
]


@register
class BroadcastContractRule(Rule):
    """Flag binary ops whose symbolic operand shapes cannot broadcast."""

    rule_id = "RPR303"
    name = "broadcast-contract"
    severity = Severity.ERROR
    description = (
        "arrays with provably different symbolic shapes must not meet at "
        "a binary op without an explicit reshape/newaxis"
    )
    rationale = (
        "Grid columns live on different axes; adding a (n_payload,) "
        "column to a (n_power,) column either raises at runtime or "
        "broadcasts by accident when fixture lengths coincide. The "
        "symbolic shape pass proves the mismatch statically, where the "
        "fix (an explicit [:, None] or reshape stating the intended "
        "plane) is cheap."
    )
    example_bad = (
        "payload_b = np.zeros(n_payload)\n"
        "ptx_dbm = np.zeros(n_power)\n"
        "plane = payload_b * ptx_dbm  # (n_payload,) x (n_power,)\n"
    )
    example_good = (
        "plane = payload_b[:, None] * ptx_dbm[None, :]\n"
        "# or: payload_col, ptx_col = np.broadcast_arrays(...)\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        module_name = module_name_for(ctx.package_relpath, ctx.path)
        if ctx.project.modules.get(module_name) is None:
            return
        shapes = ctx.project.shapes()
        seen = set()
        for func in sorted(
            ctx.project.functions.values(), key=lambda f: f.qualname
        ):
            if func.module != module_name:
                continue
            env = shapes.env(func)
            local_types = ctx.project.local_class_types(func)
            for node in ast.walk(func.node):
                pairs = []
                if isinstance(node, ast.BinOp):
                    pairs = [(node.left, node.right)]
                elif (
                    isinstance(node, ast.Call)
                    and numpy_call_tail(node) in NUMPY_ELEMENTWISE_UFUNCS
                    and len(node.args) >= 2
                ):
                    pairs = [(node.args[0], node.args[1])]
                for left_expr, right_expr in pairs:
                    conflict = self._conflict(
                        shapes, env, func, local_types, left_expr, right_expr
                    )
                    if conflict is None:
                        continue
                    finding = ctx.finding(
                        self,
                        node,
                        f"operands have incompatible symbolic shapes "
                        f"({conflict[0]}) vs ({conflict[1]})",
                        suggestion="align the axes explicitly with "
                        "[:, None] / reshape, or broadcast once with "
                        "np.broadcast_arrays",
                    )
                    key = (finding.line, finding.col, finding.message)
                    if key not in seen:
                        seen.add(key)
                        yield finding

    @staticmethod
    def _conflict(shapes, env, func, local_types, left_expr, right_expr):
        """The conflicting dim pair for this op, or ``None`` if clean."""
        if has_explicit_expansion(left_expr) or has_explicit_expansion(
            right_expr
        ):
            return None
        left = shapes.infer(left_expr, env, func, local_types)
        right = shapes.infer(right_expr, env, func, local_types)
        if left is None or right is None:
            return None
        _dims, conflict = broadcast_dims(left.dims, right.dims)
        return conflict
