"""Rule registry: importing this package registers RPR001–RPR005.

Each rule lives in its own module named after its id; new rules register
themselves via the :func:`repro.lintkit.rules.base.register` decorator and
become visible to the engine, the CLI ``--select`` filter, and the docs.
"""

from __future__ import annotations

from .base import FileContext, Rule, all_rules, register
from . import (  # noqa: F401  (imported for their registration side effect)
    rpr001_units,
    rpr002_determinism,
    rpr003_constants,
    rpr004_exceptions,
    rpr005_api,
)

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "register",
]
