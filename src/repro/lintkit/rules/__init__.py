"""Rule registry: importing this package registers RPR001–RPR005,
RPR101–RPR104, RPR201–RPR205, and RPR301–RPR305.

Each rule lives in its own module named after its id; new rules register
themselves via the :func:`repro.lintkit.rules.base.register` decorator and
become visible to the engine, the CLI ``--select`` filter, and the docs.
The RPR1xx block is the *semantic* tier: those rules consult the phase-1
project index (:mod:`repro.lintkit.semantic`) instead of a single file.
The RPR2xx block is the *concurrency* tier: it additionally consults the
per-class lock summaries (:mod:`repro.lintkit.semantic.concurrency`) to
check lock discipline, atomicity, fork safety, resource lifecycles, and
blocking-call deadlines. The RPR3xx block is the *array-contract* tier:
it consults the symbolic shape/dtype/writability pass
(:mod:`repro.lintkit.semantic.shapes`) to check hot-loop allocation,
dtype drift, broadcast-shape contracts, read-only-plane mutation, and
redundant materialization.
"""

from __future__ import annotations

from .base import FileContext, Rule, all_rules, register
from . import (  # noqa: F401  (imported for their registration side effect)
    rpr001_units,
    rpr002_determinism,
    rpr003_constants,
    rpr004_exceptions,
    rpr005_api,
    rpr101_unit_flow,
    rpr102_rng_taint,
    rpr103_scalar_loops,
    rpr104_invariant_calls,
    rpr201_lock_discipline,
    rpr202_atomicity,
    rpr203_fork_safety,
    rpr204_resource_lifecycle,
    rpr205_deadlines,
    rpr301_hot_alloc,
    rpr302_dtype_drift,
    rpr303_broadcast_contract,
    rpr304_readonly_mutation,
    rpr305_materialization,
)

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "register",
]
