"""Rule registry: importing this package registers RPR001–RPR005, RPR101–RPR104.

Each rule lives in its own module named after its id; new rules register
themselves via the :func:`repro.lintkit.rules.base.register` decorator and
become visible to the engine, the CLI ``--select`` filter, and the docs.
The RPR1xx block is the *semantic* tier: those rules consult the phase-1
project index (:mod:`repro.lintkit.semantic`) instead of a single file.
"""

from __future__ import annotations

from .base import FileContext, Rule, all_rules, register
from . import (  # noqa: F401  (imported for their registration side effect)
    rpr001_units,
    rpr002_determinism,
    rpr003_constants,
    rpr004_exceptions,
    rpr005_api,
    rpr101_unit_flow,
    rpr102_rng_taint,
    rpr103_scalar_loops,
    rpr104_invariant_calls,
)

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "register",
]
