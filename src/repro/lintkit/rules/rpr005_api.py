"""RPR005 — public-API hygiene.

Every module under ``src/repro`` must state its public surface explicitly:

* a top-level ``__all__`` of string literals must exist;
* every ``__all__`` entry must be a name actually defined or imported at
  module top level (no phantom exports);
* every public function or class *defined* at top level must be listed in
  ``__all__`` (constants may be exported but are not required to be);
* the module, and each public top-level function and class, must carry a
  docstring.

An explicit ``__all__`` keeps ``from module import *`` sane, documents
intent, and lets the API docs stay honest about what is supported.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..findings import Finding, Severity
from .base import FileContext, Rule, register

__all__ = [
    "parse_dunder_all",
    "top_level_names",
    "PublicApiRule",
]


def parse_dunder_all(
    tree: ast.Module,
) -> Tuple[Optional[ast.stmt], Optional[List[str]]]:
    """The ``__all__`` assignment node and its entries, when parseable.

    Returns ``(node, entries)``; ``node`` is ``None`` when no ``__all__``
    exists, and ``entries`` is ``None`` when the assignment is not a plain
    list/tuple of string literals (dynamic ``__all__`` is not checkable).
    """
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(el, ast.Constant) and isinstance(el.value, str)
            for el in value.elts
        ):
            return stmt, [el.value for el in value.elts]
        return stmt, None
    return None, None


def top_level_names(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """``(defined, imported)`` top-level names of a module."""
    defined: Set[str] = set()
    imported: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(stmt.name)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    defined.update(
                        el.id for el in target.elts if isinstance(el, ast.Name)
                    )
        elif isinstance(stmt, ast.Import):
            imported.update(
                (name.asname or name.name.split(".")[0]) for name in stmt.names
            )
        elif isinstance(stmt, ast.ImportFrom):
            imported.update(
                (name.asname or name.name)
                for name in stmt.names
                if name.name != "*"
            )
    return defined, imported


@register
class PublicApiRule(Rule):
    """Require an honest ``__all__`` and docstrings on the public surface."""

    rule_id = "RPR005"
    name = "public-api-hygiene"
    severity = Severity.WARNING
    description = (
        "modules must define __all__ consistent with their top-level "
        "names, and public modules/functions/classes need docstrings"
    )
    rationale = (
        "__all__ is the module's public contract — star imports, docs, "
        "and the API reference are generated from it — and an undocumented "
        "public name is an API nobody can use without reading the source."
    )
    example_bad = (
        "def solve(grid):\n"
        "    return grid.best()\n"
    )
    example_good = (
        '"""Grid solving helpers."""\n'
        "__all__ = ['solve']\n"
        "def solve(grid):\n"
        '    """Best configuration of the grid."""\n'
        "    return grid.best()\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tree = ctx.tree
        all_node, entries = parse_dunder_all(tree)
        defined, imported = top_level_names(tree)
        known = defined | imported

        if all_node is None:
            yield ctx.finding(
                self,
                tree.body[0] if tree.body else tree,
                "module does not define __all__",
                suggestion="add __all__ listing the public functions, "
                "classes and constants",
            )
        elif entries is None:
            yield ctx.finding(
                self,
                all_node,
                "__all__ is not a plain list/tuple of string literals",
                suggestion="use a literal list so tools can verify it",
            )
        else:
            for entry in entries:
                if entry not in known:
                    yield ctx.finding(
                        self,
                        all_node,
                        f"__all__ exports {entry!r} which is not defined "
                        f"or imported at top level",
                    )
            listed = set(entries)
            for stmt in tree.body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    if stmt.name.startswith("_") or stmt.name in listed:
                        continue
                    yield ctx.finding(
                        self,
                        stmt,
                        f"public {type(stmt).__name__.replace('Def', '').lower()} "
                        f"{stmt.name!r} is missing from __all__",
                    )

        if ast.get_docstring(tree) is None:
            yield ctx.finding(
                self,
                tree.body[0] if tree.body else tree,
                "module is missing a docstring",
            )
        for stmt in tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if stmt.name.startswith("_"):
                    continue
                if ast.get_docstring(stmt) is None:
                    yield ctx.finding(
                        self,
                        stmt,
                        f"public {stmt.name!r} is missing a docstring",
                    )
