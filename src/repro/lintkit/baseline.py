"""Baseline files: grandfather existing findings, block new ones.

A baseline is a committed JSON document listing findings that predate the
linter. ``filter_findings`` removes exactly one finding per baseline entry
(matching on the line-independent :meth:`Finding.key`), so a *new* second
occurrence of a grandfathered violation is still reported. The repo's goal
state — enforced by ``tests/test_lintkit.py`` — is an **empty** baseline.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from ..errors import LintError
from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "load_baseline",
    "save_baseline",
    "filter_findings",
]

#: Schema version written into baseline files.
BASELINE_VERSION = 1


def load_baseline(path: Path) -> Counter:
    """Multiset of grandfathered finding keys from a baseline file."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(document, dict) or "findings" not in document:
        raise LintError(f"baseline {path} has no 'findings' list")
    keys: Counter = Counter()
    for row in document["findings"]:
        try:
            keys[(row["path"], row["rule"], row["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise LintError(f"malformed baseline entry {row!r}") from exc
    return keys


def save_baseline(findings: Iterable[Finding], path: Path) -> None:
    """Write ``findings`` as the new grandfathered baseline."""
    document = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": f.path, "rule": f.rule_id, "message": f.message}
            for f in sorted(
                findings, key=lambda f: (f.path, f.rule_id, f.line, f.col)
            )
        ],
    }
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def filter_findings(
    findings: Iterable[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, grandfathered)`` against ``baseline``."""
    remaining = Counter(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = finding.key()
        if remaining[key] > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered
