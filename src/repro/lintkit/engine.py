"""The reprolint engine: file discovery, parsing, rule dispatch, filtering.

The engine is deliberately boring: collect ``.py`` files, parse each once,
run every selected rule over the shared :class:`FileContext`, drop findings
silenced by inline suppressions, and sort what remains. Baseline handling
and reporting live in their own modules; the CLI composes the pieces.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Type

from ..errors import LintError
from .findings import Finding, Severity
from .rules import FileContext, Rule, all_rules
from .suppressions import parse_suppressions

__all__ = [
    "PARSE_ERROR_RULE_ID",
    "Linter",
    "iter_python_files",
    "lint_paths",
]

#: Pseudo rule id reported when a file cannot be parsed at all.
PARSE_ERROR_RULE_ID = "RPR000"


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files or directories), sorted."""
    seen: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


class Linter:
    """Run a set of rules over files and return unsuppressed findings."""

    def __init__(
        self,
        rules: Optional[Sequence[Type[Rule]]] = None,
        select: Optional[Iterable[str]] = None,
    ) -> None:
        available = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.rule_id for rule in available}
            if unknown:
                raise LintError(
                    f"unknown rule id(s): {', '.join(sorted(unknown))}"
                )
            available = [r for r in available if r.rule_id in wanted]
        self.rules: List[Rule] = [rule_cls() for rule_cls in available]

    @staticmethod
    def _package_relpath(path: Path) -> str:
        """Path of ``path`` relative to its enclosing ``repro`` package."""
        parts = path.resolve().parts
        for index in range(len(parts) - 1, 0, -1):
            if parts[index - 1] == "repro":
                return "/".join(parts[index:])
        return ""

    def lint_file(self, path: Path) -> List[Finding]:
        """Findings for one file, already suppression-filtered and sorted."""
        display = str(path)
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            return [
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule_id=PARSE_ERROR_RULE_ID,
                    severity=Severity.ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        ctx = FileContext(
            path=display,
            package_relpath=self._package_relpath(Path(path)),
            tree=tree,
            source=source,
        )
        suppressions = parse_suppressions(source)
        findings = [
            finding
            for rule in self.rules
            for finding in rule.check(ctx)
            if not suppressions.is_suppressed(finding)
        ]
        findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
        return findings

    def lint_paths(self, paths: Iterable[Path]) -> List[Finding]:
        """Findings for every python file under ``paths``, in path order."""
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.lint_file(path))
        return findings


def lint_paths(
    paths: Iterable[Path],
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Convenience wrapper: lint ``paths`` with the default rule set."""
    return Linter(select=select).lint_paths(paths)
