"""The reprolint engine: file discovery, parsing, rule dispatch, filtering.

The engine runs in two phases. Phase 1 collects and parses every ``.py``
file in the batch and builds one :class:`ProjectIndex` (symbol table,
imports, signatures) over all of them. Phase 2 runs every selected rule
over each file's :class:`FileContext` — which carries the shared index, so
flow-sensitive rules (RPR101–RPR104) can see across file boundaries —
drops findings silenced by inline suppressions, and sorts what remains.
Phase 2 can fan out over a process pool (``lint_paths(..., jobs=N)`` /
``wsnlink lint --jobs N``): workers receive only the plain file-name list
and rule selection, rebuild the index once each, and check disjoint file
slices — byte-identical output to the serial path. Baseline handling and
reporting live in their own modules; the CLI composes the pieces.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

from ..errors import LintError
from .findings import Finding, Severity
from .rules import FileContext, Rule, all_rules
from .semantic.symbols import ProjectIndex
from .suppressions import parse_suppressions

__all__ = [
    "PARSE_ERROR_RULE_ID",
    "Linter",
    "iter_python_files",
    "lint_paths",
]

#: Pseudo rule id reported when a file cannot be parsed at all.
PARSE_ERROR_RULE_ID = "RPR000"


class _ParsedFile:
    """One successfully parsed file awaiting phase-2 rule dispatch."""

    __slots__ = ("display", "package_relpath", "tree", "source")

    def __init__(
        self,
        display: str,
        package_relpath: str,
        tree: ast.Module,
        source: str,
    ) -> None:
        self.display = display
        self.package_relpath = package_relpath
        self.tree = tree
        self.source = source


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files or directories), sorted."""
    seen: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


class Linter:
    """Run a set of rules over files and return unsuppressed findings."""

    def __init__(
        self,
        rules: Optional[Sequence[Type[Rule]]] = None,
        select: Optional[Iterable[str]] = None,
    ) -> None:
        available = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.rule_id for rule in available}
            if unknown:
                raise LintError(
                    f"unknown rule id(s): {', '.join(sorted(unknown))}"
                )
            available = [r for r in available if r.rule_id in wanted]
        self.rules: List[Rule] = [rule_cls() for rule_cls in available]

    @staticmethod
    def _package_relpath(path: Path) -> str:
        """Path of ``path`` relative to its enclosing ``repro`` package."""
        parts = path.resolve().parts
        for index in range(len(parts) - 1, 0, -1):
            if parts[index - 1] == "repro":
                return "/".join(parts[index:])
        return ""

    def _load(self, path: Path) -> Union[Finding, "_ParsedFile"]:
        """Phase-1 parse of one file: a parsed record, or an RPR000 finding."""
        display = str(path)
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            return Finding(
                path=display,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule_id=PARSE_ERROR_RULE_ID,
                severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        return _ParsedFile(
            display=display,
            package_relpath=self._package_relpath(Path(path)),
            tree=tree,
            source=source,
        )

    def _check(
        self, parsed: "_ParsedFile", project: ProjectIndex
    ) -> List[Finding]:
        """Phase-2 rule dispatch over one already-parsed file."""
        ctx = FileContext(
            path=parsed.display,
            package_relpath=parsed.package_relpath,
            tree=parsed.tree,
            source=parsed.source,
            project=project,
        )
        suppressions = parse_suppressions(parsed.source, tree=parsed.tree)
        findings = [
            finding
            for rule in self.rules
            for finding in rule.check(ctx)
            if not suppressions.is_suppressed(finding)
        ]
        findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
        return findings

    def lint_file(self, path: Path) -> List[Finding]:
        """Findings for one file, already suppression-filtered and sorted.

        The project index covers just this file, so cross-file rules see a
        single-module project — handy for tests and spot checks; batch runs
        should use :meth:`lint_paths` for full cross-module resolution.
        """
        loaded = self._load(path)
        if isinstance(loaded, Finding):
            return [loaded]
        project = ProjectIndex.build(
            [(loaded.display, loaded.package_relpath, loaded.tree)]
        )
        return self._check(loaded, project)

    def lint_paths(
        self, paths: Iterable[Path], jobs: int = 1
    ) -> List[Finding]:
        """Findings for every python file under ``paths``, in path order.

        With ``jobs > 1`` the per-file rule phase fans out over a process
        pool: every worker builds the same phase-1 :class:`ProjectIndex`
        from the same file list (plain path strings cross the process
        boundary, nothing else), then checks its slice of files. Output
        order and content are identical to the serial path.
        """
        if jobs < 1:
            raise LintError(f"jobs must be >= 1, got {jobs}")
        files = list(iter_python_files(paths))
        if jobs > 1 and len(files) > 1:
            return self._lint_parallel(files, jobs)
        loaded = [self._load(path) for path in files]
        project = ProjectIndex.build(
            [
                (record.display, record.package_relpath, record.tree)
                for record in loaded
                if isinstance(record, _ParsedFile)
            ]
        )
        findings: List[Finding] = []
        for record in loaded:
            if isinstance(record, Finding):
                findings.append(record)
            else:
                findings.extend(self._check(record, project))
        return findings

    def _lint_parallel(self, files: List[Path], jobs: int) -> List[Finding]:
        """Fan the rule phase out over a process pool (same output order).

        The parent builds the shared :class:`ProjectIndex` (and pre-warms
        the lazy project-level analyses) *before* the pool starts, so on
        fork platforms every worker inherits the finished phase-1 state
        copy-on-write and pays nothing per process; on spawn platforms the
        initializer's plain file list lets each worker rebuild it once.
        """
        import multiprocessing

        global _WORKER_ARGS, _WORKER_STATE
        file_names = [str(path) for path in files]
        select = sorted(rule.rule_id for rule in self.rules)
        processes = min(jobs, len(file_names))
        chunksize = max(1, len(file_names) // (processes * 4))
        _WORKER_ARGS = (file_names, select)
        _WORKER_STATE = None
        _worker_state()  # build + warm in the parent, pre-fork
        try:
            with multiprocessing.get_context().Pool(
                processes=processes,
                initializer=_worker_init,
                initargs=(file_names, select),
            ) as pool:
                per_file = pool.map(_worker_lint_file, file_names, chunksize)
        finally:
            _WORKER_ARGS = None
            _WORKER_STATE = None
        return [finding for findings in per_file for finding in findings]


#: Per-worker lint state: ``(file names, selected rule ids)`` seeded by the
#: pool initializer; the heavy state (linter, parsed files, project index)
#: is built lazily on the first task and cached alongside.
_WORKER_ARGS: Optional[Tuple[List[str], List[str]]] = None
_WORKER_STATE: Optional[Tuple["Linter", Dict[str, object], ProjectIndex]] = (
    None
)


def _worker_init(file_names: List[str], select: List[str]) -> None:
    """Process-pool initializer: record the batch as plain data only.

    On fork platforms ``_WORKER_STATE`` arrives pre-built from the parent
    and is kept; on spawn platforms it is ``None`` here and the first task
    builds it from these plain arguments.
    """
    global _WORKER_ARGS
    _WORKER_ARGS = (list(file_names), list(select))


def _worker_state() -> Tuple["Linter", Dict[str, object], ProjectIndex]:
    """This worker's linter + parsed batch + index, built once per process."""
    global _WORKER_STATE
    if _WORKER_STATE is None:
        if _WORKER_ARGS is None:
            raise LintError("lint worker used outside a pool initializer")
        file_names, select = _WORKER_ARGS
        linter = Linter(select=select or None)
        records: Dict[str, object] = {
            name: linter._load(Path(name)) for name in file_names
        }
        project = ProjectIndex.build(
            [
                (record.display, record.package_relpath, record.tree)
                for record in records.values()
                if isinstance(record, _ParsedFile)
            ]
        )
        # Force the project-level analyses now so fork workers inherit the
        # computed caches instead of each redoing the expensive passes.
        project.call_graph()
        project.purity()
        project.units()
        project.rng_taint()
        project.concurrency()
        project.shapes()
        _WORKER_STATE = (linter, records, project)
    return _WORKER_STATE


def _worker_lint_file(file_name: str) -> List[Finding]:
    """Phase-2 rule dispatch for one file inside a pool worker."""
    linter, records, project = _worker_state()
    record = records[file_name]
    if isinstance(record, Finding):
        return [record]
    assert isinstance(record, _ParsedFile)
    return linter._check(record, project)


def lint_paths(
    paths: Iterable[Path],
    select: Optional[Iterable[str]] = None,
    jobs: int = 1,
) -> List[Finding]:
    """Convenience wrapper: lint ``paths`` with the default rule set."""
    return Linter(select=select).lint_paths(paths, jobs=jobs)
