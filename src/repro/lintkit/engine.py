"""The reprolint engine: file discovery, parsing, rule dispatch, filtering.

The engine runs in two phases. Phase 1 collects and parses every ``.py``
file in the batch and builds one :class:`ProjectIndex` (symbol table,
imports, signatures) over all of them. Phase 2 runs every selected rule
over each file's :class:`FileContext` — which carries the shared index, so
flow-sensitive rules (RPR101–RPR104) can see across file boundaries —
drops findings silenced by inline suppressions, and sorts what remains.
Baseline handling and reporting live in their own modules; the CLI
composes the pieces.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Type, Union

from ..errors import LintError
from .findings import Finding, Severity
from .rules import FileContext, Rule, all_rules
from .semantic.symbols import ProjectIndex
from .suppressions import parse_suppressions

__all__ = [
    "PARSE_ERROR_RULE_ID",
    "Linter",
    "iter_python_files",
    "lint_paths",
]

#: Pseudo rule id reported when a file cannot be parsed at all.
PARSE_ERROR_RULE_ID = "RPR000"


class _ParsedFile:
    """One successfully parsed file awaiting phase-2 rule dispatch."""

    __slots__ = ("display", "package_relpath", "tree", "source")

    def __init__(
        self,
        display: str,
        package_relpath: str,
        tree: ast.Module,
        source: str,
    ) -> None:
        self.display = display
        self.package_relpath = package_relpath
        self.tree = tree
        self.source = source


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files or directories), sorted."""
    seen: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


class Linter:
    """Run a set of rules over files and return unsuppressed findings."""

    def __init__(
        self,
        rules: Optional[Sequence[Type[Rule]]] = None,
        select: Optional[Iterable[str]] = None,
    ) -> None:
        available = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.rule_id for rule in available}
            if unknown:
                raise LintError(
                    f"unknown rule id(s): {', '.join(sorted(unknown))}"
                )
            available = [r for r in available if r.rule_id in wanted]
        self.rules: List[Rule] = [rule_cls() for rule_cls in available]

    @staticmethod
    def _package_relpath(path: Path) -> str:
        """Path of ``path`` relative to its enclosing ``repro`` package."""
        parts = path.resolve().parts
        for index in range(len(parts) - 1, 0, -1):
            if parts[index - 1] == "repro":
                return "/".join(parts[index:])
        return ""

    def _load(self, path: Path) -> Union[Finding, "_ParsedFile"]:
        """Phase-1 parse of one file: a parsed record, or an RPR000 finding."""
        display = str(path)
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            return Finding(
                path=display,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule_id=PARSE_ERROR_RULE_ID,
                severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        return _ParsedFile(
            display=display,
            package_relpath=self._package_relpath(Path(path)),
            tree=tree,
            source=source,
        )

    def _check(
        self, parsed: "_ParsedFile", project: ProjectIndex
    ) -> List[Finding]:
        """Phase-2 rule dispatch over one already-parsed file."""
        ctx = FileContext(
            path=parsed.display,
            package_relpath=parsed.package_relpath,
            tree=parsed.tree,
            source=parsed.source,
            project=project,
        )
        suppressions = parse_suppressions(parsed.source, tree=parsed.tree)
        findings = [
            finding
            for rule in self.rules
            for finding in rule.check(ctx)
            if not suppressions.is_suppressed(finding)
        ]
        findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
        return findings

    def lint_file(self, path: Path) -> List[Finding]:
        """Findings for one file, already suppression-filtered and sorted.

        The project index covers just this file, so cross-file rules see a
        single-module project — handy for tests and spot checks; batch runs
        should use :meth:`lint_paths` for full cross-module resolution.
        """
        loaded = self._load(path)
        if isinstance(loaded, Finding):
            return [loaded]
        project = ProjectIndex.build(
            [(loaded.display, loaded.package_relpath, loaded.tree)]
        )
        return self._check(loaded, project)

    def lint_paths(self, paths: Iterable[Path]) -> List[Finding]:
        """Findings for every python file under ``paths``, in path order."""
        loaded = [self._load(path) for path in iter_python_files(paths)]
        project = ProjectIndex.build(
            [
                (record.display, record.package_relpath, record.tree)
                for record in loaded
                if isinstance(record, _ParsedFile)
            ]
        )
        findings: List[Finding] = []
        for record in loaded:
            if isinstance(record, Finding):
                findings.append(record)
            else:
                findings.extend(self._check(record, project))
        return findings


def lint_paths(
    paths: Iterable[Path],
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Convenience wrapper: lint ``paths`` with the default rule set."""
    return Linter(select=select).lint_paths(paths)
