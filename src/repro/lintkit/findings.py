"""Finding and severity types shared by every reprolint rule.

A :class:`Finding` is one violation at one source location. Findings are
value objects: the tuple ``(path, rule_id, message)`` identifies a finding
for baseline matching (line numbers churn too much to key on), while the
full record carries the location for reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = [
    "Severity",
    "Finding",
]


class Severity(enum.Enum):
    """How serious a finding is; ``ERROR`` findings should block a merge."""

    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric ordering: higher is more severe."""
        return {"warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location in one file."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    suggestion: str = field(default="")

    def key(self) -> Tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.path, self.rule_id, self.message)

    def format(self) -> str:
        """Render as a classic ``path:line:col: RULE severity: message`` line."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity.value}: {self.message}"
        )
        if self.suggestion:
            text += f" [{self.suggestion}]"
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable record (the JSON reporter's row schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "suggestion": self.suggestion,
        }
