"""Inline-suppression syntax for reprolint.

Two comment forms are recognized anywhere a comment may appear:

* ``# reprolint: disable=RPR001,RPR004`` — suppress those rules on the
  physical line the comment sits on (the line a finding is anchored to);
  ``# reprolint: disable`` with no rule list suppresses every rule there.
* ``# reprolint: disable-file=RPR005`` — suppress those rules for the whole
  file; the bare form ``disable-file`` silences the file entirely.

Suppressions are parsed from the token stream, so they work on lines that
hold only a comment as well as trailing comments.

One scope extension exists for the concurrency tier: a ``disable``
directive whose line opens a ``with`` statement suppresses the named rules
across the *whole* guarded block, not just the header line. RPR201/RPR202
findings are anchored at the access inside the block, but the reviewed
decision ("this lock-free read is intentional") belongs on the ``with``
line — so that is where the directive goes.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .findings import Finding

__all__ = [
    "ALL_RULES",
    "Suppressions",
    "parse_suppressions",
]

#: Sentinel rule-id meaning "every rule".
ALL_RULES = "*"

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable-file|disable)\s*(?:=\s*(?P<rules>[A-Z0-9,\s]+))?"
)


@dataclass
class Suppressions:
    """Parsed suppression directives for one source file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)
    #: ``(first_line, last_line, rules)`` spans from directives sitting on
    #: a ``with``-statement header; findings anchored anywhere inside the
    #: block (header included) are silenced for those rules.
    block_ranges: List[Tuple[int, int, FrozenSet[str]]] = field(
        default_factory=list
    )

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a line, block, or file directive."""
        for scope in (self.file_wide, self.by_line.get(finding.line, ())):
            if ALL_RULES in scope or finding.rule_id in scope:
                return True
        for start, end, rules in self.block_ranges:
            if start <= finding.line <= end and (
                ALL_RULES in rules or finding.rule_id in rules
            ):
                return True
        return False


def _parse_rule_list(raw: "str | None") -> FrozenSet[str]:
    if raw is None:
        return frozenset({ALL_RULES})
    rules = frozenset(part.strip() for part in raw.split(",") if part.strip())
    return rules or frozenset({ALL_RULES})


def parse_suppressions(
    source: str, tree: Optional[ast.Module] = None
) -> Suppressions:
    """Extract all ``# reprolint:`` directives from ``source``.

    When the file's parsed ``tree`` is supplied, a ``disable`` directive on
    a ``with``-statement header line is widened to the statement's whole
    line span, so findings attributed anywhere inside the guarded block
    are suppressed too (the concurrency rules anchor findings at accesses
    deep inside lock scopes).
    """
    suppressions = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        rules = _parse_rule_list(match.group("rules"))
        if match.group("kind") == "disable-file":
            suppressions.file_wide.update(rules)
        else:
            suppressions.by_line.setdefault(token.start[0], set()).update(rules)
    if tree is not None and suppressions.by_line:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            rules = suppressions.by_line.get(node.lineno)
            if not rules:
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            suppressions.block_ranges.append(
                (node.lineno, end, frozenset(rules))
            )
    return suppressions
