"""Vectorized end-to-end path composition over a routing table.

The paper's models yield *per-link* metrics; a routed deployment cares
about *per-path* ones. Composition semantics across the hops of a
leaf→sink path:

* energy adds — every relay spends its own µJ/bit forwarding the packet;
* delay adds — per-hop service + queueing delays are in series;
* delivery multiplies — a packet survives the path iff it survives every
  hop, so path loss is ``1 − Π(1 − PLR_hop)``;
* goodput is the path minimum — the tightest hop caps the flow.

:func:`compose_paths` computes all four for *every* in-tree node in one
hop-level sweep: nodes at depth *d* gather their parent's cumulative
columns and their own uplink's per-edge metrics in a handful of fancy
gathers, so the whole fleet costs ``O(max_depth)`` numpy passes rather
than one Python walk per path. :func:`compose_paths_scalar` is the
deliberately naive per-hop reference walk the kernels are pinned against
(within 1e-9) in ``tests/test_routing.py``.
"""

# reprolint: hot-path — per-step path composition timed by BENCH_routing.json
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import RoutingError
from .table import RoutingTable

__all__ = [
    "PathMetrics",
    "compose_paths",
    "compose_paths_scalar",
]


@dataclass(frozen=True)
class PathMetrics:
    """Cumulative node→sink path metrics, one column entry per node.

    Entry *i* describes the whole path from node *i* to the sink:
    ``energy_uj_per_bit`` and ``delay_ms`` are hop sums,
    ``delivery_prob`` the product of per-hop success probabilities, and
    ``goodput_kbps`` the bottleneck hop's goodput. The sink row is the
    additive/multiplicative identity (0 / 0 / 1 / inf); excluded nodes
    carry NaN. ``leaf_nodes`` indexes the rows that are full
    leaf→sink paths.
    """

    energy_uj_per_bit: np.ndarray
    delay_ms: np.ndarray
    delivery_prob: np.ndarray
    goodput_kbps: np.ndarray
    leaf_nodes: np.ndarray

    def __post_init__(self) -> None:
        for name in (
            "energy_uj_per_bit",
            "delay_ms",
            "delivery_prob",
            "goodput_kbps",
            "leaf_nodes",
        ):
            getattr(self, name).setflags(write=False)

    @property
    def loss_prob(self) -> np.ndarray:
        """Per-node path loss probability, ``1 − delivery``."""
        return 1.0 - self.delivery_prob

    @property
    def n_paths(self) -> int:
        """Leaf→sink paths described by :attr:`leaf_nodes`."""
        return int(self.leaf_nodes.size)

    def leaf_feasible(self, max_path_loss: Optional[float]) -> np.ndarray:
        """Which leaf paths meet ``P(loss) <= max_path_loss``.

        ``None`` means unconstrained: every path with a finite loss (i.e.
        every composed path) passes.
        """
        loss = self.loss_prob[self.leaf_nodes]
        if max_path_loss is None:
            return np.isfinite(loss)
        return loss <= float(max_path_loss)

    def stats(self) -> Dict[str, object]:
        """Leaf-path summary, JSON-ready."""
        leaves = self.leaf_nodes
        loss = self.loss_prob[leaves]
        delay = self.delay_ms[leaves]
        if leaves.size == 0:
            return {"n_paths": 0}
        return {
            "n_paths": int(leaves.size),
            "path_loss_max": float(loss.max()),
            "path_loss_mean": float(loss.mean()),
            "path_delay_max_ms": float(delay.max()),
            "path_delay_mean_ms": float(delay.mean()),
        }


def _uplink_columns(
    table: RoutingTable, column: np.ndarray, n_edges: int
) -> np.ndarray:
    """Validate one per-edge metric column against the table's edges."""
    values = np.asarray(column, dtype=float)
    if values.ndim != 1 or values.shape[0] != n_edges:
        raise RoutingError(
            f"per-edge metric columns must be 1-D of length {n_edges}, "
            f"got shape {values.shape}"
        )
    return values


def compose_paths(
    table: RoutingTable,
    *,
    energy_uj_per_bit: np.ndarray,
    delay_ms: np.ndarray,
    plr_total: np.ndarray,
    goodput_kbps: np.ndarray,
) -> PathMetrics:
    """Compose per-edge metrics into per-node path metrics, vectorized.

    Inputs are per-*edge* columns aligned with the topology edge order
    the table was built from (only tree uplink edges are read). One
    segmented sweep per hop level: every node at depth *d* extends its
    parent's cumulative row by its own uplink metrics with four fancy
    gathers — no per-path Python.
    """
    n_edges = int(np.shape(energy_uj_per_bit)[0])
    energy = _uplink_columns(table, energy_uj_per_bit, n_edges)
    delay = _uplink_columns(table, delay_ms, n_edges)
    plr = _uplink_columns(table, plr_total, n_edges)
    goodput = _uplink_columns(table, goodput_kbps, n_edges)
    max_edge = int(table.parent_edge.max(initial=-1))
    if max_edge >= n_edges:
        raise RoutingError(
            f"routing table references edge {max_edge} but only "
            f"{n_edges} per-edge metric rows were given"
        )

    n_nodes = table.n_nodes
    path_energy = np.full(n_nodes, np.nan)
    path_delay = np.full(n_nodes, np.nan)
    path_delivery = np.full(n_nodes, np.nan)
    path_goodput = np.full(n_nodes, np.nan)
    path_energy[table.sink] = 0.0
    path_delay[table.sink] = 0.0
    path_delivery[table.sink] = 1.0
    path_goodput[table.sink] = np.inf

    starts = table.level_starts
    ordered = table.level_nodes
    for level in range(1, starts.shape[0] - 1):
        nodes = ordered[starts[level] : starts[level + 1]]
        parents = table.parent[nodes]
        uplinks = table.parent_edge[nodes]
        path_energy[nodes] = path_energy[parents] + energy[uplinks]
        path_delay[nodes] = path_delay[parents] + delay[uplinks]
        path_delivery[nodes] = path_delivery[parents] * (1.0 - plr[uplinks])
        path_goodput[nodes] = np.minimum(
            path_goodput[parents], goodput[uplinks]
        )

    return PathMetrics(
        energy_uj_per_bit=path_energy,
        delay_ms=path_delay,
        delivery_prob=path_delivery,
        goodput_kbps=path_goodput,
        leaf_nodes=table.leaf_nodes.copy(),
    )


def compose_paths_scalar(
    table: RoutingTable,
    *,
    energy_uj_per_bit: np.ndarray,
    delay_ms: np.ndarray,
    plr_total: np.ndarray,
    goodput_kbps: np.ndarray,
) -> PathMetrics:
    """Per-hop reference walk of :func:`compose_paths` (test oracle).

    Walks every node's parent chain in Python, accumulating from the sink
    end outward — the summation order the vectorized level sweep uses —
    so the two implementations agree to float rounding (pinned ≤ 1e-9).
    """
    energy = np.asarray(energy_uj_per_bit, dtype=float)
    delay = np.asarray(delay_ms, dtype=float)
    plr = np.asarray(plr_total, dtype=float)
    goodput = np.asarray(goodput_kbps, dtype=float)

    n_nodes = table.n_nodes
    path_energy = [float("nan")] * n_nodes
    path_delay = [float("nan")] * n_nodes
    path_delivery = [float("nan")] * n_nodes
    path_goodput = [float("nan")] * n_nodes
    hops = table.hop_count
    for node in range(n_nodes):
        if hops[node] < 0:
            continue
        chain = []
        cursor = node
        while cursor != table.sink:
            chain.append(int(table.parent_edge[cursor]))
            cursor = int(table.parent[cursor])
        total_energy = 0.0
        total_delay = 0.0
        total_delivery = 1.0
        bottleneck = float("inf")
        for edge_index in reversed(chain):
            total_energy += float(energy[edge_index])
            total_delay += float(delay[edge_index])
            total_delivery *= 1.0 - float(plr[edge_index])
            bottleneck = min(bottleneck, float(goodput[edge_index]))
        path_energy[node] = total_energy
        path_delay[node] = total_delay
        path_delivery[node] = total_delivery
        path_goodput[node] = bottleneck
    return PathMetrics(
        energy_uj_per_bit=np.asarray(path_energy),
        delay_ms=np.asarray(path_delay),
        delivery_prob=np.asarray(path_delivery),
        goodput_kbps=np.asarray(path_goodput),
        leaf_nodes=table.leaf_nodes.copy(),
    )
