"""Relay congestion: traffic aggregation through the queueing models.

A relay's radio does not care that the paper's models were fitted one
link at a time: its arrival rate is its *own* sampling rate plus every
packet its children successfully hand it. That coupling is a fixed
point — arrival rates determine utilization, utilization determines
queue blocking, blocking determines how much traffic each child actually
delivers upward, which determines the arrival rates.

:func:`iterate_relay_load` solves it by damped iteration, entirely in
per-node numpy columns. Only the t_pkt-dependent tail of the Table III
composition is re-evaluated per sweep
(:func:`~repro.core.optimization.queue_composition_columns` — the same
code path the grid kernels run, so a node at its fixed-point arrival
rate carries exactly the metrics a single-link evaluation at that
packet period would produce); the per-hop service time and radio loss
are computed once and reused.
"""

# reprolint: hot-path — relay-load fixed point timed by BENCH_routing.json
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.optimization import queue_composition_columns
from ..errors import RoutingError
from .table import RoutingTable

__all__ = [
    "RelayLoadResult",
    "iterate_relay_load",
]

#: Arrival rates below this floor (packets/s) are treated as silent
#: uplinks; avoids the 1/rate packet-period blowing up to inf.
MIN_ARRIVAL_PPS = 1e-12


@dataclass(frozen=True)
class RelayLoadResult:
    """Fixed point of the relay-load iteration, per-node columns.

    ``arrival_pps[i]`` is node *i*'s uplink arrival rate (own sampling
    plus delivered child traffic), ``delivered_pps[i]`` what survives its
    uplink, ``t_pkt_eff_ms[i]`` the effective packet period its queueing
    metrics were evaluated at. ``metrics`` holds the congestion-adjusted
    per-node uplink columns (``rho``, ``delay_ms``, ``plr_queue``,
    ``plr_total``). Sink and excluded rows are 0 / NaN placeholders.
    """

    arrival_pps: np.ndarray
    delivered_pps: np.ndarray
    t_pkt_eff_ms: np.ndarray
    metrics: Dict[str, np.ndarray]
    n_iterations: int
    converged: bool
    max_residual_pps: float

    def stats(self) -> Dict[str, object]:
        """Scalar iteration summary, JSON-ready."""
        return {
            "n_iterations": self.n_iterations,
            "converged": self.converged,
            "max_residual_pps": self.max_residual_pps,
        }


def iterate_relay_load(
    table: RoutingTable,
    *,
    service_delay_s: np.ndarray,
    service_scv: float,
    q_max: np.ndarray,
    t_pkt_ms: np.ndarray,
    plr_radio: np.ndarray,
    link_up: np.ndarray,
    max_iterations: int = 64,
    tol_pps: float = 1e-9,
    damping: float = 1.0,
) -> RelayLoadResult:
    """Fixed-point solve of the relay arrival rates.

    All inputs are per-*node* uplink columns (length ``n_nodes``; sink
    and excluded rows ignored): the configured service time, queue bound,
    radio loss, and sampling packet period of each node's uplink, plus a
    ``link_up`` mask — a down uplink (no feasible configuration) carries
    its own offered load into the iteration but delivers nothing upward.

    Per sweep: effective packet period = ``1000 / arrival``, queueing
    metrics re-composed at that period, delivered = ``arrival × (1 −
    plr_total)``, and each parent's new arrival = own rate + Σ delivered
    children, blended with ``damping`` (1.0 = undamped Jacobi). Converges
    when the largest arrival-rate change drops below ``tol_pps``.

    Arrival rates flow strictly rootward — a node's arrival depends only
    on its descendants' deliveries, never on its own metrics — so the
    update graph is acyclic and the undamped sweep (the default) cannot
    oscillate: it is exact after at most tree-height sweeps and usually
    converges far sooner. ``damping < 1`` remains available for modified
    dynamics that do feed back.
    """
    if not 0.0 < damping <= 1.0:
        raise RoutingError(f"damping must be in (0, 1], got {damping!r}")
    if max_iterations < 1:
        raise RoutingError(
            f"max_iterations must be >= 1, got {max_iterations!r}"
        )
    n_nodes = table.n_nodes
    service_s = np.asarray(service_delay_s, dtype=float)
    qmax = np.asarray(q_max, dtype=float)
    tpkt_ms = np.asarray(t_pkt_ms, dtype=float)
    radio = np.asarray(plr_radio, dtype=float)
    up = np.asarray(link_up, dtype=bool)
    for name, column in (
        ("service_delay_s", service_s),
        ("q_max", qmax),
        ("t_pkt_ms", tpkt_ms),
        ("plr_radio", radio),
        ("link_up", up),
    ):
        if column.shape != (n_nodes,):
            raise RoutingError(
                f"{name} must be a per-node column of length {n_nodes}, "
                f"got shape {column.shape}"
            )

    uplinked = table.uplink_nodes
    active = np.zeros(n_nodes, dtype=bool)
    active[uplinked] = True
    parents = table.parent

    # Own offered rate: the configured sampling period, zero elsewhere.
    own_pps = np.zeros(n_nodes)
    own_pps[active] = 1e3 / tpkt_ms[active]

    arrival_pps = own_pps.copy()
    delivered_pps = np.zeros(n_nodes)
    queue: Dict[str, np.ndarray] = {}
    t_eff_ms = np.full(n_nodes, np.nan)
    residual = np.inf
    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        rate = np.maximum(arrival_pps, MIN_ARRIVAL_PPS)
        t_eff_ms = np.where(active, 1e3 / rate, np.nan)
        queue = queue_composition_columns(
            service_delay_s=service_s,
            service_scv=service_scv,
            q_max=qmax,
            t_pkt_ms=np.where(active, t_eff_ms, 1.0),
            plr_radio=radio,
        )
        delivered_pps = np.where(
            active & up, arrival_pps * (1.0 - queue["plr_total"]), 0.0
        )
        aggregated = own_pps.copy()
        np.add.at(aggregated, parents[uplinked], delivered_pps[uplinked])
        aggregated[~active] = 0.0
        residual = float(np.abs(aggregated - arrival_pps).max(initial=0.0))
        arrival_pps = arrival_pps + damping * (aggregated - arrival_pps)
        if residual <= tol_pps:
            converged = True
            break

    metrics = {
        name: np.where(active, column, np.nan)
        for name, column in queue.items()
    }
    return RelayLoadResult(
        arrival_pps=np.where(active, arrival_pps, 0.0),
        delivered_pps=delivered_pps,
        t_pkt_eff_ms=t_eff_ms,
        metrics=metrics,
        n_iterations=iterations,
        converged=converged,
        max_residual_pps=residual,
    )
