"""End-to-end routed optimization: per-link solves, path-level contract.

The routed objective is *"minimize total network energy subject to
``P(loss) ≤ eps`` on every leaf→sink path"*. The
:class:`RoutedFleetEngine` decomposes it the way cross-layer WSN
optimizers do:

1. the path-loss budget is split across hops —
   :func:`per_hop_loss_budget` gives the per-link PLR bound under which
   *any* path of at most ``max_hops`` hops meets the end-to-end target —
   and becomes one extra epsilon-constraint on the inner
   :class:`~repro.fleet.engine.FleetEngine`, so the per-link candidate
   solve keeps its policy-table O(1) fast path untouched;
2. the chosen per-link configurations are evaluated once into per-edge
   metric columns (one vectorized plane call for the whole fleet);
3. relay congestion is iterated to its fixed point
   (:func:`~repro.routing.congestion.iterate_relay_load`), inflating the
   queueing delay and blocking loss of loaded relays;
4. the congestion-adjusted columns are composed into per-path metrics
   (:func:`~repro.routing.compose.compose_paths`) and checked against the
   end-to-end budget — per-path feasibility lands in the step's
   :class:`~repro.fleet.engine.FleetStepReport`.

Steps 2–4 are pure numpy over struct-of-arrays columns; a 10k-node fleet
steps in a few milliseconds (``BENCH_routing.json``).
"""

# reprolint: hot-path — routed fleet step timed by BENCH_routing.json
from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.optimization import Constraint, evaluate_metric_planes
from ..errors import RoutingError
from ..fleet.engine import FleetEngine, FleetStepReport
from ..fleet.state import FleetState
from .compose import PathMetrics, compose_paths
from .congestion import RelayLoadResult, iterate_relay_load
from .table import RoutingTable

__all__ = [
    "RoutedFleetEngine",
    "per_hop_loss_budget",
]


def per_hop_loss_budget(path_loss_eps: float, max_hops: int) -> float:
    """The per-link PLR bound implied by an end-to-end path-loss budget.

    If every hop keeps ``PLR ≤ 1 − (1 − eps)^(1/H)`` then a path of at
    most ``H`` hops delivers with probability ``≥ (1 − eps)`` — the
    standard multiplicative budget split. Conservative for shorter
    paths, exact for the deepest one.
    """
    if not 0.0 < path_loss_eps < 1.0:
        raise RoutingError(
            f"path_loss_eps must be in (0, 1), got {path_loss_eps!r}"
        )
    if max_hops < 1:
        raise RoutingError(f"max_hops must be >= 1, got {max_hops!r}")
    return 1.0 - (1.0 - float(path_loss_eps)) ** (1.0 / float(max_hops))


class RoutedFleetEngine:
    """Per-link fleet solves under an end-to-end routed contract.

    Wraps an inner :class:`~repro.fleet.engine.FleetEngine` built with
    the hop-budget loss constraint folded in (so its policy table is
    compiled once for the routed constraint set and every step stays
    gather-only), then runs congestion + composition over the routing
    table each step. Drop-in for the runner: :meth:`step` has the fleet
    engine's signature and returns its report type, extended with the
    path-level columns.
    """

    def __init__(
        self,
        table: RoutingTable,
        evaluator=None,
        grid=None,
        objective: str = "energy",
        constraints: Sequence[Constraint] = (),
        path_loss_eps: Optional[float] = None,
        congestion: bool = True,
        max_load_iterations: int = 64,
        load_damping: float = 1.0,
        load_tol_pps: float = 1e-9,
        **engine_kwargs,
    ) -> None:
        self.table = table
        self.path_loss_eps = (
            float(path_loss_eps) if path_loss_eps is not None else None
        )
        self.congestion = bool(congestion)
        self.max_load_iterations = int(max_load_iterations)
        self.load_damping = float(load_damping)
        self.load_tol_pps = float(load_tol_pps)
        routed_constraints = tuple(constraints)
        if self.path_loss_eps is not None:
            budget = per_hop_loss_budget(
                self.path_loss_eps, max(1, table.max_hops)
            )
            routed_constraints += (Constraint("loss", budget),)
        self.engine = FleetEngine(
            evaluator=evaluator,
            grid=grid,
            objective=objective,
            constraints=routed_constraints,
            **engine_kwargs,
        )
        #: Path metrics of the most recent step (None before the first).
        self.last_paths: Optional[PathMetrics] = None
        #: Relay-load fixed point of the most recent step.
        self.last_load: Optional[RelayLoadResult] = None

    def __len__(self) -> int:
        return len(self.engine)

    @property
    def per_hop_loss_bound(self) -> Optional[float]:
        """The per-link PLR constraint derived from ``path_loss_eps``."""
        if self.path_loss_eps is None:
            return None
        return per_hop_loss_budget(
            self.path_loss_eps, max(1, self.table.max_hops)
        )

    def routing_info(self) -> Dict[str, object]:
        """Route construction summary (stamped into checkpoint headers)."""
        info = self.table.stats()
        info["path_loss_eps"] = self.path_loss_eps
        info["per_hop_loss_bound"] = self.per_hop_loss_bound
        info["congestion"] = self.congestion
        return info

    # -------------------------------------------------------------- step

    def _edge_metrics(
        self, state: FleetState, config_index: np.ndarray
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Per-edge Table III metrics at each link's chosen configuration.

        One 1-D vectorized plane call for the whole fleet, evaluated at
        the same quantized SNR the candidate solve used. Links with no
        feasible configuration are evaluated at row 0 (their metrics are
        masked by ``link_up`` downstream).
        """
        ptx, payload, tries, retry_ms, qmax, tpkt_ms = (
            self.engine.knob_columns
        )
        safe_index = np.where(config_index >= 0, config_index, 0)
        snr_db = (
            self.engine.quantize_snr_db(state.snr_db)
            + self.engine.config_offset_db[safe_index]
        )
        metrics = evaluate_metric_planes(
            self.engine.evaluator,
            ptx_level=ptx[safe_index],
            payload_bytes=payload[safe_index],
            n_max_tries=tries[safe_index],
            d_retry_ms=retry_ms[safe_index],
            q_max=qmax[safe_index],
            t_pkt_ms=tpkt_ms[safe_index],
            snr_db=snr_db,
        )
        return metrics, safe_index

    def _uplink_column(
        self, edge_column: np.ndarray, fill: float = np.nan
    ) -> np.ndarray:
        """Scatter one per-edge column onto per-node uplink rows."""
        table = self.table
        column = np.full(table.n_nodes, fill)
        nodes = table.uplink_nodes
        column[nodes] = edge_column[table.parent_edge[nodes]]
        return column

    def _relay_load(
        self,
        metrics: Dict[str, np.ndarray],
        safe_index: np.ndarray,
        link_up: np.ndarray,
    ) -> RelayLoadResult:
        """The congestion fixed point over the tree's uplink columns."""
        qmax_knob = self.engine.knob_columns[4]
        tpkt_knob = self.engine.knob_columns[5]
        return iterate_relay_load(
            self.table,
            service_delay_s=self._uplink_column(
                metrics["t_service_ms"] / 1e3, fill=0.0
            ),
            service_scv=self.engine.evaluator.delay_model.service_scv,
            q_max=self._uplink_column(
                qmax_knob[safe_index].astype(float), fill=1.0
            ),
            t_pkt_ms=self._uplink_column(
                tpkt_knob[safe_index], fill=1.0
            ),
            plr_radio=self._uplink_column(metrics["plr_radio"], fill=0.0),
            link_up=self._uplink_column(
                link_up.astype(float), fill=0.0
            ).astype(bool),
            max_iterations=self.max_load_iterations,
            tol_pps=self.load_tol_pps,
            damping=self.load_damping,
        )

    def step(self, state: FleetState, step_index: int = 0) -> FleetStepReport:
        """One routed step: per-link solve, congestion, path composition.

        Returns the inner engine's report extended with the path columns:
        ``n_paths`` / ``n_paths_feasible`` count leaf→sink paths against
        ``path_loss_eps`` (a path through an unconfigured link never
        passes), ``relay_*`` describe the congestion fixed point, and
        ``network_energy_uj_per_bit`` is the routed objective — the sum
        of every active uplink's per-bit energy.
        """
        table = self.table
        if len(state) != int(table.parent_edge.max(initial=-1)) + 1 and len(
            state
        ) < int(table.parent_edge.max(initial=-1)) + 1:
            raise RoutingError(
                f"state has {len(state)} links but the routing table "
                f"references edge {int(table.parent_edge.max(initial=-1))}"
            )
        report = self.engine.step(state, step_index=step_index)
        metrics, safe_index = self._edge_metrics(state, report.config_index)
        link_up = report.config_index >= 0

        load: Optional[RelayLoadResult] = None
        delay_edge = np.asarray(metrics["delay_ms"], dtype=float)
        plr_edge = np.asarray(metrics["plr_total"], dtype=float)
        if self.congestion:
            load = self._relay_load(metrics, safe_index, link_up)
            # Scatter the congestion-adjusted uplink metrics back onto
            # their edges (each tree uplink edge belongs to one node).
            nodes = table.uplink_nodes
            uplinks = table.parent_edge[nodes]
            delay_edge = delay_edge.copy()
            plr_edge = plr_edge.copy()
            delay_edge[uplinks] = load.metrics["delay_ms"][nodes]
            plr_edge[uplinks] = load.metrics["plr_total"][nodes]

        # A down link loses everything and spends nothing.
        energy_edge = np.where(link_up, metrics["u_eng_uj_per_bit"], 0.0)
        delay_edge = np.where(link_up, delay_edge, 0.0)
        plr_edge = np.where(link_up, plr_edge, 1.0)
        goodput_edge = np.where(link_up, metrics["max_goodput_kbps"], 0.0)

        paths = compose_paths(
            table,
            energy_uj_per_bit=energy_edge,
            delay_ms=delay_edge,
            plr_total=plr_edge,
            goodput_kbps=goodput_edge,
        )
        feasible = paths.leaf_feasible(self.path_loss_eps)
        feasible &= paths.delivery_prob[paths.leaf_nodes] > 0.0

        nodes = table.uplink_nodes
        uplinks = table.parent_edge[nodes]
        network_energy = float(
            np.where(link_up[uplinks], energy_edge[uplinks], 0.0).sum()
        )

        self.last_paths = paths
        self.last_load = load
        return replace(
            report,
            n_paths=paths.n_paths,
            n_paths_feasible=int(np.count_nonzero(feasible)),
            relay_iterations=load.n_iterations if load is not None else 0,
            relay_converged=load.converged if load is not None else True,
            network_energy_uj_per_bit=network_energy,
        )
