"""Multi-hop routed fleets: trees over topologies, end-to-end contracts.

The fleet layer treats every link independently; this package layers
routes on top. :mod:`~repro.routing.table` builds a deterministic
sink-rooted tree over a topology's edges (:class:`RoutingTable`, a
frozen struct-of-arrays like the topology itself),
:mod:`~repro.routing.compose` folds per-link Table III metrics into
per-path ones in one hop-level numpy sweep,
:mod:`~repro.routing.congestion` iterates relay arrival rates to their
queueing fixed point, and :mod:`~repro.routing.engine` ties them into
the routed objective — minimize total network energy subject to a
loss budget on every leaf→sink path.
"""

from .compose import PathMetrics, compose_paths, compose_paths_scalar
from .congestion import MIN_ARRIVAL_PPS, RelayLoadResult, iterate_relay_load
from .engine import RoutedFleetEngine, per_hop_loss_budget
from .table import (
    ROUTING_STRATEGIES,
    RoutingTable,
    build_routes,
    routes_for_topology,
    select_sink,
)

__all__ = [
    "MIN_ARRIVAL_PPS",
    "ROUTING_STRATEGIES",
    "PathMetrics",
    "RelayLoadResult",
    "RoutedFleetEngine",
    "RoutingTable",
    "build_routes",
    "compose_paths",
    "compose_paths_scalar",
    "iterate_relay_load",
    "per_hop_loss_budget",
    "routes_for_topology",
    "select_sink",
]
