"""Route construction: sink selection and deterministic collection trees.

A :class:`RoutingTable` is the struct-of-arrays answer to "how does every
node reach the sink": per-node parent, uplink edge, and hop count columns
plus CSR child lists and hop-level orderings, all read-only once built —
the same seeded-and-frozen contract :class:`~repro.fleet.topology.
FleetTopology` follows. Two deterministic builders cover the common WSN
collection shapes:

* ``strategy="tree"`` — breadth-first minimum-hop tree (ties broken by
  the lowest-indexed parent), the classic cluster-tree;
* ``strategy="mesh"`` — mesh-first-then-tree: Dijkstra over *all* mesh
  edges with euclidean edge cost, collapsed into the shortest-path tree
  (the neighbor-table style of mesh routing stacks).

Nodes incident to at least one edge but unreachable from the sink raise
:class:`~repro.errors.RoutingError` — a disconnected component silently
dropping traffic is exactly the failure mode routing must surface.
Degree-zero nodes (an artifact of edge-count truncation in the topology
generators) are excluded from the tree and counted, not failed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import RoutingError

__all__ = [
    "ROUTING_STRATEGIES",
    "RoutingTable",
    "build_routes",
    "routes_for_topology",
    "select_sink",
]

#: Tree-building strategies accepted by :func:`build_routes`.
ROUTING_STRATEGIES: Tuple[str, ...] = ("tree", "mesh")


def _adjacency(
    n_nodes: int, edges: Sequence[Tuple[int, int]]
) -> List[List[Tuple[int, int]]]:
    """Per-node ``(neighbor, edge_index)`` lists from undirected edges."""
    adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(n_nodes)]
    for edge_index, (u, v) in enumerate(edges):
        u, v = int(u), int(v)
        if u == v:
            raise RoutingError(f"edge {edge_index} is a self-loop on node {u}")
        if not (0 <= u < n_nodes and 0 <= v < n_nodes):
            raise RoutingError(
                f"edge {edge_index} = ({u}, {v}) references a node outside "
                f"[0, {n_nodes})"
            )
        adjacency[u].append((v, edge_index))
        adjacency[v].append((u, edge_index))
    return adjacency


def select_sink(n_nodes: int, edges: Sequence[Tuple[int, int]]) -> int:
    """The default sink: the highest-degree node, ties to the lowest index.

    Deterministic and cheap; a well-connected hub is where collection
    trees naturally root. Raises when no node has any edge.
    """
    degree = np.zeros(n_nodes, dtype=np.int64)
    for u, v in edges:
        degree[int(u)] += 1
        degree[int(v)] += 1
    if not degree.any():
        raise RoutingError("cannot select a sink: no node has any edge")
    return int(np.argmax(degree))


@dataclass(frozen=True)
class RoutingTable:
    """Read-only struct-of-arrays routes of one deployment.

    All columns have length ``n_nodes``. ``parent[i]`` is node *i*'s
    next hop toward the sink (−1 at the sink and at excluded
    degree-zero nodes), ``parent_edge[i]`` the topology edge index of
    that uplink, and ``hop_count[i]`` the path length to the sink (0 at
    the sink, −1 when excluded). ``child_offsets``/``child_nodes`` are
    the CSR-packed child lists; ``level_starts``/``level_nodes`` order
    the in-tree nodes by hop depth (level 0 is the sink alone), which is
    what the composition kernels sweep.
    """

    strategy: str
    sink: int
    parent: np.ndarray
    parent_edge: np.ndarray
    hop_count: np.ndarray
    child_offsets: np.ndarray
    child_nodes: np.ndarray
    level_starts: np.ndarray
    level_nodes: np.ndarray

    def __post_init__(self) -> None:
        n_nodes = int(self.parent.shape[0])
        for name in ("parent", "parent_edge", "hop_count"):
            column = getattr(self, name)
            if column.ndim != 1 or column.shape[0] != n_nodes:
                raise RoutingError(
                    f"routing column {name!r} must be 1-D of length "
                    f"{n_nodes}, got shape {column.shape}"
                )
        if not 0 <= self.sink < n_nodes:
            raise RoutingError(
                f"sink {self.sink} outside the {n_nodes}-node layout"
            )
        for name in (
            "parent",
            "parent_edge",
            "hop_count",
            "child_offsets",
            "child_nodes",
            "level_starts",
            "level_nodes",
        ):
            getattr(self, name).setflags(write=False)

    # ------------------------------------------------------------- shape

    @property
    def n_nodes(self) -> int:
        """Nodes in the layout (including excluded degree-zero nodes)."""
        return int(self.parent.shape[0])

    @property
    def in_tree(self) -> np.ndarray:
        """Boolean column: which nodes the tree actually reaches."""
        return self.hop_count >= 0

    @property
    def n_in_tree(self) -> int:
        """Nodes the tree reaches (sink included)."""
        return int(np.count_nonzero(self.hop_count >= 0))

    @property
    def max_hops(self) -> int:
        """Depth of the deepest node (0 for a sink-only tree)."""
        return int(self.hop_count.max(initial=0))

    @property
    def leaf_nodes(self) -> np.ndarray:
        """In-tree non-sink nodes with no children — the path endpoints."""
        n_children = np.diff(self.child_offsets)
        mask = (self.hop_count > 0) & (n_children == 0)
        return np.flatnonzero(mask)

    @property
    def n_paths(self) -> int:
        """Distinct leaf→sink paths (= number of leaves)."""
        return int(self.leaf_nodes.size)

    @property
    def relay_nodes(self) -> np.ndarray:
        """In-tree non-sink nodes that forward at least one child."""
        n_children = np.diff(self.child_offsets)
        mask = (self.hop_count > 0) & (n_children > 0)
        return np.flatnonzero(mask)

    @property
    def uplink_nodes(self) -> np.ndarray:
        """In-tree non-sink nodes — each owns exactly one uplink edge."""
        return np.flatnonzero(self.hop_count > 0)

    def children_of(self, node: int) -> np.ndarray:
        """The CSR child slice of one node."""
        start = int(self.child_offsets[node])
        stop = int(self.child_offsets[node + 1])
        return self.child_nodes[start:stop]

    def stats(self) -> Dict[str, object]:
        """Shape summary of the tree, JSON-ready."""
        return {
            "strategy": self.strategy,
            "sink": self.sink,
            "n_nodes": self.n_nodes,
            "n_in_tree": self.n_in_tree,
            "n_excluded": self.n_nodes - self.n_in_tree,
            "n_paths": self.n_paths,
            "n_relays": int(self.relay_nodes.size),
            "max_hops": self.max_hops,
        }


def _freeze_table(
    strategy: str,
    sink: int,
    parent: List[int],
    parent_edge: List[int],
    hop_count: List[int],
) -> RoutingTable:
    """Pack builder outputs into the frozen struct-of-arrays table."""
    parent_column = np.asarray(parent, dtype=np.int64)
    edge_column = np.asarray(parent_edge, dtype=np.int64)
    hop_column = np.asarray(hop_count, dtype=np.int64)
    n_nodes = parent_column.shape[0]

    # CSR child lists: sort in-tree non-sink nodes by parent, then index.
    uplinked = np.flatnonzero(hop_column > 0)
    order = uplinked[np.argsort(parent_column[uplinked], kind="stable")]
    counts = np.zeros(n_nodes, dtype=np.int64)
    np.add.at(counts, parent_column[uplinked], 1)
    child_offsets = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=child_offsets[1:])

    # Hop-level ordering: in-tree nodes sorted by depth (sink first).
    in_tree = np.flatnonzero(hop_column >= 0)
    level_nodes = in_tree[np.argsort(hop_column[in_tree], kind="stable")]
    max_depth = int(hop_column.max(initial=0))
    level_counts = np.zeros(max_depth + 1, dtype=np.int64)
    np.add.at(level_counts, hop_column[in_tree], 1)
    level_starts = np.zeros(max_depth + 2, dtype=np.int64)
    np.cumsum(level_counts, out=level_starts[1:])

    return RoutingTable(
        strategy=strategy,
        sink=int(sink),
        parent=parent_column,
        parent_edge=edge_column,
        hop_count=hop_column,
        child_offsets=child_offsets,
        child_nodes=order,
        level_starts=level_starts,
        level_nodes=level_nodes,
    )


def _check_reachability(
    adjacency: List[List[Tuple[int, int]]],
    hop_count: Sequence[int],
    sink: int,
) -> None:
    """Fail loudly when an edge-incident node never joined the tree."""
    unreachable = [
        node
        for node, neighbors in enumerate(adjacency)
        if neighbors and hop_count[node] < 0
    ]
    if unreachable:
        shown = ", ".join(str(node) for node in unreachable[:8])
        suffix = ", ..." if len(unreachable) > 8 else ""
        raise RoutingError(
            f"{len(unreachable)} node(s) are disconnected from sink {sink}: "
            f"[{shown}{suffix}] — the topology has more than one connected "
            "component (see FleetTopology.stats()['n_components'])"
        )


def _bfs_tree(
    adjacency: List[List[Tuple[int, int]]], sink: int
) -> Tuple[List[int], List[int], List[int]]:
    """Minimum-hop tree: deterministic BFS, lowest-index parent on ties."""
    n_nodes = len(adjacency)
    parent = [-1] * n_nodes
    parent_edge = [-1] * n_nodes
    hop_count = [-1] * n_nodes
    hop_count[sink] = 0
    frontier = [sink]
    while frontier:
        next_frontier: List[int] = []
        for node in frontier:
            for neighbor, edge_index in sorted(adjacency[node]):
                if hop_count[neighbor] < 0:
                    hop_count[neighbor] = hop_count[node] + 1
                    parent[neighbor] = node
                    parent_edge[neighbor] = edge_index
                    next_frontier.append(neighbor)
        next_frontier.sort()
        frontier = next_frontier
    return parent, parent_edge, hop_count


def _dijkstra_tree(
    adjacency: List[List[Tuple[int, int]]],
    edge_cost: Sequence[float],
    sink: int,
) -> Tuple[List[int], List[int], List[int]]:
    """Shortest-path tree over all mesh edges (cost ties to lower index)."""
    n_nodes = len(adjacency)
    parent = [-1] * n_nodes
    parent_edge = [-1] * n_nodes
    hop_count = [-1] * n_nodes
    distance = [float("inf")] * n_nodes
    distance[sink] = 0.0
    hop_count[sink] = 0
    # Heap entries are (cost, node); settling pops in (cost, node) order,
    # so equal-cost races resolve to the lowest node index, making the
    # tree a pure function of the topology.
    heap: List[Tuple[float, int]] = [(0.0, sink)]
    settled = [False] * n_nodes
    while heap:
        cost, node = heapq.heappop(heap)
        if settled[node]:
            continue
        settled[node] = True
        for neighbor, edge_index in sorted(adjacency[node]):
            candidate = cost + float(edge_cost[edge_index])
            if candidate < distance[neighbor]:
                distance[neighbor] = candidate
                parent[neighbor] = node
                parent_edge[neighbor] = edge_index
                hop_count[neighbor] = hop_count[node] + 1
                heapq.heappush(heap, (candidate, neighbor))
    return parent, parent_edge, hop_count


def build_routes(
    n_nodes: int,
    edges: Sequence[Tuple[int, int]],
    sink: Optional[int] = None,
    strategy: str = "tree",
    edge_cost: Optional[Sequence[float]] = None,
) -> RoutingTable:
    """Build the collection tree over raw edges (topology-independent).

    ``strategy="tree"`` ignores costs (minimum hops); ``strategy="mesh"``
    runs Dijkstra over ``edge_cost`` (unit costs when omitted, which then
    degenerates to the BFS answer modulo tie-breaks). ``sink=None``
    selects the highest-degree node. Edge-incident nodes unreachable from
    the sink raise :class:`~repro.errors.RoutingError`.
    """
    if strategy not in ROUTING_STRATEGIES:
        raise RoutingError(
            f"unknown routing strategy {strategy!r}; "
            f"valid: {list(ROUTING_STRATEGIES)}"
        )
    if n_nodes < 1:
        raise RoutingError(f"n_nodes must be >= 1, got {n_nodes!r}")
    if not edges:
        raise RoutingError("a routing table needs at least one edge")
    adjacency = _adjacency(int(n_nodes), edges)
    if sink is None:
        sink = select_sink(int(n_nodes), edges)
    sink = int(sink)
    if not 0 <= sink < n_nodes:
        raise RoutingError(
            f"sink {sink} outside the {n_nodes}-node layout"
        )
    if not adjacency[sink]:
        raise RoutingError(f"sink {sink} has no edges — nothing can reach it")
    if edge_cost is not None and len(edge_cost) != len(edges):
        raise RoutingError(
            f"edge_cost must run parallel to edges: got {len(edge_cost)} "
            f"costs for {len(edges)} edges"
        )
    if strategy == "tree":
        parent, parent_edge, hop_count = _bfs_tree(adjacency, sink)
    else:
        costs = (
            edge_cost if edge_cost is not None else [1.0] * len(edges)
        )
        parent, parent_edge, hop_count = _dijkstra_tree(
            adjacency, costs, sink
        )
    _check_reachability(adjacency, hop_count, sink)
    return _freeze_table(strategy, sink, parent, parent_edge, hop_count)


def routes_for_topology(
    topology,
    sink: Optional[int] = None,
    strategy: str = "tree",
) -> RoutingTable:
    """Routes over a :class:`~repro.fleet.topology.FleetTopology`.

    Mesh edge costs are the euclidean edge lengths (clipped to the same
    ``MIN_LINK_DISTANCE_M`` floor the topology's link specs use), so the
    shortest-path tree prefers many short hops over one marginal long
    one — the neighbor-table heuristic of mesh-first routing stacks.
    """
    from ..fleet.topology import MIN_LINK_DISTANCE_M

    positions = np.asarray(topology.positions_m, dtype=float)
    pairs = np.asarray(topology.edges, dtype=np.int64)
    deltas = positions[pairs[:, 0]] - positions[pairs[:, 1]]
    lengths_m = np.maximum(
        np.hypot(deltas[:, 0], deltas[:, 1]), MIN_LINK_DISTANCE_M
    )
    return build_routes(
        n_nodes=int(positions.shape[0]),
        edges=topology.edges,
        sink=sink,
        strategy=strategy,
        edge_cost=lengths_m.tolist(),
    )
