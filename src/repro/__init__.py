"""Reproduction of *Experimental Study for Multi-layer Parameter
Configuration of WSN Links* (Fu, Zhang, Jiang, Hu, Shih, Marrón — ICDCS 2015).

The package rebuilds the paper's testbed as a simulator and its contribution
as a library:

* :mod:`repro.radio`, :mod:`repro.channel`, :mod:`repro.mac`,
  :mod:`repro.queueing`, :mod:`repro.sim` — the TelosB/CC2420/TinyOS link
  substrate (Sec. II);
* :mod:`repro.campaign`, :mod:`repro.analysis` — the measurement campaign
  and its aggregation (Sec. II-C, III-A);
* :mod:`repro.core` — the empirical models (Eqs. 2–9), SNR zones, tuning
  guidelines and multi-objective optimization (Sec. III-B through VIII);
* :mod:`repro.extensions` — interference, LPL and mobility (Sec. VIII-D).

Quickstart::

    from repro import StackConfig, simulate_link, compute_metrics

    config = StackConfig(distance_m=35.0, ptx_level=23, n_max_tries=3,
                         q_max=30, t_pkt_ms=30.0, payload_bytes=110)
    metrics = compute_metrics(simulate_link(config, n_packets=1000, seed=1))
    print(metrics.goodput_kbps, metrics.energy_per_info_bit_uj)
"""

from .analysis import LinkMetrics, compute_metrics
from .campaign import CampaignDataset, CampaignRunner, run_reference_campaign
from .channel import Environment, HALLWAY_2012, LinkChannel, QUIET_HALLWAY
from .config import (
    MAX_PAYLOAD_BYTES,
    PACKETS_PER_CONFIG,
    ParameterSpace,
    SMOKE_SPACE,
    StackConfig,
    TABLE_I_SPACE,
    VALID_PTX_LEVELS,
)
from .core import (
    DelayModel,
    EnergyModel,
    GoodputModel,
    GuidelineEngine,
    NtriesModel,
    PerModel,
    PlrRadioModel,
    ServiceTimeModel,
    classify_snr,
    in_grey_zone,
)
from .errors import (
    CampaignError,
    ChannelError,
    ConfigurationError,
    DatasetError,
    FittingError,
    InfeasibleError,
    OptimizationError,
    RadioError,
    ReproError,
    SimulationError,
)
from .sim import FastLink, LinkTrace, SimulationOptions, simulate_link

__version__ = "1.0.0"

__all__ = [
    "CampaignDataset",
    "CampaignError",
    "CampaignRunner",
    "ChannelError",
    "ConfigurationError",
    "DatasetError",
    "DelayModel",
    "EnergyModel",
    "Environment",
    "FastLink",
    "FittingError",
    "GoodputModel",
    "GuidelineEngine",
    "HALLWAY_2012",
    "InfeasibleError",
    "LinkChannel",
    "LinkMetrics",
    "LinkTrace",
    "MAX_PAYLOAD_BYTES",
    "NtriesModel",
    "OptimizationError",
    "PACKETS_PER_CONFIG",
    "ParameterSpace",
    "PerModel",
    "PlrRadioModel",
    "QUIET_HALLWAY",
    "RadioError",
    "ReproError",
    "SMOKE_SPACE",
    "ServiceTimeModel",
    "SimulationError",
    "SimulationOptions",
    "StackConfig",
    "TABLE_I_SPACE",
    "VALID_PTX_LEVELS",
    "classify_snr",
    "compute_metrics",
    "in_grey_zone",
    "run_reference_campaign",
    "simulate_link",
    "__version__",
]
