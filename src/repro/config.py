"""Stack parameter configurations (the paper's Table I).

A :class:`StackConfig` bundles the 7 stack parameters the paper sweeps:

========= ==================== ==========================================
Layer     Parameter            Field
========= ==================== ==========================================
PHY       distance (m)         ``distance_m``
PHY       TX power level       ``ptx_level`` (CC2420 PA_LEVEL register)
MAC       max transmissions    ``n_max_tries``
MAC       retry delay (ms)     ``d_retry_ms``
MAC       max queue size       ``q_max``
App       packet interval (ms) ``t_pkt_ms``
App       payload size (bytes) ``payload_bytes`` (l_D)
========= ==================== ==========================================

:data:`TABLE_I_SPACE` reconstructs the sweep grid of the paper's experiment
(8 × 7 × 4 × 3 × 2 × 6 = 8064 settings per distance, 6 distances, 48,384
configurations total — "close to 50 thousand").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Mapping, Sequence, Tuple

from .errors import ConfigurationError

__all__ = [
    "VALID_PTX_LEVELS",
    "MAX_PAYLOAD_BYTES",
    "PACKETS_PER_CONFIG",
    "StackConfig",
    "ParameterSpace",
    "TABLE_I_SPACE",
    "SMOKE_SPACE",
]

#: Valid CC2420 PA_LEVEL register values used by the paper (odd steps of 4).
VALID_PTX_LEVELS: Tuple[int, ...] = (3, 7, 11, 15, 19, 23, 27, 31)

#: Maximum payload supported by the paper's radio stack (bytes).
MAX_PAYLOAD_BYTES = 114

#: Number of packets sent per configuration in the paper's campaign.
PACKETS_PER_CONFIG = 4500


@dataclass(frozen=True, order=True)
class StackConfig:
    """One multi-layer stack parameter configuration.

    Instances are immutable and hashable so they can key campaign datasets.
    Construction validates every field against the physical limits of the
    reproduced platform (CC2420 / TinyOS 2.1); use :meth:`with_updates` to
    derive variants.
    """

    distance_m: float = 10.0
    ptx_level: int = 31
    n_max_tries: int = 1
    d_retry_ms: float = 0.0
    q_max: int = 1
    t_pkt_ms: float = 100.0
    payload_bytes: int = 110

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ConfigurationError(
                f"distance_m must be positive, got {self.distance_m!r}"
            )
        if self.ptx_level not in VALID_PTX_LEVELS:
            raise ConfigurationError(
                f"ptx_level must be one of {VALID_PTX_LEVELS}, got {self.ptx_level!r}"
            )
        if not isinstance(self.n_max_tries, int) or self.n_max_tries < 1:
            raise ConfigurationError(
                f"n_max_tries must be an integer >= 1, got {self.n_max_tries!r}"
            )
        if self.d_retry_ms < 0:
            raise ConfigurationError(
                f"d_retry_ms must be >= 0, got {self.d_retry_ms!r}"
            )
        if not isinstance(self.q_max, int) or self.q_max < 1:
            raise ConfigurationError(
                f"q_max must be an integer >= 1, got {self.q_max!r}"
            )
        if self.t_pkt_ms <= 0:
            raise ConfigurationError(
                f"t_pkt_ms must be positive, got {self.t_pkt_ms!r}"
            )
        if not isinstance(self.payload_bytes, int) or not (
            1 <= self.payload_bytes <= MAX_PAYLOAD_BYTES
        ):
            raise ConfigurationError(
                f"payload_bytes must be an integer in [1, {MAX_PAYLOAD_BYTES}], "
                f"got {self.payload_bytes!r}"
            )

    @property
    def retransmissions_enabled(self) -> bool:
        """True when the MAC may transmit a packet more than once."""
        return self.n_max_tries > 1

    @property
    def queueing_enabled(self) -> bool:
        """True when more than one packet can be buffered above the MAC."""
        return self.q_max > 1

    @property
    def offered_load_bps(self) -> float:
        """Application offered load in bits per second (payload only)."""
        return self.payload_bytes * 8 / (self.t_pkt_ms / 1e3)

    def with_updates(self, **changes: object) -> "StackConfig":
        """Return a validated copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view, suitable for JSON serialization."""
        return {
            "distance_m": self.distance_m,
            "ptx_level": self.ptx_level,
            "n_max_tries": self.n_max_tries,
            "d_retry_ms": self.d_retry_ms,
            "q_max": self.q_max,
            "t_pkt_ms": self.t_pkt_ms,
            "payload_bytes": self.payload_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "StackConfig":
        """Inverse of :meth:`as_dict`; unknown keys are rejected."""
        known = {
            "distance_m",
            "ptx_level",
            "n_max_tries",
            "d_retry_ms",
            "q_max",
            "t_pkt_ms",
            "payload_bytes",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown StackConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        for int_field in ("ptx_level", "n_max_tries", "q_max", "payload_bytes"):
            if int_field in kwargs:
                kwargs[int_field] = int(kwargs[int_field])  # type: ignore[arg-type]
        for float_field in ("distance_m", "d_retry_ms", "t_pkt_ms"):
            if float_field in kwargs:
                kwargs[float_field] = float(kwargs[float_field])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ParameterSpace:
    """A cartesian grid over the 7 stack parameters.

    The default values reconstruct the paper's Table I (see DESIGN.md §3).
    Iteration order is deterministic: distances vary slowest, matching the
    paper's procedure of completing all settings at one distance before
    moving the motes.
    """

    distances_m: Tuple[float, ...] = (5.0, 10.0, 15.0, 20.0, 30.0, 35.0)
    ptx_levels: Tuple[int, ...] = VALID_PTX_LEVELS
    n_max_tries_values: Tuple[int, ...] = (1, 2, 3, 5)
    d_retry_values_ms: Tuple[float, ...] = (0.0, 30.0, 60.0)
    q_max_values: Tuple[int, ...] = (1, 30)
    t_pkt_values_ms: Tuple[float, ...] = (10.0, 20.0, 30.0, 50.0, 100.0, 200.0)
    payload_values_bytes: Tuple[int, ...] = (5, 20, 35, 50, 65, 80, 110)

    def __post_init__(self) -> None:
        for name in (
            "distances_m",
            "ptx_levels",
            "n_max_tries_values",
            "d_retry_values_ms",
            "q_max_values",
            "t_pkt_values_ms",
            "payload_values_bytes",
        ):
            values = getattr(self, name)
            if not values:
                raise ConfigurationError(f"parameter axis {name} must be non-empty")
            if len(set(values)) != len(values):
                raise ConfigurationError(f"parameter axis {name} has duplicates")

    @property
    def settings_per_distance(self) -> int:
        """Number of non-distance parameter combinations (paper: 8064)."""
        return (
            len(self.ptx_levels)
            * len(self.n_max_tries_values)
            * len(self.d_retry_values_ms)
            * len(self.q_max_values)
            * len(self.t_pkt_values_ms)
            * len(self.payload_values_bytes)
        )

    def __len__(self) -> int:
        return self.settings_per_distance * len(self.distances_m)

    def __iter__(self) -> Iterator[StackConfig]:
        for d, ptx, tries, retry, qmax, tpkt, payload in itertools.product(
            self.distances_m,
            self.ptx_levels,
            self.n_max_tries_values,
            self.d_retry_values_ms,
            self.q_max_values,
            self.t_pkt_values_ms,
            self.payload_values_bytes,
        ):
            yield StackConfig(
                distance_m=d,
                ptx_level=ptx,
                n_max_tries=tries,
                d_retry_ms=retry,
                q_max=qmax,
                t_pkt_ms=tpkt,
                payload_bytes=payload,
            )

    def subspace(self, **axes: Sequence[object]) -> "ParameterSpace":
        """Restrict one or more axes, e.g. ``space.subspace(distances_m=[35.0])``.

        Axis names match the constructor fields. Values must be subsets of the
        current axis values so a subspace is always contained in its parent.
        """
        current = {
            "distances_m": self.distances_m,
            "ptx_levels": self.ptx_levels,
            "n_max_tries_values": self.n_max_tries_values,
            "d_retry_values_ms": self.d_retry_values_ms,
            "q_max_values": self.q_max_values,
            "t_pkt_values_ms": self.t_pkt_values_ms,
            "payload_values_bytes": self.payload_values_bytes,
        }
        for name, values in axes.items():
            if name not in current:
                raise ConfigurationError(f"unknown parameter axis {name!r}")
            requested = tuple(values)
            extra = set(requested) - set(current[name])
            if extra:
                raise ConfigurationError(
                    f"values {sorted(extra)} not in axis {name!r} of parent space"
                )
            current[name] = requested
        return ParameterSpace(**current)  # type: ignore[arg-type]


#: The reconstructed Table I sweep (48,384 configurations).
TABLE_I_SPACE = ParameterSpace()

#: A small default space for tests and quick examples (432 configurations).
SMOKE_SPACE = ParameterSpace(
    distances_m=(10.0, 35.0),
    ptx_levels=(3, 15, 31),
    n_max_tries_values=(1, 3),
    d_retry_values_ms=(0.0,),
    q_max_values=(1, 30),
    t_pkt_values_ms=(30.0, 100.0),
    payload_values_bytes=(20, 65, 110),
)
