"""Application packets flowing through the simulated stack."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError

__all__ = [
    "Packet",
]


@dataclass
class Packet:
    """One application packet, identified by its sequence number.

    The payload content is irrelevant to every metric the paper measures,
    so packets carry only their size and bookkeeping timestamps.
    """

    seq: int
    payload_bytes: int
    generated_s: float
    #: When the MAC pulled the packet from the queue (None until serviced).
    dequeued_s: float = -1.0

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise SimulationError(f"packet seq must be >= 0, got {self.seq!r}")
        if self.payload_bytes < 1:
            raise SimulationError(
                f"payload_bytes must be >= 1, got {self.payload_bytes!r}"
            )
        if self.generated_s < 0:
            raise SimulationError(
                f"generated_s must be >= 0, got {self.generated_s!r}"
            )

    @property
    def payload_bits(self) -> int:
        return self.payload_bytes * 8
