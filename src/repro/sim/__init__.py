"""Discrete-event link simulator and vectorized Monte-Carlo fast path.

``simulate_link`` reproduces one configuration run of the paper's testbed
(4,500 packets by default); ``FastLink`` samples the queueless attempt
process two orders of magnitude faster for the loss/energy analyses.
"""

from .events import Event, EventKind
from .fastlink import FastLink, FastLinkResult
from .packet import Packet
from .rng import RngStreams, config_seed
from .scheduler import EventScheduler
from .simulator import LinkSimulator, SimulationOptions, simulate_link
from .trace_io import load_trace, save_trace
from .trace import LinkTrace, PacketFate, PacketRecord, TransmissionRecord

__all__ = [
    "Event",
    "EventKind",
    "EventScheduler",
    "FastLink",
    "FastLinkResult",
    "LinkSimulator",
    "LinkTrace",
    "Packet",
    "PacketFate",
    "PacketRecord",
    "RngStreams",
    "SimulationOptions",
    "TransmissionRecord",
    "config_seed",
    "load_trace",
    "save_trace",
    "simulate_link",
]
