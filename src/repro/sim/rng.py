"""Deterministic random-stream management for the simulator.

Every stochastic component (channel fading, noise floor, CSMA backoffs, ...)
draws from its own named stream derived from one root seed via numpy's
``SeedSequence`` spawning. This gives two properties the campaign relies on:

* **Reproducibility** — the same (seed, configuration) pair always yields
  the same trace, so figures regenerate bit-identically;
* **Independence across configurations** — each configuration in a sweep
  derives its streams from a child seed keyed by its index, so changing one
  axis of the sweep does not perturb the randomness of the others.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import SimulationError

__all__ = [
    "RngStreams",
    "config_seed",
]


class RngStreams:
    """A family of named, independent random generators under one seed."""

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise SimulationError(f"seed must be >= 0, got {seed!r}")
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use.

        The stream is derived from the root seed and the name, so the set of
        *other* streams requested never changes what this one produces.
        """
        if name not in self._streams:
            # Derive child entropy from the name deterministically, keeping
            # any spawn key the root carries (children made by spawn()).
            name_key = tuple(ord(c) for c in name)
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) + name_key,
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def spawn(self, index: int) -> "RngStreams":
        """A child family for sweep element ``index`` (independent of others)."""
        if index < 0:
            raise SimulationError(f"index must be >= 0, got {index!r}")
        # Combine root entropy with the index to form a new root.
        mixed = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(0xC0FFEE, index)
        )
        child = RngStreams.__new__(RngStreams)
        child.seed = self.seed
        child._root = mixed
        child._streams = {}
        return child


def config_seed(base_seed: int, config_index: int) -> int:
    """A stable 63-bit seed for configuration ``config_index`` of a sweep."""
    if base_seed < 0 or config_index < 0:
        raise SimulationError("base_seed and config_index must be >= 0")
    mix = np.random.SeedSequence(
        entropy=base_seed, spawn_key=(config_index,)
    ).generate_state(1, dtype=np.uint64)[0]
    return int(mix) & 0x7FFF_FFFF_FFFF_FFFF
