"""The per-configuration link simulator.

:func:`simulate_link` runs one stack-parameter configuration for a given
number of application packets over the reconstructed hallway channel and
returns a :class:`~repro.sim.trace.LinkTrace` with the same per-packet schema
the paper's dataset logs. :class:`LinkSimulator` is the underlying object
API, which extensions use to substitute channels or MAC parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..channel.environment import Environment, HALLWAY_2012
from ..channel.link import LinkChannel
from ..config import StackConfig
from ..errors import SimulationError
from ..mac import AckPolicy, CsmaParameters, UnslottedCsma
from ..radio.energy import EnergyMeter
from .node import ReceiverNode, SenderNode
from .rng import RngStreams
from .scheduler import EventScheduler
from .trace import LinkTrace

__all__ = [
    "SimulationOptions",
    "LinkSimulator",
    "simulate_link",
]


@dataclass
class SimulationOptions:
    """Knobs of one simulation run that are not stack parameters."""

    n_packets: int = 4500
    seed: int = 0
    environment: Environment = field(default_factory=lambda: HALLWAY_2012)
    csma: CsmaParameters = field(default_factory=CsmaParameters)
    ack: AckPolicy = field(default_factory=AckPolicy)
    #: Keep the per-transmission log (needed for PER/N_tries analysis).
    collect_transmissions: bool = True
    #: Validate trace invariants after the run (cheap; on by default).
    strict: bool = True
    #: Relative jitter of the application inter-arrival time: each gap is
    #: drawn uniformly from T_pkt · [1 − j, 1 + j]. The paper's traffic is
    #: strictly periodic (j = 0); jitter is an extension for studying how
    #: arrival variability feeds queueing loss/delay.
    arrival_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.n_packets < 1:
            raise SimulationError(f"n_packets must be >= 1, got {self.n_packets!r}")
        if not 0.0 <= self.arrival_jitter < 1.0:
            raise SimulationError(
                f"arrival_jitter must be in [0, 1), got {self.arrival_jitter!r}"
            )


class LinkSimulator:
    """Wires channel, MAC, queue and app together for one configuration."""

    def __init__(
        self,
        config: StackConfig,
        options: Optional[SimulationOptions] = None,
        channel: Optional[LinkChannel] = None,
    ) -> None:
        self.config = config
        self.options = options or SimulationOptions()
        streams = RngStreams(self.options.seed)
        self.scheduler = EventScheduler()
        self.trace = LinkTrace()
        self.energy = EnergyMeter()
        self.channel = channel or LinkChannel(
            environment=self.options.environment,
            distance_m=config.distance_m,
            ptx_level=config.ptx_level,
            rng=streams.stream("channel"),
        )
        self.receiver = ReceiverNode()
        self.sender = SenderNode(
            config=config,
            channel=self.channel,
            scheduler=self.scheduler,
            receiver=self.receiver,
            csma=UnslottedCsma(self.options.csma, streams.stream("mac")),
            ack_policy=self.options.ack,
            trace=self.trace,
            energy=self.energy,
            n_packets=self.options.n_packets,
            collect_transmissions=self.options.collect_transmissions,
            arrival_jitter=self.options.arrival_jitter,
            arrival_rng=streams.stream("arrivals"),
        )

    def run(self) -> LinkTrace:
        """Execute the run to completion and return the finished trace."""
        self.sender.start()
        # Generous budget: every packet needs at most a handful of events per
        # attempt; anything beyond this indicates a scheduling bug.
        budget = self.options.n_packets * (4 * self.config.n_max_tries + 8) + 64
        self.scheduler.run(max_events=budget)
        self.trace.duration_s = self.scheduler.now_s
        self.trace.tx_energy_j = self.energy.tx_j
        self.trace.energy_breakdown_j = self.energy.breakdown()
        for packet in self.trace.packets:
            if packet.delivered:
                self.energy.record_delivery(packet.payload_bytes)
        self.trace.packets.sort(key=lambda p: p.seq)
        if self.options.strict:
            self.trace.validate()
            if len(self.trace.packets) != self.options.n_packets:
                raise SimulationError(
                    f"expected {self.options.n_packets} packet records, got "
                    f"{len(self.trace.packets)}"
                )
        return self.trace


def simulate_link(
    config: StackConfig,
    n_packets: int = 4500,
    seed: int = 0,
    environment: Optional[Environment] = None,
    options: Optional[SimulationOptions] = None,
) -> LinkTrace:
    """Simulate one configuration; the main entry point of the substrate.

    Either pass a full :class:`SimulationOptions`, or use the keyword
    shortcuts (which override the defaults of a fresh options object).
    """
    if options is None:
        options = SimulationOptions(n_packets=n_packets, seed=seed)
        if environment is not None:
            options.environment = environment
    return LinkSimulator(config, options).run()
