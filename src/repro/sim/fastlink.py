"""Vectorized Monte-Carlo link model (no queueing, saturated sender).

The full event-driven simulator pays per-event Python overhead that the
PER / N_tries / PLR_radio analyses do not need: those metrics depend only on
per-attempt channel draws, not on queue dynamics. :class:`FastLink` runs the
attempt process for thousands of packets as numpy array operations, ~two
orders of magnitude faster than the DES, and is what the model-fitting
campaigns and the PER figures use.

Agreement between the two engines on their shared domain is pinned by an
integration test and an ablation benchmark (`bench_ablation_engines`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..channel.environment import Environment, HALLWAY_2012
from ..errors import SimulationError
from ..mac import ack_frame_bytes
from ..radio import cc2420
from ..radio import frame as frame_mod
from ..radio import timing

__all__ = [
    "FastLinkResult",
    "FastLink",
]


@dataclass(frozen=True)
class FastLinkResult:
    """Aggregated outcome of a vectorized run (arrays are per packet)."""

    mean_snr_db: float
    payload_bytes: int
    n_max_tries: int
    n_tries: np.ndarray
    acked: np.ndarray
    data_delivered: np.ndarray
    service_time_s: np.ndarray
    #: Per-transmission SNR samples actually drawn (flattened).
    snr_samples_db: np.ndarray
    #: Per-transmission ACK outcome (parallel to snr_samples_db).
    tx_acked: np.ndarray

    @property
    def n_packets(self) -> int:
        return int(self.n_tries.size)

    @property
    def n_transmissions(self) -> int:
        return int(self.n_tries.sum())

    @property
    def per(self) -> float:
        """Packet error rate, Eq. 1: unACKed transmissions / transmissions."""
        total = self.n_transmissions
        if total == 0:
            return 0.0
        return 1.0 - float(self.tx_acked.sum()) / total

    @property
    def plr_radio(self) -> float:
        """Radio loss rate: packets never ACKed within N_maxTries."""
        return 1.0 - float(self.acked.mean())

    @property
    def mean_tries(self) -> float:
        """Mean transmissions per packet, over all packets."""
        return float(self.n_tries.mean())

    @property
    def mean_tries_successful(self) -> float:
        """Mean transmissions among successfully ACKed packets (Fig. 11)."""
        if not self.acked.any():
            return float("nan")
        return float(self.n_tries[self.acked].mean())

    @property
    def mean_service_time_s(self) -> float:
        """Mean MAC service time per packet."""
        return float(self.service_time_s.mean())

    def tx_energy_j(self, ptx_level: int) -> float:
        """Total transmit energy of the run at a power level (joules)."""
        bits = frame_mod.frame_air_bytes(self.payload_bytes) * 8
        return (
            cc2420.tx_energy_per_bit_j(ptx_level) * bits * self.n_transmissions
        )

    def energy_per_info_bit_j(self, ptx_level: int) -> float:
        """Measured U_eng: TX energy per successfully delivered payload bit."""
        delivered_bits = int(self.acked.sum()) * self.payload_bytes * 8
        if delivered_bits == 0:
            return float("inf")
        return self.tx_energy_j(ptx_level) / delivered_bits

    @property
    def goodput_bps(self) -> float:
        """Saturated (back-to-back) goodput: the measured maxGoodput."""
        total_time = float(self.service_time_s.sum())
        if total_time <= 0:
            return 0.0
        delivered_bits = int(self.acked.sum()) * self.payload_bytes * 8
        return delivered_bits / total_time


class FastLink:
    """Monte-Carlo sampler of the attempt process at a fixed mean SNR.

    The per-transmission SNR is ``mean_snr_db`` plus Gaussian jitter with the
    environment's combined slow+fast deviation (slow correlation is ignored —
    at the attempt timescale it acts like extra i.i.d. spread, which the
    engine-agreement test shows is adequate for the loss metrics).
    """

    def __init__(
        self,
        environment: Optional[Environment] = None,
        seed: int = 0,
        snr_jitter_db: Optional[float] = None,
        model_ack_loss: bool = True,
        try_correlation: float = 0.0,
    ) -> None:
        self.environment = environment or HALLWAY_2012
        self._rng = np.random.default_rng(seed)
        if snr_jitter_db is None:
            snr_jitter_db = float(
                np.hypot(self.environment.slow_sigma_db, self.environment.fast_sigma_db)
            )
        if snr_jitter_db < 0:
            raise SimulationError(f"snr_jitter_db must be >= 0, got {snr_jitter_db!r}")
        if not 0.0 <= try_correlation <= 1.0:
            raise SimulationError(
                f"try_correlation must be in [0, 1], got {try_correlation!r}"
            )
        self.snr_jitter_db = snr_jitter_db
        #: Fraction of the SNR jitter variance shared by all tries of one
        #: packet. 0 = fully independent tries (the assumption behind the
        #: paper's Eq. 8 PLR = PER^N); 1 = fully correlated (bursty) fading,
        #: where retransmissions repeat into the same fade. The Eq. 8
        #: independence ablation sweeps this knob.
        self.try_correlation = try_correlation
        self.model_ack_loss = model_ack_loss

    def run(
        self,
        mean_snr_db: float,
        payload_bytes: int,
        n_packets: int = 4500,
        n_max_tries: int = 1,
        d_retry_ms: float = 0.0,
    ) -> FastLinkResult:
        """Sample ``n_packets`` packet deliveries at the given mean SNR."""
        if n_packets < 1:
            raise SimulationError(f"n_packets must be >= 1, got {n_packets!r}")
        if n_max_tries < 1:
            raise SimulationError(f"n_max_tries must be >= 1, got {n_max_tries!r}")
        ber = self.environment.ber
        frame_bytes = frame_mod.frame_air_bytes(payload_bytes)
        ack_bytes = ack_frame_bytes()
        frame_time = frame_mod.frame_air_time_s(payload_bytes)
        spi = timing.spi_load_time_s(payload_bytes)
        d_retry_s = d_retry_ms / 1e3

        n_tries = np.zeros(n_packets, dtype=np.int64)
        acked = np.zeros(n_packets, dtype=bool)
        data_delivered = np.zeros(n_packets, dtype=bool)
        service = np.full(n_packets, spi)
        snr_chunks = []
        ack_chunks = []

        # Split the jitter variance into a per-packet (shared across tries)
        # and a per-try component according to try_correlation.
        shared_std = self.snr_jitter_db * np.sqrt(self.try_correlation)
        fresh_std = self.snr_jitter_db * np.sqrt(1.0 - self.try_correlation)
        packet_offset = (
            self._rng.normal(0.0, shared_std, n_packets)
            if shared_std > 0
            else np.zeros(n_packets)
        )

        alive = np.ones(n_packets, dtype=bool)
        for attempt in range(1, n_max_tries + 1):
            idx = np.flatnonzero(alive)
            if idx.size == 0:
                break
            snr = mean_snr_db + packet_offset[idx] + (
                self._rng.normal(0.0, fresh_std, idx.size)
                if fresh_std > 0
                else 0.0
            )
            data_ok = self._rng.random(idx.size) >= ber.frame_error_probability(
                snr, frame_bytes
            )
            if self.model_ack_loss:
                ack_ok = data_ok & (
                    self._rng.random(idx.size)
                    >= ber.frame_error_probability(snr, ack_bytes)
                )
            else:
                ack_ok = data_ok
            n_tries[idx] += 1
            data_delivered[idx] |= data_ok
            acked[idx] = ack_ok
            backoff = self._rng.uniform(
                0.0, timing.MAX_INITIAL_BACKOFF_S, idx.size
            )
            attempt_base = timing.TURNAROUND_TIME_S + backoff + frame_time
            attempt_time = attempt_base + np.where(
                ack_ok, timing.ACK_TIME_S, timing.ACK_WAIT_TIMEOUT_S
            )
            if attempt > 1:
                attempt_time = attempt_time + d_retry_s
            service[idx] += attempt_time
            snr_chunks.append(np.asarray(snr, dtype=float).reshape(-1))
            ack_chunks.append(ack_ok)
            alive[idx] = ~ack_ok

        return FastLinkResult(
            mean_snr_db=mean_snr_db,
            payload_bytes=payload_bytes,
            n_max_tries=n_max_tries,
            n_tries=n_tries,
            acked=acked,
            data_delivered=data_delivered,
            service_time_s=service,
            snr_samples_db=(
                np.concatenate(snr_chunks) if snr_chunks else np.empty(0)
            ),
            tx_acked=(
                np.concatenate(ack_chunks) if ack_chunks else np.empty(0, dtype=bool)
            ),
        )
