"""Minimal discrete-event scheduler (binary-heap event list).

The simulator is small enough that a heap-based calendar with stable
tie-breaking covers every need: schedule, cancel, run-to-exhaustion, and
run-until-time. Times are floating seconds; scheduling into the past raises.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SchedulerError
from .events import Event, EventKind

__all__ = [
    "EventScheduler",
]


class EventScheduler:
    """A single-threaded event calendar with a monotone clock."""

    def __init__(self, start_time_s: float = 0.0) -> None:
        self._now_s = start_time_s
        self._heap: List[Event] = []
        self._seq = 0
        self._processed = 0
        self._running = False

    @property
    def now_s(self) -> float:
        """Current simulation time (seconds)."""
        return self._now_s

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled may be approximate) events."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self,
        delay_s: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay_s`` after the current time."""
        if delay_s < 0:
            raise SchedulerError(f"cannot schedule into the past: delay {delay_s!r}")
        return self.schedule_at(self._now_s + delay_s, kind, callback, payload)

    def schedule_at(
        self,
        time_s: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time_s < self._now_s:
            raise SchedulerError(
                f"cannot schedule into the past: {time_s} < now {self._now_s}"
            )
        event = Event(
            time_s=time_s, seq=self._seq, kind=kind, callback=callback, payload=payload
        )
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> Optional[Event]:
        """Execute the next event; returns it, or None when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_s = event.time_s
            self._processed += 1
            event.callback(event)
            return event
        return None

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the calendar empties; returns events executed.

        ``max_events`` bounds runaway simulations; exceeding it raises.
        """
        if self._running:
            raise SchedulerError("scheduler is already running (re-entrant run)")
        self._running = True
        try:
            executed = 0
            while True:
                if max_events is not None and executed >= max_events:
                    if any(not e.cancelled for e in self._heap):
                        raise SchedulerError(
                            f"event budget of {max_events} exhausted with "
                            f"{self.pending} events still pending"
                        )
                    return executed
                if self.step() is None:
                    return executed
                executed += 1
        finally:
            self._running = False

    def run_until(self, time_s: float) -> int:
        """Run events with time ≤ ``time_s``; advances the clock to it."""
        if time_s < self._now_s:
            raise SchedulerError(
                f"cannot run backwards: {time_s} < now {self._now_s}"
            )
        executed = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time_s > time_s:
                break
            self.step()
            executed += 1
        self._now_s = time_s
        return executed
