"""Event types of the link simulator's discrete-event core."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "EventKind",
    "Event",
]


class EventKind(enum.Enum):
    """What a scheduled event represents in the sender's pipeline."""

    #: The application generated a packet (every T_pkt).
    PACKET_ARRIVAL = "packet_arrival"
    #: The MAC pulls the next packet from the queue and loads it over SPI.
    SERVICE_START = "service_start"
    #: One transmission attempt begins (CSMA access, then the frame).
    ATTEMPT_START = "attempt_start"
    #: The attempt resolved (ACK received or ACK wait timed out).
    ATTEMPT_END = "attempt_end"
    #: The packet left the MAC (delivered or dropped after N_maxTries).
    SERVICE_COMPLETE = "service_complete"
    #: A generic user callback (extensions: mobility steps, interferers).
    CALLBACK = "callback"


@dataclass(order=True)
class Event:
    """A scheduled event. Ordering is (time, sequence number).

    The sequence number makes the schedule a stable total order, so
    simultaneous events fire in scheduling order — a property the tests pin
    because queue statistics depend on it.
    """

    time_s: float
    seq: int
    kind: EventKind = field(compare=False)
    callback: Callable[["Event"], None] = field(compare=False, repr=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        self.cancelled = True
