"""Per-packet and per-transmission trace records.

The paper's dataset logs, for every packet, "RSSI, LQI, time of receiving,
actual transmission number, actual queue size, etc." on both motes. The
simulator reproduces that schema: a :class:`TransmissionRecord` per attempt
and a :class:`PacketRecord` per application packet, collected into a
:class:`LinkTrace` that the analysis layer aggregates into metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError

__all__ = [
    "PacketFate",
    "TransmissionRecord",
    "PacketRecord",
    "LinkTrace",
]


class PacketFate(enum.Enum):
    """Terminal state of one application packet."""

    #: Dropped on arrival because the transmit queue was full (PLR_queue).
    QUEUE_DROP = "queue_drop"
    #: Transmitted N_maxTries times without an ACK (PLR_radio).
    RADIO_DROP = "radio_drop"
    #: Acknowledged within the attempt budget.
    DELIVERED = "delivered"


@dataclass(frozen=True)
class TransmissionRecord:
    """One frame transmission attempt on the air."""

    packet_seq: int
    attempt: int
    tx_time_s: float
    rssi_dbm: float
    noise_dbm: float
    lqi: float
    data_delivered: bool
    acked: bool

    @property
    def snr_db(self) -> float:
        return self.rssi_dbm - self.noise_dbm


@dataclass
class PacketRecord:
    """Lifecycle of one application packet through the stack."""

    seq: int
    payload_bytes: int
    generated_s: float
    fate: PacketFate
    queue_len_at_arrival: int = 0
    dequeued_s: Optional[float] = None
    completed_s: Optional[float] = None
    n_tries: int = 0
    #: Time the receiver first decoded the data frame (set even when the
    #: sender never saw an ACK — that is how duplicate deliveries arise).
    first_delivery_s: Optional[float] = None
    duplicate_deliveries: int = 0
    tx_energy_j: float = 0.0
    #: Attempts consumed by CSMA channel-access failures (no frame on air).
    n_cca_failures: int = 0

    def __post_init__(self) -> None:
        if self.fate is PacketFate.QUEUE_DROP:
            if self.n_tries != 0 or self.dequeued_s is not None:
                raise SimulationError("queue-dropped packets cannot have been serviced")
        elif self.dequeued_s is None or self.completed_s is None:
            raise SimulationError(f"serviced packet {self.seq} missing timestamps")

    @property
    def delivered(self) -> bool:
        """Sender-side success (ACK received)."""
        return self.fate is PacketFate.DELIVERED

    @property
    def received(self) -> bool:
        """Receiver-side success (data decoded at least once)."""
        return self.first_delivery_s is not None

    @property
    def queueing_delay_s(self) -> Optional[float]:
        """Time spent waiting in the transmit queue."""
        if self.dequeued_s is None:
            return None
        return self.dequeued_s - self.generated_s

    @property
    def service_time_s(self) -> Optional[float]:
        """The paper's T_service: from entering the MAC to leaving it."""
        if self.dequeued_s is None or self.completed_s is None:
            return None
        return self.completed_s - self.dequeued_s

    @property
    def delay_s(self) -> Optional[float]:
        """End-to-end delay: generation to first reception at the receiver."""
        if self.first_delivery_s is None:
            return None
        return self.first_delivery_s - self.generated_s


@dataclass
class LinkTrace:
    """Everything one configuration run produced."""

    packets: List[PacketRecord] = field(default_factory=list)
    transmissions: List[TransmissionRecord] = field(default_factory=list)
    #: Wall-clock span of the run (first arrival to last MAC activity), s.
    duration_s: float = 0.0
    #: Total sender TX energy over the run (J).
    tx_energy_j: float = 0.0
    #: Extended energy budget components (J), keyed by component name.
    energy_breakdown_j: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.packets)

    @property
    def n_transmissions(self) -> int:
        return len(self.transmissions)

    @property
    def n_acked_transmissions(self) -> int:
        return sum(1 for t in self.transmissions if t.acked)

    def packets_with_fate(self, fate: PacketFate) -> List[PacketRecord]:
        """All packets that ended in the given state."""
        return [p for p in self.packets if p.fate is fate]

    def validate(self) -> None:
        """Cross-check internal consistency; raises on violation.

        Used by integration tests and after every campaign run in strict
        mode: per-packet attempt counts must match the transmission log, and
        sequence numbers must be unique.
        """
        seqs = [p.seq for p in self.packets]
        if len(set(seqs)) != len(seqs):
            raise SimulationError("duplicate packet sequence numbers in trace")
        tries_by_seq: dict = {}
        for t in self.transmissions:
            tries_by_seq[t.packet_seq] = tries_by_seq.get(t.packet_seq, 0) + 1
        for p in self.packets:
            expected = tries_by_seq.get(p.seq, 0)
            if p.n_tries != expected + p.n_cca_failures:
                raise SimulationError(
                    f"packet {p.seq}: n_tries={p.n_tries} but {expected} "
                    f"transmissions and {p.n_cca_failures} CCA failures logged"
                )
            if p.fate is PacketFate.QUEUE_DROP and expected:
                raise SimulationError(
                    f"queue-dropped packet {p.seq} has transmissions"
                )
