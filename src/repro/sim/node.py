"""Sender and receiver node logic.

The :class:`SenderNode` implements the full transmit pipeline of the paper's
mote: periodic application arrivals → bounded FIFO queue → SPI frame load →
unslotted CSMA-CA → frame transmission → ACK wait → retransmission policy.
The :class:`ReceiverNode` decodes frames, answers with ACKs (modelled inside
the channel exchange) and tracks first deliveries versus duplicates.

The nodes are driven by an :class:`~repro.sim.scheduler.EventScheduler`; all
timing constants come from :mod:`repro.radio.timing`, so by construction the
simulated service times decompose exactly as the paper's Eqs. 5–6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..channel.link import LinkChannel
from ..config import StackConfig
from ..errors import SimulationError
from ..mac import (
    AckPolicy,
    RetryDecision,
    RetryPolicy,
    UnslottedCsma,
    ack_frame_bytes,
)
from ..queueing import BoundedFifoQueue
from ..radio import frame as frame_mod
from ..radio import timing
from ..radio.energy import EnergyMeter
from .events import Event, EventKind
from .packet import Packet
from .scheduler import EventScheduler
from .trace import LinkTrace, PacketFate, PacketRecord, TransmissionRecord

__all__ = [
    "ReceiverNode",
    "SenderNode",
]


class ReceiverNode:
    """Tracks receptions; first delivery per sequence number vs duplicates."""

    def __init__(self) -> None:
        self._first_delivery_s: Dict[int, float] = {}
        self._duplicates: Dict[int, int] = {}
        self.receptions = 0

    def on_frame(self, seq: int, time_s: float) -> bool:
        """Record a decoded data frame; returns True if it is the first copy."""
        self.receptions += 1
        if seq in self._first_delivery_s:
            self._duplicates[seq] = self._duplicates.get(seq, 0) + 1
            return False
        self._first_delivery_s[seq] = time_s
        return True

    def first_delivery_s(self, seq: int) -> Optional[float]:
        return self._first_delivery_s.get(seq)

    def duplicates_of(self, seq: int) -> int:
        return self._duplicates.get(seq, 0)

    @property
    def unique_deliveries(self) -> int:
        return len(self._first_delivery_s)


@dataclass
class _ServiceState:
    """Mutable state of the packet currently owned by the MAC."""

    packet: Packet
    tries: int = 0
    cca_failures: int = 0
    tx_energy_j: float = 0.0


class SenderNode:
    """The sending mote's full stack for one configuration run."""

    def __init__(
        self,
        config: StackConfig,
        channel: LinkChannel,
        scheduler: EventScheduler,
        receiver: ReceiverNode,
        csma: UnslottedCsma,
        ack_policy: AckPolicy,
        trace: LinkTrace,
        energy: EnergyMeter,
        n_packets: int,
        collect_transmissions: bool = True,
        arrival_jitter: float = 0.0,
        arrival_rng=None,
    ) -> None:
        if n_packets < 1:
            raise SimulationError(f"n_packets must be >= 1, got {n_packets!r}")
        if not 0.0 <= arrival_jitter < 1.0:
            raise SimulationError(
                f"arrival_jitter must be in [0, 1), got {arrival_jitter!r}"
            )
        if arrival_jitter > 0.0 and arrival_rng is None:
            raise SimulationError("arrival jitter requires an arrival_rng")
        self.config = config
        self.channel = channel
        self.scheduler = scheduler
        self.receiver = receiver
        self.csma = csma
        self.ack_policy = ack_policy
        self.trace = trace
        self.energy = energy
        self.n_packets = n_packets
        self.collect_transmissions = collect_transmissions
        self.arrival_jitter = arrival_jitter
        self._arrival_rng = arrival_rng
        self.queue: BoundedFifoQueue[Packet] = BoundedFifoQueue(config.q_max)
        self.retry = RetryPolicy(
            n_max_tries=config.n_max_tries, d_retry_s=config.d_retry_ms / 1e3
        )
        self._frame_bytes = frame_mod.frame_air_bytes(config.payload_bytes)
        self._service: Optional[_ServiceState] = None
        self._generated = 0
        #: seq -> queue length seen on arrival (consumed at record emission).
        self._arrival_queue_len: Dict[int, int] = {}

    # ---------------------------------------------------------------- setup

    def start(self) -> None:
        """Schedule the first application arrival."""
        self.scheduler.schedule(0.0, EventKind.PACKET_ARRIVAL, self._on_arrival)

    # ------------------------------------------------------------- arrivals

    def _on_arrival(self, event: Event) -> None:
        now = self.scheduler.now_s
        packet = Packet(
            seq=self._generated,
            payload_bytes=self.config.payload_bytes,
            generated_s=now,
        )
        self._generated += 1
        if self._generated < self.n_packets:
            gap_s = self.config.t_pkt_ms / 1e3
            if self.arrival_jitter > 0.0:
                gap_s *= 1.0 + self._arrival_rng.uniform(
                    -self.arrival_jitter, self.arrival_jitter
                )
            self.scheduler.schedule(
                gap_s, EventKind.PACKET_ARRIVAL, self._on_arrival
            )
        queue_len = len(self.queue)
        accepted = self.queue.offer(packet, now)
        if not accepted:
            self.trace.packets.append(
                PacketRecord(
                    seq=packet.seq,
                    payload_bytes=packet.payload_bytes,
                    generated_s=packet.generated_s,
                    fate=PacketFate.QUEUE_DROP,
                    queue_len_at_arrival=queue_len,
                )
            )
            return
        # Stash the arrival-time queue length for the eventual record.
        self._arrival_queue_len[packet.seq] = queue_len
        if self._service is None:
            self._begin_service(now)

    # -------------------------------------------------------------- service

    def _begin_service(self, now_s: float) -> None:
        if self._service is not None:
            raise SimulationError("MAC started a service while one is in flight")
        packet = self.queue.poll(now_s)
        if packet is None:
            return
        packet.dequeued_s = now_s
        self._service = _ServiceState(packet=packet)
        spi_s = timing.spi_load_time_s(self.config.payload_bytes)
        self.energy.record_spi(spi_s)
        self.scheduler.schedule(spi_s, EventKind.ATTEMPT_START, self._on_attempt_start)

    def _on_attempt_start(self, event: Event) -> None:
        state = self._require_service()
        state.tries += 1
        now = self.scheduler.now_s
        access = self.csma.access_channel()
        if not access.granted:
            state.cca_failures += 1
            self.scheduler.schedule(
                access.delay_s,
                EventKind.ATTEMPT_END,
                self._on_attempt_end,
                payload={"acked": False, "delivered": False},
            )
            return
        tx_start = now + access.delay_s + timing.TURNAROUND_TIME_S
        frame_time = frame_mod.frame_air_time_s(self.config.payload_bytes)
        tx_end = tx_start + frame_time
        outcome = self.channel.transmit_frame(tx_end, self._frame_bytes)
        state.tx_energy_j += self.energy.record_tx(
            self.config.ptx_level, self.config.payload_bytes
        )
        delivered = outcome.delivered
        if delivered:
            self.receiver.on_frame(state.packet.seq, tx_end)
        acked = delivered
        if delivered and self.ack_policy.enabled and self.ack_policy.ack_loss_modelled:
            ack_outcome = self.channel.transmit_frame(
                tx_end + timing.TURNAROUND_TIME_S, ack_frame_bytes()
            )
            acked = ack_outcome.delivered
        elif not self.ack_policy.enabled:
            # Without ACKs the sender assumes success after one attempt.
            acked = True
        if acked:
            wait_s = timing.ACK_TIME_S
            self.energy.record_listen(wait_s)
            self.energy.record_ack_rx()
        else:
            wait_s = self.ack_policy.timeout_s
            self.energy.record_listen(wait_s)
        if self.collect_transmissions:
            self.trace.transmissions.append(
                TransmissionRecord(
                    packet_seq=state.packet.seq,
                    attempt=state.tries,
                    tx_time_s=tx_end,
                    rssi_dbm=outcome.sample.rssi_dbm,
                    noise_dbm=outcome.sample.noise_dbm,
                    lqi=outcome.sample.lqi,
                    data_delivered=delivered,
                    acked=acked and self.ack_policy.enabled,
                )
            )
        end_time = tx_end + wait_s
        self.scheduler.schedule_at(
            end_time,
            EventKind.ATTEMPT_END,
            self._on_attempt_end,
            payload={"acked": acked, "delivered": delivered},
        )

    def _on_attempt_end(self, event: Event) -> None:
        state = self._require_service()
        acked = bool(event.payload["acked"])
        decision = self.retry.decide(state.tries, acked)
        if decision is RetryDecision.RETRY:
            self.scheduler.schedule(
                self.retry.d_retry_s,
                EventKind.ATTEMPT_START,
                self._on_attempt_start,
            )
            return
        self._complete_service(delivered=decision is RetryDecision.SUCCESS)

    def _complete_service(self, delivered: bool) -> None:
        state = self._require_service()
        now = self.scheduler.now_s
        packet = state.packet
        first = self.receiver.first_delivery_s(packet.seq)
        self.trace.packets.append(
            PacketRecord(
                seq=packet.seq,
                payload_bytes=packet.payload_bytes,
                generated_s=packet.generated_s,
                fate=PacketFate.DELIVERED if delivered else PacketFate.RADIO_DROP,
                queue_len_at_arrival=self._arrival_queue_len.pop(packet.seq, 0),
                dequeued_s=packet.dequeued_s,
                completed_s=now,
                n_tries=state.tries,
                first_delivery_s=first,
                duplicate_deliveries=self.receiver.duplicates_of(packet.seq),
                tx_energy_j=state.tx_energy_j,
                n_cca_failures=state.cca_failures,
            )
        )
        self._service = None
        if not self.queue.is_empty:
            self._begin_service(now)

    def _require_service(self) -> _ServiceState:
        if self._service is None:
            raise SimulationError("MAC event fired with no packet in service")
        return self._service
