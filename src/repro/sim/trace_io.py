"""Per-packet trace export/import — the paper's public dataset format.

The original study published its raw per-packet logs ([15][16] in the
paper): for every packet, both motes record RSSI, LQI, reception time,
actual transmission count and queue state. This module persists a
:class:`~repro.sim.trace.LinkTrace` in the same spirit: a JSON-lines file
with a header, one ``packet`` row per application packet, and (optionally)
one ``tx`` row per transmission attempt — so downstream analyses can run on
exported data without the simulator installed.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Optional

from ..config import StackConfig
from ..errors import DatasetError
from .trace import LinkTrace, PacketFate, PacketRecord, TransmissionRecord

__all__ = [
    "save_trace",
    "load_trace",
]

_FORMAT = "repro-trace-v1"


def _clean(value):
    """JSON-safe scalar (inf/nan → None)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _packet_row(record: PacketRecord) -> Dict[str, object]:
    return {
        "kind": "packet",
        "seq": record.seq,
        "payload_bytes": record.payload_bytes,
        "generated_s": record.generated_s,
        "fate": record.fate.value,
        "queue_len_at_arrival": record.queue_len_at_arrival,
        "dequeued_s": record.dequeued_s,
        "completed_s": record.completed_s,
        "n_tries": record.n_tries,
        "first_delivery_s": record.first_delivery_s,
        "duplicate_deliveries": record.duplicate_deliveries,
        "tx_energy_j": _clean(record.tx_energy_j),
        "n_cca_failures": record.n_cca_failures,
    }


def _tx_row(record: TransmissionRecord) -> Dict[str, object]:
    return {
        "kind": "tx",
        "packet_seq": record.packet_seq,
        "attempt": record.attempt,
        "tx_time_s": record.tx_time_s,
        "rssi_dbm": record.rssi_dbm,
        "noise_dbm": record.noise_dbm,
        "lqi": record.lqi,
        "data_delivered": record.data_delivered,
        "acked": record.acked,
    }


def save_trace(
    trace: LinkTrace,
    path,
    config: Optional[StackConfig] = None,
    include_transmissions: bool = True,
    description: str = "",
) -> None:
    """Write a trace as JSON lines (header, packet rows, tx rows)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as fh:
        header = {
            "format": _FORMAT,
            "description": description,
            "config": config.as_dict() if config is not None else None,
            "n_packets": len(trace.packets),
            "n_transmissions": (
                len(trace.transmissions) if include_transmissions else 0
            ),
            "duration_s": trace.duration_s,
            "tx_energy_j": _clean(trace.tx_energy_j),
            "energy_breakdown_j": {
                k: _clean(v) for k, v in trace.energy_breakdown_j.items()
            },
        }
        fh.write(json.dumps(header) + "\n")
        for packet in trace.packets:
            fh.write(json.dumps(_packet_row(packet)) + "\n")
        if include_transmissions:
            for tx in trace.transmissions:
                fh.write(json.dumps(_tx_row(tx)) + "\n")


def load_trace(path):
    """Read a trace written by :func:`save_trace`.

    Returns ``(trace, config_or_None)``.
    """
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"no trace file at {source}")
    trace = LinkTrace()
    config: Optional[StackConfig] = None
    with source.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise DatasetError(f"trace file {source} is empty")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"bad trace header in {source}: {exc}") from exc
        if header.get("format") != _FORMAT:
            raise DatasetError(
                f"unsupported trace format {header.get('format')!r}"
            )
        if header.get("config") is not None:
            config = StackConfig.from_dict(header["config"])
        trace.duration_s = float(header.get("duration_s", 0.0))
        energy = header.get("tx_energy_j")
        trace.tx_energy_j = float(energy) if energy is not None else math.inf
        trace.energy_breakdown_j = {
            k: (float(v) if v is not None else math.inf)
            for k, v in (header.get("energy_breakdown_j") or {}).items()
        }
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetError(
                    f"bad trace row at {source}:{lineno}: {exc}"
                ) from exc
            kind = row.get("kind")
            if kind == "packet":
                trace.packets.append(
                    PacketRecord(
                        seq=row["seq"],
                        payload_bytes=row["payload_bytes"],
                        generated_s=row["generated_s"],
                        fate=PacketFate(row["fate"]),
                        queue_len_at_arrival=row["queue_len_at_arrival"],
                        dequeued_s=row["dequeued_s"],
                        completed_s=row["completed_s"],
                        n_tries=row["n_tries"],
                        first_delivery_s=row["first_delivery_s"],
                        duplicate_deliveries=row["duplicate_deliveries"],
                        tx_energy_j=(
                            row["tx_energy_j"]
                            if row["tx_energy_j"] is not None
                            else math.inf
                        ),
                        n_cca_failures=row.get("n_cca_failures", 0),
                    )
                )
            elif kind == "tx":
                trace.transmissions.append(
                    TransmissionRecord(
                        packet_seq=row["packet_seq"],
                        attempt=row["attempt"],
                        tx_time_s=row["tx_time_s"],
                        rssi_dbm=row["rssi_dbm"],
                        noise_dbm=row["noise_dbm"],
                        lqi=row["lqi"],
                        data_delivered=row["data_delivered"],
                        acked=row["acked"],
                    )
                )
            else:
                raise DatasetError(
                    f"unknown trace row kind {kind!r} at {source}:{lineno}"
                )
    expected = header.get("n_packets")
    if expected is not None and expected != len(trace.packets):
        raise DatasetError(
            f"trace {source} truncated: header says {expected} packets, "
            f"found {len(trace.packets)}"
        )
    return trace, config
