"""Network-scale multi-link modeling: topology, state, drift, and solving.

The paper tunes one TelosB link; this package scales that tuning to a
whole deployment. A :class:`~repro.fleet.topology.FleetTopology` lays out
nodes (seeded grid or random-geometric generators) and binds every edge to
an :class:`~repro.channel.environment.Environment` plus a distance-or-SNR
:class:`~repro.serve.protocol.LinkSpec`; a
:class:`~repro.fleet.state.FleetState` holds the per-link columns
(struct-of-arrays, not per-link objects); a
:class:`~repro.fleet.drift.FleetDrift` evolves every link's SNR through
seeded :class:`~repro.channel.fading.ShadowingProcess` instances; and the
:class:`~repro.fleet.engine.FleetEngine` recommends configurations for
*all* links in one vectorized kernel pass with hysteresis, matching the
per-link epsilon-constraint solver's answers. :func:`~repro.fleet.runner.
run_fleet` ties the pieces into a crash-safe checkpointed run.
"""

from .drift import FleetDrift
from .engine import (
    REFERENCE_LEVEL,
    FleetEngine,
    FleetStepReport,
    objective_from_metrics,
)
from .runner import (
    FLEET_CHECKPOINT_FORMAT,
    FleetRunResult,
    SnrSource,
    parse_fleet_row,
    run_fleet,
)
from .state import FleetState, link_base_snr_db
from .topology import (
    ECCENTRICITY_NODE_CAP,
    FleetTopology,
    build_topology,
    grid_topology,
    random_geometric_topology,
)

__all__ = [
    "ECCENTRICITY_NODE_CAP",
    "FLEET_CHECKPOINT_FORMAT",
    "REFERENCE_LEVEL",
    "FleetDrift",
    "FleetEngine",
    "FleetRunResult",
    "FleetState",
    "FleetStepReport",
    "FleetTopology",
    "SnrSource",
    "build_topology",
    "grid_topology",
    "link_base_snr_db",
    "objective_from_metrics",
    "parse_fleet_row",
    "random_geometric_topology",
    "run_fleet",
]
