"""Struct-of-arrays fleet state: one numpy column per per-link quantity.

A 10,000-link fleet is four columns, not 10,000 objects: the engine's
vectorized solve, the drift process, and the checkpoint serializer all
read and write these columns directly. ``base_snr_db`` is the static
long-run mean SNR of each link at the engine's reference power level
(PA level 31); ``snr_db`` is the current, drifting value the engine
solves against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..channel.environment import Environment
from ..errors import FleetError
from ..radio import cc2420
from ..serve.protocol import LinkSpec
from .topology import FleetTopology

__all__ = [
    "FleetState",
    "link_base_snr_db",
]


def link_base_snr_db(link: LinkSpec, environment: Environment) -> float:
    """A link's long-run mean SNR (dB) at reference PA level 31.

    Matches :meth:`LinkSpec.snr_map` exactly at level 31: a reference-SNR
    link contributes its ``snr_db`` shifted to level 31 (a no-op for the
    default ``reference_level=31``), a distance link resolves through the
    environment's path-loss and mean noise models. The engine recovers
    every other level's SNR by adding the affine output-power offset.
    """
    reference_dbm = cc2420.output_power_dbm(31)
    if link.snr_db is not None:
        return link.snr_db + (
            reference_dbm - cc2420.output_power_dbm(link.reference_level)
        )
    return (
        environment.pathloss.mean_rssi_dbm(reference_dbm, link.distance_m)
        - environment.noise.mean_dbm
    )


@dataclass
class FleetState:
    """Per-link columns of a fleet at one instant (mutable, aligned).

    ``config_index`` holds each link's current configuration as an index
    into the engine's grid (−1 = not yet configured, or infeasible);
    ``objective_value`` is the minimization-form objective of that
    configuration at the link's current SNR (NaN when unconfigured).
    """

    base_snr_db: np.ndarray
    snr_db: np.ndarray
    noise_dbm: np.ndarray
    config_index: np.ndarray
    objective_value: np.ndarray

    def __post_init__(self) -> None:
        self.base_snr_db = np.asarray(self.base_snr_db, dtype=float)
        self.snr_db = np.asarray(self.snr_db, dtype=float)
        self.noise_dbm = np.asarray(self.noise_dbm, dtype=float)
        self.config_index = np.asarray(self.config_index, dtype=np.int64)
        self.objective_value = np.asarray(self.objective_value, dtype=float)
        lengths = {
            self.base_snr_db.shape,
            self.snr_db.shape,
            self.noise_dbm.shape,
            self.config_index.shape,
            self.objective_value.shape,
        }
        if len(lengths) != 1 or self.base_snr_db.ndim != 1:
            raise FleetError(
                "fleet state columns must be aligned 1-D arrays, got shapes "
                f"{sorted(str(shape) for shape in lengths)}"
            )
        if len(self.base_snr_db) == 0:
            raise FleetError("a fleet state needs at least one link")

    def __len__(self) -> int:
        return len(self.base_snr_db)

    @classmethod
    def from_topology(cls, topology: FleetTopology) -> "FleetState":
        """Initial state: mean SNR per link, nothing configured yet."""
        base = np.array(
            [
                link_base_snr_db(link, environment)
                for link, environment in zip(
                    topology.links, topology.environments
                )
            ],
            dtype=float,
        )
        noise = np.array(
            [
                environment.noise.mean_dbm
                for environment in topology.environments
            ],
            dtype=float,
        )
        n_links = len(topology)
        return cls(
            base_snr_db=base,
            snr_db=base.copy(),
            noise_dbm=noise,
            config_index=np.full(n_links, -1, dtype=np.int64),
            objective_value=np.full(n_links, np.nan, dtype=float),
        )

    @classmethod
    def from_base_snr(
        cls,
        base_snr_db: np.ndarray,
        noise_dbm: float = -90.0,
    ) -> "FleetState":
        """Initial state straight from per-link base SNRs (no topology).

        The telemetry path often starts from measured or configured SNRs
        rather than a geometric layout; this builds the same
        nothing-configured-yet state :meth:`from_topology` does, with a
        uniform noise floor.
        """
        base = np.asarray(base_snr_db, dtype=float)
        n_links = len(base)
        return cls(
            base_snr_db=base,
            snr_db=base.copy(),
            noise_dbm=np.full(n_links, float(noise_dbm)),
            config_index=np.full(n_links, -1, dtype=np.int64),
            objective_value=np.full(n_links, np.nan, dtype=float),
        )

    def copy(self) -> "FleetState":
        """An independent deep copy (columns are not shared)."""
        return FleetState(
            base_snr_db=self.base_snr_db.copy(),
            snr_db=self.snr_db.copy(),
            noise_dbm=self.noise_dbm.copy(),
            config_index=self.config_index.copy(),
            objective_value=self.objective_value.copy(),
        )

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready column snapshot (the checkpoint row payload)."""
        return {
            "snr_db": self.snr_db.tolist(),
            "config_index": self.config_index.tolist(),
            "objective_value": self.objective_value.tolist(),
        }
