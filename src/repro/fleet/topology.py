"""Seeded deployment layouts: node positions and the links between them.

Two generators cover the common WSN deployment shapes: a jittered lattice
(:func:`grid_topology`, the planned-installation case) and uniformly
scattered nodes connected within a radio range
(:func:`random_geometric_topology`, the ad-hoc case). Both are fully
deterministic under their seed — the same (kind, n_links, seed) triple
always yields the same positions, edges, and link specs — so fleet
trajectories built on top are reproducible end to end.

Every edge is bound to an :class:`~repro.channel.environment.Environment`
and a :class:`~repro.serve.protocol.LinkSpec`: ``link_mode="distance"``
emits distance links resolved through the environment's channel model,
``link_mode="snr"`` pre-resolves each edge to a reference-SNR link (the
paper's Table IV convention), which is what the serving tier's SNR-keyed
cache tiers prefer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..channel.environment import Environment, HALLWAY_2012
from ..errors import FleetError
from ..radio import cc2420
from ..serve.protocol import LinkSpec
from ..sim.rng import RngStreams

__all__ = [
    "ECCENTRICITY_NODE_CAP",
    "MIN_LINK_DISTANCE_M",
    "TOPOLOGY_KINDS",
    "FleetTopology",
    "build_topology",
    "grid_topology",
    "random_geometric_topology",
]

#: :meth:`FleetTopology.stats` computes eccentricities by BFS from every
#: node — O(n·m) in Python — so it skips them above this node count.
ECCENTRICITY_NODE_CAP = 1024

#: Shortest representable link: edges are clipped to this distance so the
#: path-loss model (log-distance, 1 m reference) stays in its domain even
#: when jitter pushes two lattice nodes almost on top of each other.
MIN_LINK_DISTANCE_M = 1.0

#: Generator names accepted by :func:`build_topology`.
TOPOLOGY_KINDS: Tuple[str, ...] = ("grid", "random")


@dataclass(frozen=True)
class FleetTopology:
    """A deployment: node positions plus environment-bound links.

    ``positions_m`` is an ``(n_nodes, 2)`` read-only float array;
    ``edges`` pairs node indices; ``links`` and ``environments`` run
    parallel to ``edges`` (one :class:`LinkSpec` and one
    :class:`Environment` per edge).
    """

    kind: str
    seed: int
    positions_m: np.ndarray
    edges: Tuple[Tuple[int, int], ...]
    links: Tuple[LinkSpec, ...]
    environments: Tuple[Environment, ...]

    def __post_init__(self) -> None:
        if not (len(self.edges) == len(self.links) == len(self.environments)):
            raise FleetError(
                "edges, links, and environments must run parallel: got "
                f"{len(self.edges)}/{len(self.links)}/{len(self.environments)}"
            )
        if len(self.links) == 0:
            raise FleetError("a fleet topology needs at least one link")
        positions = np.asarray(self.positions_m, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise FleetError(
                f"positions_m must have shape (n_nodes, 2), got {positions.shape}"
            )
        positions.setflags(write=False)
        object.__setattr__(self, "positions_m", positions)

    def __len__(self) -> int:
        return len(self.links)

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the layout."""
        return int(self.positions_m.shape[0])

    def node_degrees(self) -> np.ndarray:
        """Per-node edge count (both endpoints of every edge count)."""
        endpoints = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
        return np.bincount(
            endpoints.ravel(), minlength=self.n_nodes
        ).astype(np.int64)

    def component_labels(self) -> np.ndarray:
        """Connected-component label per node; isolated nodes get ``-1``.

        Components are counted over edge-incident nodes only — a node
        with no edges is a truncation artifact of the generators' "first
        ``n_links``" selection, not a routable island, and is reported
        separately (``n_isolated_nodes`` in :meth:`stats`).
        """
        return _component_labels(self.n_nodes, self.edges)

    def stats(self) -> Dict[str, object]:
        """Layout summary — sizes, degrees, connectivity — JSON-ready.

        Eccentricity columns (hop radius per node; their max over the
        graph is the diameter) are only computed for single-component
        layouts up to :data:`ECCENTRICITY_NODE_CAP` nodes and are
        ``None`` otherwise.
        """
        degrees = self.node_degrees()
        labels = self.component_labels()
        n_components = int(labels.max(initial=-1)) + 1
        summary: Dict[str, object] = {
            "kind": self.kind,
            "seed": self.seed,
            "n_nodes": self.n_nodes,
            "n_links": len(self),
            "n_components": n_components,
            "n_isolated_nodes": int(np.count_nonzero(degrees == 0)),
            "degree_min": int(degrees.min()),
            "degree_max": int(degrees.max()),
            "degree_mean": float(degrees.mean()),
        }
        eccentricity_max: Optional[int] = None
        eccentricity_mean: Optional[float] = None
        if n_components == 1 and self.n_nodes <= ECCENTRICITY_NODE_CAP:
            eccentricities = _eccentricities(self.n_nodes, self.edges)
            if eccentricities.size:
                eccentricity_max = int(eccentricities.max())
                eccentricity_mean = float(eccentricities.mean())
        summary["eccentricity_max"] = eccentricity_max
        summary["eccentricity_mean"] = eccentricity_mean
        return summary


def _adjacency_lists(
    n_nodes: int, edges: Tuple[Tuple[int, int], ...]
) -> List[List[int]]:
    """Per-node neighbor lists (undirected)."""
    adjacency: List[List[int]] = [[] for _ in range(n_nodes)]
    for source, target in edges:
        adjacency[source].append(target)
        adjacency[target].append(source)
    return adjacency


def _component_labels(
    n_nodes: int, edges: Tuple[Tuple[int, int], ...]
) -> np.ndarray:
    """Connected-component label per node, ``-1`` for isolated nodes."""
    adjacency = _adjacency_lists(n_nodes, edges)
    labels = [-1] * n_nodes
    current = 0
    for start in range(n_nodes):
        if labels[start] != -1 or not adjacency[start]:
            continue
        labels[start] = current
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if labels[neighbor] == -1:
                    labels[neighbor] = current
                    stack.append(neighbor)
        current += 1
    return np.asarray(labels, dtype=np.int64)


def _eccentricities(
    n_nodes: int, edges: Tuple[Tuple[int, int], ...]
) -> np.ndarray:
    """Hop eccentricity of every edge-incident node (BFS per node)."""
    adjacency = _adjacency_lists(n_nodes, edges)
    incident = [node for node in range(n_nodes) if adjacency[node]]
    eccentricities = []
    for start in incident:
        depth = [-1] * n_nodes
        depth[start] = 0
        frontier = [start]
        reach = 0
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if depth[neighbor] == -1:
                        depth[neighbor] = depth[node] + 1
                        reach = max(reach, depth[neighbor])
                        next_frontier.append(neighbor)
            frontier = next_frontier
        eccentricities.append(reach)
    return np.asarray(eccentricities, dtype=np.int64)


def _edge_links(
    positions_m: np.ndarray,
    edges: Tuple[Tuple[int, int], ...],
    environment: Environment,
    link_mode: str,
) -> Tuple[LinkSpec, ...]:
    """Bind each edge to a LinkSpec derived from its euclidean length."""
    if link_mode not in ("distance", "snr"):
        raise FleetError(
            f"unknown link_mode {link_mode!r}; valid: ['distance', 'snr']"
        )
    index_pairs = np.asarray(edges, dtype=np.int64)
    deltas = positions_m[index_pairs[:, 0]] - positions_m[index_pairs[:, 1]]
    lengths_m = np.maximum(
        np.hypot(deltas[:, 0], deltas[:, 1]), MIN_LINK_DISTANCE_M
    )
    if link_mode == "distance":
        return tuple(
            LinkSpec(distance_m=length) for length in lengths_m.tolist()
        )
    reference_dbm = cc2420.output_power_dbm(31)
    noise_dbm = environment.noise.mean_dbm
    return tuple(
        LinkSpec(
            snr_db=environment.pathloss.mean_rssi_dbm(reference_dbm, length)
            - noise_dbm
        )
        for length in lengths_m.tolist()
    )


def grid_topology(
    n_links: int,
    seed: int = 0,
    spacing_m: float = 10.0,
    jitter_m: float = 1.0,
    environment: Environment = HALLWAY_2012,
    link_mode: str = "distance",
) -> FleetTopology:
    """A jittered square lattice with links between adjacent nodes.

    The lattice side is the smallest one whose adjacency (right + down
    neighbors, row-major) yields at least ``n_links`` edges; the first
    ``n_links`` of them are kept. Node positions are the lattice points
    plus seeded gaussian jitter of std ``jitter_m``.
    """
    _validate_common(n_links, spacing_m=spacing_m)
    if jitter_m < 0:
        raise FleetError(f"jitter_m must be >= 0, got {jitter_m!r}")
    side = 2
    while 2 * side * (side - 1) < n_links:
        side += 1
    rng = RngStreams(seed).stream("topology")
    lattice = np.stack(
        np.meshgrid(
            np.arange(side, dtype=float),
            np.arange(side, dtype=float),
            indexing="ij",
        ),
        axis=-1,
    ).reshape(-1, 2)
    positions_m = lattice * spacing_m + rng.normal(
        0.0, jitter_m, size=lattice.shape
    )
    edges = []
    for row in range(side):
        for col in range(side):
            node = row * side + col
            if col + 1 < side:
                edges.append((node, node + 1))
            if row + 1 < side:
                edges.append((node, node + side))
    edges = tuple(edges[:n_links])
    links = _edge_links(positions_m, edges, environment, link_mode)
    return FleetTopology(
        kind="grid",
        seed=seed,
        positions_m=positions_m,
        edges=edges,
        links=links,
        environments=(environment,) * len(edges),
    )


def random_geometric_topology(
    n_links: int,
    seed: int = 0,
    area_side_m: float = 60.0,
    max_distance_m: float = 35.0,
    environment: Environment = HALLWAY_2012,
    link_mode: str = "distance",
    require_connected: bool = False,
) -> FleetTopology:
    """Uniformly scattered nodes, linked when within radio range.

    Nodes are drawn uniformly in an ``area_side_m`` square; every pair
    closer than ``max_distance_m`` becomes a candidate edge (canonical
    ``i < j`` row-major order), and the first ``n_links`` are kept. The
    node count grows deterministically until enough pairs qualify.

    Random scatters can genuinely fragment: the kept edges may split the
    deployment into several islands that no routing tree can span. With
    ``require_connected=True`` the generator detects this and raises a
    :class:`~repro.errors.FleetError` reporting the component count and
    sizes (isolated nodes — nodes no kept edge touches — are truncation
    artifacts, not islands, and are allowed). The default ``False``
    preserves the historical seeded outputs bit for bit;
    :meth:`FleetTopology.stats` reports ``n_components`` either way.
    """
    _validate_common(n_links, spacing_m=area_side_m)
    if max_distance_m <= 0:
        raise FleetError(
            f"max_distance_m must be positive, got {max_distance_m!r}"
        )
    rng = RngStreams(seed).stream("topology")
    n_nodes = max(2, math.isqrt(2 * n_links) + 1)
    # Bounds the O(n_nodes^2) candidate-pair arrays while retrying: a
    # 2048-node scatter already yields ~2M pairs, far past any sane fleet.
    while n_nodes <= 2048:
        positions_m = rng.uniform(0.0, area_side_m, size=(n_nodes, 2))
        source, target = np.triu_indices(n_nodes, k=1)
        deltas = positions_m[source] - positions_m[target]
        lengths_m = np.hypot(deltas[:, 0], deltas[:, 1])
        within = lengths_m <= max_distance_m
        if int(np.count_nonzero(within)) >= n_links:
            pairs = np.stack([source[within], target[within]], axis=1)
            edges = tuple(
                (int(pair[0]), int(pair[1]))
                for pair in pairs[:n_links].tolist()
            )
            if require_connected:
                labels = _component_labels(n_nodes, edges)
                n_components = int(labels.max(initial=-1)) + 1
                if n_components > 1:
                    sizes = sorted(
                        np.bincount(labels[labels >= 0]).tolist(),
                        reverse=True,
                    )
                    raise FleetError(
                        f"random topology (seed={seed}) fragments into "
                        f"{n_components} components of sizes {sizes}; no "
                        "routing tree can span it — widen max_distance_m, "
                        "shrink area_side_m, or pick another seed"
                    )
            links = _edge_links(positions_m, edges, environment, link_mode)
            return FleetTopology(
                kind="random",
                seed=seed,
                positions_m=positions_m,
                edges=edges,
                links=links,
                environments=(environment,) * len(edges),
            )
        n_nodes = n_nodes + max(1, n_nodes // 2)
    raise FleetError(
        f"could not place {n_links} links within {max_distance_m} m in a "
        f"{area_side_m} m square — range too small for the area?"
    )


def build_topology(
    kind: str,
    n_links: int,
    seed: int = 0,
    environment: Environment = HALLWAY_2012,
    link_mode: str = "distance",
) -> FleetTopology:
    """Dispatch to a topology generator by name (see :data:`TOPOLOGY_KINDS`)."""
    if kind == "grid":
        return grid_topology(
            n_links, seed, environment=environment, link_mode=link_mode
        )
    if kind == "random":
        return random_geometric_topology(
            n_links, seed, environment=environment, link_mode=link_mode
        )
    raise FleetError(
        f"unknown topology kind {kind!r}; valid: {list(TOPOLOGY_KINDS)}"
    )


def _validate_common(n_links: int, spacing_m: float) -> None:
    """Shared argument validation for the generators."""
    if n_links < 1:
        raise FleetError(f"n_links must be >= 1, got {n_links!r}")
    if spacing_m <= 0:
        raise FleetError(f"layout scale must be positive, got {spacing_m!r}")
