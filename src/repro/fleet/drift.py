"""Seeded time evolution of every link's SNR, one fading process per link.

Each link owns a :class:`~repro.channel.fading.ShadowingProcess` (slow OU
shadowing + fast fading + the environment's positional human-shadowing
events), seeded from the fleet seed through
``RngStreams(seed).spawn(link_index).stream("fading")`` — the same
derivation the campaign uses per configuration, so link *i*'s channel
trajectory never depends on how many other links exist or in what order
they are stepped. A drift step advances shared wall-clock time by
``step_interval_s`` and rewrites the state's ``snr_db`` column as
``base_snr_db − attenuation`` (attenuation positive = loss, matching
``repro.channel.link``).
"""

# reprolint: hot-path — per-tick SNR evolution timed by BENCH_fleet.json
from __future__ import annotations

import numpy as np

from ..channel.fading import ShadowingProcess
from ..errors import FleetError
from ..sim.rng import RngStreams
from .state import FleetState
from .topology import FleetTopology

__all__ = [
    "FleetDrift",
]


class FleetDrift:
    """Deterministic per-link SNR evolution over a topology.

    Replaying the same seed over the same topology yields bit-identical
    SNR trajectories, which is what makes checkpointed fleet runs
    resumable: the runner fast-forwards a fresh drift through the already
    completed steps and lands on exactly the interrupted RNG state.
    """

    def __init__(
        self,
        topology: FleetTopology,
        seed: int,
        step_interval_s: float = 1.0,
    ) -> None:
        if step_interval_s <= 0:
            raise FleetError(
                f"step_interval_s must be positive, got {step_interval_s!r}"
            )
        self.seed = int(seed)
        self.step_interval_s = float(step_interval_s)
        self._now_s = 0.0
        streams = RngStreams(self.seed)
        processes = []
        for index, (link, environment) in enumerate(
            zip(topology.links, topology.environments)
        ):
            distance_m = link.grid_distance_m()
            processes.append(
                ShadowingProcess(
                    slow_sigma_db=environment.slow_sigma_at(distance_m),
                    slow_tau_s=environment.slow_tau_s,
                    fast_sigma_db=environment.fast_sigma_db,
                    rng=streams.spawn(index).stream("fading"),
                    human=environment.human_shadowing_at(distance_m),
                )
            )
        self._processes = processes

    @property
    def now_s(self) -> float:
        """Current fleet time (s); advances by ``step_interval_s`` per step."""
        return self._now_s

    def step(self, state: FleetState) -> np.ndarray:
        """Advance time one interval and rewrite ``state.snr_db`` in place.

        Returns the new SNR column. One call draws exactly one attenuation
        sample per link, so the RNG consumption per step is fixed — the
        property resume relies on.
        """
        if len(state) != len(self._processes):
            raise FleetError(
                f"state has {len(state)} links but the drift was built for "
                f"{len(self._processes)}"
            )
        self._now_s += self.step_interval_s
        now_s = self._now_s
        attenuation_db = np.fromiter(
            (process.attenuation_db(now_s) for process in self._processes),
            dtype=float,
            count=len(self._processes),
        )
        state.snr_db = state.base_snr_db - attenuation_db
        return state.snr_db
