"""Crash-safe checkpointed fleet runs: drift → solve → fsync'd JSONL row.

Reuses the campaign checkpoint machinery
(:func:`~repro.campaign.checkpoint.load_checkpoint_jsonl` /
:func:`~repro.campaign.checkpoint.append_checkpoint_row`): every step
appends one durable JSON row, a partial trailing row left by a crash —
even one cut mid multi-byte UTF-8 character — is truncated and redone,
and ``resume=True`` fast-forwards a fresh :class:`SnrSource` through the
completed steps (bit-identical RNG replay), verifies the replayed SNR
trajectory against the stored rows, restores the last state, and
continues. The resumed trajectory is byte-for-byte the uninterrupted one.

The per-step SNR producer is any :class:`SnrSource` — the synthetic
:class:`~repro.fleet.drift.FleetDrift` or the measured
:class:`~repro.telemetry.simulator.TelemetrySnrSource` — so a fleet run
driven by device telemetry is the same loop as one driven by a model.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Protocol

import numpy as np

from ..campaign.checkpoint import (
    append_checkpoint_row,
    load_checkpoint_jsonl,
    write_checkpoint_header,
)
from ..errors import DatasetError, FleetError
from .engine import FleetEngine, FleetStepReport
from .state import FleetState
from .topology import FleetTopology

__all__ = [
    "FLEET_CHECKPOINT_FORMAT",
    "FleetRunResult",
    "SnrSource",
    "parse_fleet_row",
    "run_fleet",
]


class SnrSource(Protocol):
    """What :func:`run_fleet` needs from a per-step SNR producer.

    ``step(state)`` advances one reporting interval, rewrites
    ``state.snr_db`` in place, and returns that column;
    ``step_interval_s`` is the wall-clock meaning of one step (recorded
    in checkpoint headers). Implementations must be deterministic given
    their construction arguments for checkpoint resume to replay them.
    """

    step_interval_s: float

    def step(self, state: FleetState) -> np.ndarray:
        """Advance one interval and return the updated SNR column."""
        ...

#: ``format`` tag of fleet checkpoint headers.
FLEET_CHECKPOINT_FORMAT = "repro-fleet-checkpoint-v1"

#: Required per-step row fields (and their container types).
_ROW_LIST_FIELDS = ("snr_db", "config_index", "objective_value")


def parse_fleet_row(row: Dict[str, object]) -> Dict[str, object]:
    """Validate one fleet checkpoint row (used by the JSONL loader).

    A row missing fields — the signature of a partially appended line —
    raises :class:`~repro.errors.DatasetError`, which the loader treats
    as "truncate and redo" when it is the trailing line.
    """
    if not isinstance(row.get("step"), int):
        raise DatasetError("fleet row is missing its integer 'step'")
    for field in _ROW_LIST_FIELDS:
        if not isinstance(row.get(field), list):
            raise DatasetError(f"fleet row is missing its {field!r} column")
    for field in ("n_reconfigured", "n_infeasible"):
        if not isinstance(row.get(field), int):
            raise DatasetError(f"fleet row is missing its {field!r} count")
    return row


def _report_row(report: FleetStepReport, state: FleetState) -> Dict[str, object]:
    """Serialize one executed step as its checkpoint row.

    Routed-engine steps additionally record their path-feasibility
    counts; plain fleet rows stay byte-identical to the pre-routing
    format (and :func:`parse_fleet_row` accepts both).
    """
    row: Dict[str, object] = {
        "step": report.step_index,
        "snr_db": state.snr_db.tolist(),
        "config_index": state.config_index.tolist(),
        "objective_value": state.objective_value.tolist(),
        "n_reconfigured": report.n_reconfigured,
        "n_infeasible": report.n_infeasible,
    }
    if report.n_paths:
        row["n_paths"] = report.n_paths
        row["n_paths_feasible"] = report.n_paths_feasible
    return row


@dataclass(frozen=True)
class FleetRunResult:
    """Outcome of a (possibly resumed) fleet run."""

    state: FleetState
    rows: List[Dict[str, object]]
    n_steps_replayed: int
    n_steps_executed: int

    @property
    def n_steps_total(self) -> int:
        """Steps represented in ``rows`` (replayed + executed)."""
        return len(self.rows)


def _replay_rows(
    rows: List[Dict[str, object]],
    state: FleetState,
    drift: SnrSource,
    n_steps: int,
    source: Path,
) -> None:
    """Fast-forward the SNR source + state through checkpointed steps.

    The source's RNG is replayed (one draw per link per step) and the
    resulting SNR column must match the stored one bit-for-bit — a
    mismatch means the checkpoint came from a different seed, topology,
    or step interval, and silently mixing trajectories would be worse
    than failing.
    """
    if len(rows) > n_steps:
        raise FleetError(
            f"checkpoint has {len(rows)} steps but the run only wants "
            f"{n_steps} — wrong run parameters?"
        )
    for row in rows:
        # step() mutates state.snr_db in place (the Protocol stub body
        # just looks pure to the hoisting analysis).
        drift.step(state)  # reprolint: disable=RPR104
        stored_snr_db = np.asarray(row["snr_db"], dtype=float)
        if stored_snr_db.shape != state.snr_db.shape or not np.array_equal(
            stored_snr_db, state.snr_db
        ):
            raise FleetError(
                f"checkpoint {source} step {row['step']} does not match the "
                "replayed SNR trajectory — wrong seed, topology, or interval?"
            )
    steps = [int(row["step"]) for row in rows]
    if steps != list(range(len(rows))):
        raise FleetError(
            f"checkpoint {source} steps are not contiguous from 0: {steps[:8]}"
        )
    if rows:
        last = rows[-1]
        state.config_index = np.asarray(last["config_index"], dtype=np.int64)
        state.objective_value = np.asarray(
            last["objective_value"], dtype=float
        )


def run_fleet(
    topology: FleetTopology,
    engine: FleetEngine,
    drift: SnrSource,
    n_steps: int,
    checkpoint_path: Optional[object] = None,
    resume: bool = False,
    progress: Optional[Callable[[FleetStepReport], None]] = None,
    initial_state: Optional[FleetState] = None,
) -> FleetRunResult:
    """Run (or resume) ``n_steps`` of SNR update + solve over a fleet.

    ``drift`` is any :class:`SnrSource` — the synthetic drift model or a
    telemetry-fed adapter. With a ``checkpoint_path``, each step is
    durably appended before the next begins; ``resume=True`` picks an
    interrupted run back up from its last complete row (a missing file
    simply starts fresh). Without ``resume``, an existing file is
    overwritten. ``initial_state`` substitutes for the topology-derived
    starting state when the source is bound to a specific state object
    (a telemetry ingestor's); its length must match the topology.
    """
    if n_steps < 1:
        raise FleetError(f"n_steps must be >= 1, got {n_steps!r}")
    if initial_state is None:
        state = FleetState.from_topology(topology)
    else:
        state = initial_state
        if len(state) != len(topology):
            raise FleetError(
                f"initial_state has {len(state)} links but the topology "
                f"has {len(topology)}"
            )
    path = Path(checkpoint_path) if checkpoint_path is not None else None
    existing: List[Dict[str, object]] = []
    if path is not None:
        if resume and path.exists():
            existing = list(
                load_checkpoint_jsonl(
                    path, FLEET_CHECKPOINT_FORMAT, parse_fleet_row
                )
            )
            _replay_rows(existing, state, drift, n_steps, path)
        else:
            header: Dict[str, object] = {
                "format": FLEET_CHECKPOINT_FORMAT,
                "kind": topology.kind,
                "seed": topology.seed,
                "n_links": len(topology),
                "step_interval_s": drift.step_interval_s,
            }
            routing_info = getattr(engine, "routing_info", None)
            if callable(routing_info):
                header["routing"] = routing_info()
            write_checkpoint_header(path, header)
    rows = list(existing)
    executed = 0
    for step_index in range(len(existing), n_steps):
        drift.step(state)  # reprolint: disable=RPR104 — mutates state
        report = engine.step(state, step_index=step_index)
        row = _report_row(report, state)
        if path is not None:
            append_checkpoint_row(path, row)
        rows.append(row)
        executed += 1
        if progress is not None:
            progress(report)
    return FleetRunResult(
        state=state,
        rows=rows,
        n_steps_replayed=len(existing),
        n_steps_executed=executed,
    )
