"""The vectorized fleet solver: every link's recommendation in one pass.

The engine exploits the affine SNR structure of the configuration space:
a link's SNR at PA level ``p`` is its reference-level SNR plus the fixed
output-power offset ``P_out(p) − P_out(31)``, so the whole fleet shares
one knob-column grid and differs only by a per-link scalar. One step

1. quantizes the fleet's SNR column to ``snr_quantum_db`` bins (0 keeps
   exact values) and collapses duplicates with ``np.unique`` — ten
   thousand links typically fold into a few hundred distinct SNRs;
2. evaluates the Table III metrics for every (unique SNR × grid config)
   pair through :func:`~repro.core.optimization.evaluate_metric_planes`
   — the same arithmetic as the per-link columnar kernels, blocked to
   bound peak memory;
3. solves the epsilon-constraint problem for all rows at once as a masked
   ``argmin`` (first-index tie-break, identical to
   :func:`~repro.core.optimization.solve_epsilon_constraint`);
4. scatters the answers back to links and applies **hysteresis**: a
   configured link switches only when the objective improves on its
   current configuration (re-evaluated at the new SNR) by more than
   ``hysteresis`` relative — the paper's "don't chase noise" guideline
   at fleet scale.

Links with no feasible configuration are marked ``config_index = −1``
(objective NaN) and the step carries on; ``strict=True`` instead raises
the exact :class:`~repro.errors.InfeasibleError` the per-link solver
would have raised for the first such link.
"""

# reprolint: hot-path — per-tick fleet solve timed by BENCH_fleet.json
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..config import StackConfig
from ..core.optimization import (
    Constraint,
    ModelEvaluator,
    TuningGrid,
    evaluate_metric_planes,
    grid_knob_columns,
    infeasible_error,
    snr_map_from_reference,
)
from ..errors import FleetError
from ..radio import cc2420
from .state import FleetState

__all__ = [
    "REFERENCE_LEVEL",
    "FleetEngine",
    "FleetStepReport",
    "objective_from_metrics",
]

#: PA level the fleet's per-link SNR columns are referenced to.
REFERENCE_LEVEL = 31

#: Objective name → (metric-plane key, minimization sign).
_OBJECTIVE_PLANES: Mapping[str, Tuple[str, float]] = {
    "energy": ("u_eng_uj_per_bit", 1.0),
    "goodput": ("max_goodput_kbps", -1.0),
    "delay": ("delay_ms", 1.0),
    "loss": ("plr_total", 1.0),
    "loss_radio": ("plr_radio", 1.0),
    "rho": ("rho", 1.0),
}


def objective_from_metrics(
    metrics: Mapping[str, np.ndarray], name: str
) -> np.ndarray:
    """One objective in minimization form from a metric-plane mapping.

    Accepts the same names (and applies the same goodput negation) as
    :meth:`GridEvaluation.objective_column`, so plane solves and columnar
    grid solves rank configurations identically.
    """
    try:
        key, sign = _OBJECTIVE_PLANES[name]
    except KeyError:
        raise FleetError(
            f"unknown objective {name!r}; valid: {sorted(_OBJECTIVE_PLANES)}"
        ) from None
    plane = metrics[key]
    return -plane if sign < 0 else plane


@dataclass(frozen=True)
class FleetStepReport:
    """What one engine step did to the fleet (columns run per link)."""

    step_index: int
    n_links: int
    n_unique_snr_bins: int
    n_reconfigured: int
    n_infeasible: int
    config_index: np.ndarray
    objective_value: np.ndarray
    reconfigured: np.ndarray
    infeasible: np.ndarray

    def stats(self) -> Dict[str, object]:
        """Scalar summary of the step, JSON-ready."""
        finite = self.objective_value[np.isfinite(self.objective_value)]
        return {
            "step": self.step_index,
            "n_links": self.n_links,
            "n_unique_snr_bins": self.n_unique_snr_bins,
            "n_reconfigured": self.n_reconfigured,
            "n_infeasible": self.n_infeasible,
            "objective_mean": (
                float(finite.mean()) if finite.size else float("nan")
            ),
        }


class FleetEngine:
    """Recommends configurations for a whole fleet in one kernel pass.

    The evaluator only contributes its fitted sub-models (SNR enters
    through the explicit planes), so the default — built from the paper's
    reference map — serves any fleet; pass a re-fitted evaluator to tune
    against different empirical models.
    """

    def __init__(
        self,
        evaluator: Optional[ModelEvaluator] = None,
        grid: Optional[TuningGrid] = None,
        objective: str = "energy",
        constraints: Sequence[Constraint] = (),
        hysteresis: float = 0.05,
        snr_quantum_db: float = 0.25,
        block_elements: int = 1_000_000,
        strict: bool = False,
    ) -> None:
        if objective not in _OBJECTIVE_PLANES:
            raise FleetError(
                f"unknown objective {objective!r}; "
                f"valid: {sorted(_OBJECTIVE_PLANES)}"
            )
        for constraint in constraints:
            if constraint.objective not in _OBJECTIVE_PLANES:
                raise FleetError(
                    f"unknown constraint objective {constraint.objective!r}; "
                    f"valid: {sorted(_OBJECTIVE_PLANES)}"
                )
        if hysteresis < 0:
            raise FleetError(f"hysteresis must be >= 0, got {hysteresis!r}")
        if snr_quantum_db < 0:
            raise FleetError(
                f"snr_quantum_db must be >= 0, got {snr_quantum_db!r}"
            )
        if block_elements < 1:
            raise FleetError(
                f"block_elements must be >= 1, got {block_elements!r}"
            )
        self.evaluator = (
            evaluator
            if evaluator is not None
            else ModelEvaluator(snr_by_level=snr_map_from_reference(0.0))
        )
        # Not `grid or TuningGrid()`: an empty grid is falsy and would be
        # silently swapped for the default; grid_knob_columns rejects it.
        self.grid = grid if grid is not None else TuningGrid()
        self.objective = objective
        self.constraints = tuple(constraints)
        self.hysteresis = float(hysteresis)
        self.snr_quantum_db = float(snr_quantum_db)
        self.block_elements = int(block_elements)
        self.strict = bool(strict)
        knobs = grid_knob_columns(self.grid)
        self._ptx, self._payload, self._tries = knobs[0], knobs[1], knobs[2]
        self._retry_ms, self._qmax, self._tpkt_ms = knobs[3], knobs[4], knobs[5]
        reference_dbm = cc2420.output_power_dbm(REFERENCE_LEVEL)
        unique_levels = [
            int(level) for level in np.unique(self._ptx).tolist()
        ]
        offset_lut_db = np.zeros(max(unique_levels) + 1, dtype=float)
        offset_lut_db[unique_levels] = [
            cc2420.output_power_dbm(level) - reference_dbm
            for level in unique_levels
        ]
        #: Per-configuration SNR offset from the reference level (dB).
        self._offset_db = offset_lut_db[self._ptx]

    def __len__(self) -> int:
        return len(self._ptx)

    # ------------------------------------------------------------ planes

    def _planes(self, snr_db: np.ndarray) -> Dict[str, np.ndarray]:
        """Metric planes for the given per-element SNR (broadcast vs knobs)."""
        return evaluate_metric_planes(
            self.evaluator,
            ptx_level=self._ptx,
            payload_bytes=self._payload,
            n_max_tries=self._tries,
            d_retry_ms=self._retry_ms,
            q_max=self._qmax,
            t_pkt_ms=self._tpkt_ms,
            snr_db=snr_db,
        )

    def _feasible_mask(self, metrics: Mapping[str, np.ndarray]) -> np.ndarray:
        """Boolean feasibility of every plane element under the constraints."""
        feasible = np.ones(metrics["rho"].shape, dtype=bool)
        for constraint in self.constraints:
            feasible &= (
                objective_from_metrics(metrics, constraint.objective)
                <= constraint.upper_bound
            )
        return feasible

    def quantize_snr_db(self, snr_db: np.ndarray) -> np.ndarray:
        """The SNR column snapped to ``snr_quantum_db`` bins (0 = exact)."""
        snr = np.asarray(snr_db, dtype=float)
        if self.snr_quantum_db == 0.0:
            return snr
        return np.round(snr / self.snr_quantum_db) * self.snr_quantum_db

    def _raise_infeasible(self, snr_db: float) -> None:
        """Raise the per-link solver's exact infeasibility diagnosis."""
        metrics = self._planes(snr_db + self._offset_db[None, :])
        raise infeasible_error(
            self.constraints,
            lambda objective: float(
                objective_from_metrics(metrics, objective).min()
            ),
        )

    # -------------------------------------------------------------- step

    def _solve_unique(
        self, unique_snr_db: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Best (index, objective, feasibility) per unique SNR row."""
        n_unique = unique_snr_db.size
        n_configs = len(self)
        best_index = np.empty(n_unique, dtype=np.int64)
        best_objective = np.empty(n_unique, dtype=float)
        has_feasible = np.empty(n_unique, dtype=bool)
        rows_per_block = max(1, self.block_elements // n_configs)
        for start in range(0, n_unique, rows_per_block):
            stop = min(start + rows_per_block, n_unique)
            plane_snr_db = (
                unique_snr_db[start:stop, None] + self._offset_db[None, :]
            )
            metrics = self._planes(plane_snr_db)
            objective = objective_from_metrics(metrics, self.objective)
            feasible = self._feasible_mask(metrics)
            masked = np.where(feasible, objective, np.inf)
            chosen = np.argmin(masked, axis=1)
            chosen_value = np.take_along_axis(
                masked, chosen[:, None], axis=1
            )[:, 0]
            row_feasible = feasible.any(axis=1)
            # When every feasible value is +inf the full-row argmin may
            # land on an infeasible element; the per-link solver's
            # compacted-subset argmin picks the first *feasible* index,
            # so replicate that tie-break exactly.
            degenerate = np.isinf(chosen_value) & row_feasible
            if degenerate.any():
                chosen[degenerate] = np.argmax(feasible[degenerate], axis=1)
            taken = np.take_along_axis(objective, chosen[:, None], axis=1)
            best_index[start:stop] = chosen
            best_objective[start:stop] = taken[:, 0]
            has_feasible[start:stop] = row_feasible
        return best_index, best_objective, has_feasible

    def _current_objective(
        self, state: FleetState, snr_db: np.ndarray, has_current: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(objective, feasibility) of each link's current configuration.

        Evaluated at the same (quantized) SNR the candidates were solved
        at, so the hysteresis comparison is apples-to-apples. Links
        without a current configuration get placeholder values that the
        caller masks out via ``has_current``.
        """
        safe_index = np.where(has_current, state.config_index, 0)
        metrics = evaluate_metric_planes(
            self.evaluator,
            ptx_level=self._ptx[safe_index],
            payload_bytes=self._payload[safe_index],
            n_max_tries=self._tries[safe_index],
            d_retry_ms=self._retry_ms[safe_index],
            q_max=self._qmax[safe_index],
            t_pkt_ms=self._tpkt_ms[safe_index],
            snr_db=snr_db + self._offset_db[safe_index],
        )
        current_objective = objective_from_metrics(metrics, self.objective)
        current_feasible = self._feasible_mask(metrics)
        return current_objective, current_feasible

    def step(self, state: FleetState, step_index: int = 0) -> FleetStepReport:
        """Recommend configurations for every link and update the state.

        One vectorized pass: unique quantized SNRs are solved once, links
        inherit their bin's answer, and hysteresis decides whether each
        configured link actually switches.
        """
        quantized_snr_db = self.quantize_snr_db(state.snr_db)
        unique_snr_db, inverse = np.unique(
            quantized_snr_db, return_inverse=True
        )
        best_index, best_objective, has_feasible = self._solve_unique(
            unique_snr_db
        )
        candidate_index = best_index[inverse]
        candidate_objective = best_objective[inverse]
        feasible = has_feasible[inverse]
        if self.strict and not feasible.all():
            first = int(np.argmin(feasible))
            self._raise_infeasible(float(quantized_snr_db[first]))

        has_current = state.config_index >= 0
        if has_current.any():
            current_objective, current_feasible = self._current_objective(
                state, quantized_snr_db, has_current
            )
            # Lanes with no feasible candidate carry inf/nan here; their
            # comparison result is discarded by the ~feasible select below.
            with np.errstate(invalid="ignore"):
                improvement = current_objective - candidate_objective
                threshold = self.hysteresis * np.abs(current_objective)
                adopt = (
                    ~has_current
                    | ~current_feasible
                    | (improvement > threshold)
                )
        else:
            current_objective = np.full(len(state), np.nan)
            adopt = np.ones(len(state), dtype=bool)

        new_index = np.where(
            ~feasible,
            np.int64(-1),
            np.where(adopt, candidate_index, state.config_index),
        )
        new_objective = np.where(
            ~feasible,
            np.nan,
            np.where(adopt, candidate_objective, current_objective),
        )
        reconfigured = new_index != state.config_index
        infeasible = ~feasible
        state.config_index = new_index
        state.objective_value = new_objective
        return FleetStepReport(
            step_index=int(step_index),
            n_links=len(state),
            n_unique_snr_bins=int(unique_snr_db.size),
            n_reconfigured=int(np.count_nonzero(reconfigured)),
            n_infeasible=int(np.count_nonzero(infeasible)),
            config_index=new_index,
            objective_value=new_objective,
            reconfigured=reconfigured,
            infeasible=infeasible,
        )

    # ------------------------------------------------------------ lookup

    def config_at(self, index: int, distance_m: float = 10.0) -> StackConfig:
        """Materialize one grid configuration index as a :class:`StackConfig`."""
        if not 0 <= index < len(self):
            raise FleetError(
                f"configuration index {index!r} outside the "
                f"{len(self)}-entry grid"
            )
        return StackConfig(
            distance_m=distance_m,
            ptx_level=int(self._ptx[index]),
            payload_bytes=int(self._payload[index]),
            n_max_tries=int(self._tries[index]),
            d_retry_ms=float(self._retry_ms[index]),
            q_max=int(self._qmax[index]),
            t_pkt_ms=float(self._tpkt_ms[index]),
        )
