"""The vectorized fleet solver: every link's recommendation in one pass.

The engine exploits the affine SNR structure of the configuration space:
a link's SNR at PA level ``p`` is its reference-level SNR plus the fixed
output-power offset ``P_out(p) − P_out(31)``, so the whole fleet shares
one knob-column grid and differs only by a per-link scalar. One step

1. quantizes the fleet's SNR column to ``snr_quantum_db`` bins (0 keeps
   exact values) and collapses duplicates with ``np.unique`` — ten
   thousand links typically fold into a few hundred distinct SNRs;
2. evaluates the Table III metrics for every (unique SNR × grid config)
   pair through :func:`~repro.core.optimization.evaluate_metric_planes`
   — the same arithmetic as the per-link columnar kernels, blocked to
   bound peak memory;
3. solves the epsilon-constraint problem for all rows at once as a masked
   ``argmin`` (first-index tie-break, identical to
   :func:`~repro.core.optimization.solve_epsilon_constraint`);
4. scatters the answers back to links and applies **hysteresis**: a
   configured link switches only when the objective improves on its
   current configuration (re-evaluated at the new SNR) by more than
   ``hysteresis`` relative — the paper's "don't chase noise" guideline
   at fleet scale.

With ``use_policy=True`` (the default) steps 2–3 are replaced by an O(1)
gather out of a lazily compiled
:class:`~repro.core.optimization.PolicyTable`: the whole supported SNR
axis is solved once on the first step, after which every link's answer
is one ``np.take`` per answer column — no per-step solve at all, and
bit-identical results because the table stores the same masked-argmin
answers the exact path computes. Links whose SNR falls off the policy
axis fall back to the exact solve for just those bins.

Links with no feasible configuration are marked ``config_index = −1``
(objective NaN) and the step carries on; ``strict=True`` instead raises
the exact :class:`~repro.errors.InfeasibleError` the per-link solver
would have raised for the first such link.
"""

# reprolint: hot-path — per-tick fleet solve timed by BENCH_fleet.json
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..config import StackConfig
from ..core.optimization import (
    DEFAULT_SNR_RANGE_DB,
    OBJECTIVE_PLANES,
    Constraint,
    ModelEvaluator,
    PolicyTable,
    TuningGrid,
    evaluate_metric_planes,
    grid_knob_columns,
    infeasible_error,
    level_offset_lut_db,
    masked_argmin_rows,
    snr_map_from_reference,
)
from ..errors import FleetError
from .state import FleetState

__all__ = [
    "REFERENCE_LEVEL",
    "FleetEngine",
    "FleetStepReport",
    "objective_from_metrics",
]

#: PA level the fleet's per-link SNR columns are referenced to.
REFERENCE_LEVEL = 31

#: Objective name → (metric-plane key, minimization sign) — the shared
#: policy-module mapping, re-exported under the engine's historical name.
_OBJECTIVE_PLANES: Mapping[str, Tuple[str, float]] = OBJECTIVE_PLANES


def objective_from_metrics(
    metrics: Mapping[str, np.ndarray], name: str
) -> np.ndarray:
    """One objective in minimization form from a metric-plane mapping.

    Accepts the same names (and applies the same goodput negation) as
    :meth:`GridEvaluation.objective_column`, so plane solves and columnar
    grid solves rank configurations identically.
    """
    try:
        key, sign = _OBJECTIVE_PLANES[name]
    except KeyError:
        raise FleetError(
            f"unknown objective {name!r}; valid: {sorted(_OBJECTIVE_PLANES)}"
        ) from None
    plane = metrics[key]
    return -plane if sign < 0 else plane


@dataclass(frozen=True)
class FleetStepReport:
    """What one engine step did to the fleet (columns run per link)."""

    step_index: int
    n_links: int
    n_unique_snr_bins: int
    n_reconfigured: int
    n_infeasible: int
    config_index: np.ndarray
    objective_value: np.ndarray
    reconfigured: np.ndarray
    infeasible: np.ndarray
    n_policy_links: int = 0
    n_fallback_links: int = 0
    #: Routed-engine extensions — zero/NaN placeholders on plain fleet
    #: steps so existing consumers (and checkpoint rows) stay stable.
    n_paths: int = 0
    n_paths_feasible: int = 0
    relay_iterations: int = 0
    relay_converged: bool = True
    network_energy_uj_per_bit: float = float("nan")

    def stats(self) -> Dict[str, object]:
        """Scalar summary of the step, JSON-ready."""
        finite = self.objective_value[np.isfinite(self.objective_value)]
        summary: Dict[str, object] = {
            "step": self.step_index,
            "n_links": self.n_links,
            "n_unique_snr_bins": self.n_unique_snr_bins,
            "n_reconfigured": self.n_reconfigured,
            "n_infeasible": self.n_infeasible,
            "n_policy_links": self.n_policy_links,
            "n_fallback_links": self.n_fallback_links,
            "objective_mean": (
                float(finite.mean()) if finite.size else float("nan")
            ),
        }
        if self.n_paths:
            summary["n_paths"] = self.n_paths
            summary["n_paths_feasible"] = self.n_paths_feasible
            summary["relay_iterations"] = self.relay_iterations
            summary["relay_converged"] = self.relay_converged
            summary["network_energy_uj_per_bit"] = (
                self.network_energy_uj_per_bit
            )
        return summary


class FleetEngine:
    """Recommends configurations for a whole fleet in one kernel pass.

    The evaluator only contributes its fitted sub-models (SNR enters
    through the explicit planes), so the default — built from the paper's
    reference map — serves any fleet; pass a re-fitted evaluator to tune
    against different empirical models.
    """

    def __init__(
        self,
        evaluator: Optional[ModelEvaluator] = None,
        grid: Optional[TuningGrid] = None,
        objective: str = "energy",
        constraints: Sequence[Constraint] = (),
        hysteresis: float = 0.05,
        snr_quantum_db: float = 0.25,
        block_elements: int = 1_000_000,
        strict: bool = False,
        use_policy: bool = True,
        policy_snr_range_db: Tuple[float, float] = DEFAULT_SNR_RANGE_DB,
    ) -> None:
        if objective not in _OBJECTIVE_PLANES:
            raise FleetError(
                f"unknown objective {objective!r}; "
                f"valid: {sorted(_OBJECTIVE_PLANES)}"
            )
        for constraint in constraints:
            if constraint.objective not in _OBJECTIVE_PLANES:
                raise FleetError(
                    f"unknown constraint objective {constraint.objective!r}; "
                    f"valid: {sorted(_OBJECTIVE_PLANES)}"
                )
        if hysteresis < 0:
            raise FleetError(f"hysteresis must be >= 0, got {hysteresis!r}")
        if snr_quantum_db < 0:
            raise FleetError(
                f"snr_quantum_db must be >= 0, got {snr_quantum_db!r}"
            )
        if block_elements < 1:
            raise FleetError(
                f"block_elements must be >= 1, got {block_elements!r}"
            )
        if not policy_snr_range_db[0] <= policy_snr_range_db[1]:
            raise FleetError(
                f"policy_snr_range_db must be (low, high) with low <= high, "
                f"got {policy_snr_range_db!r}"
            )
        self.evaluator = (
            evaluator
            if evaluator is not None
            else ModelEvaluator(snr_by_level=snr_map_from_reference(0.0))
        )
        # Not `grid or TuningGrid()`: an empty grid is falsy and would be
        # silently swapped for the default; grid_knob_columns rejects it.
        self.grid = grid if grid is not None else TuningGrid()
        self.objective = objective
        self.constraints = tuple(constraints)
        self.hysteresis = float(hysteresis)
        self.snr_quantum_db = float(snr_quantum_db)
        self.block_elements = int(block_elements)
        self.strict = bool(strict)
        #: Policy lookups need a finite bin axis; quantum 0 means "solve
        #: exact SNRs", which cannot be tabulated.
        self.use_policy = bool(use_policy) and self.snr_quantum_db > 0.0
        self.policy_snr_range_db = (
            float(policy_snr_range_db[0]),
            float(policy_snr_range_db[1]),
        )
        self._policy: Optional[PolicyTable] = None
        knobs = grid_knob_columns(self.grid)
        self._ptx, self._payload, self._tries = knobs[0], knobs[1], knobs[2]
        self._retry_ms, self._qmax, self._tpkt_ms = knobs[3], knobs[4], knobs[5]
        #: Per-configuration SNR offset from the reference level (dB).
        self._offset_db = level_offset_lut_db(self._ptx)[self._ptx]

    def __len__(self) -> int:
        return len(self._ptx)

    @property
    def knob_columns(
        self,
    ) -> Tuple[
        np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray
    ]:
        """The grid's canonical knob columns, in kernel argument order.

        ``(ptx_level, payload_bytes, n_max_tries, d_retry_ms, q_max,
        t_pkt_ms)`` — the same tuple
        :func:`~repro.core.optimization.grid_knob_columns` built, exposed
        so layered engines (routing) can materialize per-link knobs from
        a report's configuration indices without re-deriving the grid.
        """
        return (
            self._ptx,
            self._payload,
            self._tries,
            self._retry_ms,
            self._qmax,
            self._tpkt_ms,
        )

    @property
    def config_offset_db(self) -> np.ndarray:
        """Per-configuration SNR offset from the reference level (dB)."""
        return self._offset_db

    # ------------------------------------------------------------ planes

    def _planes(self, snr_db: np.ndarray) -> Dict[str, np.ndarray]:
        """Metric planes for the given per-element SNR (broadcast vs knobs)."""
        return evaluate_metric_planes(
            self.evaluator,
            ptx_level=self._ptx,
            payload_bytes=self._payload,
            n_max_tries=self._tries,
            d_retry_ms=self._retry_ms,
            q_max=self._qmax,
            t_pkt_ms=self._tpkt_ms,
            snr_db=snr_db,
        )

    def _feasible_mask(self, metrics: Mapping[str, np.ndarray]) -> np.ndarray:
        """Boolean feasibility of every plane element under the constraints."""
        feasible = np.ones(metrics["rho"].shape, dtype=bool)
        for constraint in self.constraints:
            feasible &= (
                objective_from_metrics(metrics, constraint.objective)
                <= constraint.upper_bound
            )
        return feasible

    def quantize_snr_db(self, snr_db: np.ndarray) -> np.ndarray:
        """The SNR column snapped to ``snr_quantum_db`` bins (0 = exact)."""
        snr = np.asarray(snr_db, dtype=float)
        if self.snr_quantum_db == 0.0:
            return snr
        return np.round(snr / self.snr_quantum_db) * self.snr_quantum_db

    def _raise_infeasible(self, snr_db: float) -> None:
        """Raise the per-link solver's exact infeasibility diagnosis."""
        metrics = self._planes(snr_db + self._offset_db[None, :])
        raise infeasible_error(
            self.constraints,
            lambda objective: float(
                objective_from_metrics(metrics, objective).min()
            ),
        )

    # -------------------------------------------------------------- step

    def _solve_unique(
        self, unique_snr_db: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Best (index, objective, feasibility) per unique SNR row."""
        n_unique = unique_snr_db.size
        n_configs = len(self)
        best_index = np.empty(n_unique, dtype=np.int64)
        best_objective = np.empty(n_unique, dtype=float)
        has_feasible = np.empty(n_unique, dtype=bool)
        rows_per_block = max(1, self.block_elements // n_configs)
        for start in range(0, n_unique, rows_per_block):
            stop = min(start + rows_per_block, n_unique)
            plane_snr_db = (
                unique_snr_db[start:stop, None] + self._offset_db[None, :]
            )
            metrics = self._planes(plane_snr_db)
            objective = objective_from_metrics(metrics, self.objective)
            feasible = self._feasible_mask(metrics)
            chosen, row_feasible = masked_argmin_rows(objective, feasible)
            taken = np.take_along_axis(objective, chosen[:, None], axis=1)
            best_index[start:stop] = chosen
            best_objective[start:stop] = taken[:, 0]
            has_feasible[start:stop] = row_feasible
        return best_index, best_objective, has_feasible

    def policy_table(self) -> Optional[PolicyTable]:
        """The compiled policy, or None when the exact path is in use.

        Compiled lazily on first access — one blocked pass over the whole
        SNR axis, after which every step is gather-only.
        """
        if not self.use_policy:
            return None
        if self._policy is None:
            self._policy = PolicyTable.compile(
                evaluator=self.evaluator,
                grid=self.grid,
                objective=self.objective,
                constraints=self.constraints,
                snr_quantum_db=self.snr_quantum_db,
                snr_range_db=self.policy_snr_range_db,
                block_elements=self.block_elements,
            )
        return self._policy

    def _candidates_policy(
        self, policy: PolicyTable, quantized_snr_db: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int, int]:
        """Per-link candidates as an O(1) bin gather out of the policy.

        Links whose quantized SNR falls off the compiled axis are solved
        exactly (one masked argmin over just those bins) and scattered
        back, so answers match the exact path everywhere.
        """
        # reprolint: hot-path — the per-step np.take gather BENCH_policy.json times
        local = policy.local_bins(quantized_snr_db)
        on_axis = policy.in_axis(local)
        index, objective, feasible = policy.take(np.where(on_axis, local, 0))
        n_fallback = int(np.count_nonzero(~on_axis))
        if n_fallback:
            off_axis = ~on_axis
            unique_off_db, inverse_off = np.unique(
                quantized_snr_db[off_axis], return_inverse=True
            )
            off_index, off_objective, off_feasible = self._solve_unique(
                unique_off_db
            )
            index[off_axis] = off_index[inverse_off]
            objective[off_axis] = off_objective[inverse_off]
            feasible[off_axis] = off_feasible[inverse_off]
        n_unique = int(np.unique(local).size)
        n_policy = int(quantized_snr_db.size) - n_fallback
        return index, objective, feasible, n_unique, n_policy, n_fallback

    def _current_objective(
        self, state: FleetState, snr_db: np.ndarray, has_current: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(objective, feasibility) of each link's current configuration.

        Evaluated at the same (quantized) SNR the candidates were solved
        at, so the hysteresis comparison is apples-to-apples. Links
        without a current configuration get placeholder values that the
        caller masks out via ``has_current``.
        """
        safe_index = np.where(has_current, state.config_index, 0)
        metrics = evaluate_metric_planes(
            self.evaluator,
            ptx_level=self._ptx[safe_index],
            payload_bytes=self._payload[safe_index],
            n_max_tries=self._tries[safe_index],
            d_retry_ms=self._retry_ms[safe_index],
            q_max=self._qmax[safe_index],
            t_pkt_ms=self._tpkt_ms[safe_index],
            snr_db=snr_db + self._offset_db[safe_index],
        )
        current_objective = objective_from_metrics(metrics, self.objective)
        current_feasible = self._feasible_mask(metrics)
        return current_objective, current_feasible

    def step(self, state: FleetState, step_index: int = 0) -> FleetStepReport:
        """Recommend configurations for every link and update the state.

        One vectorized pass: with the policy enabled, links gather their
        bin's precompiled answer; otherwise unique quantized SNRs are
        solved once and links inherit their bin's answer. Either way
        hysteresis decides whether each configured link actually switches.
        """
        quantized_snr_db = self.quantize_snr_db(state.snr_db)
        policy = self.policy_table()
        if policy is not None:
            (
                candidate_index,
                candidate_objective,
                feasible,
                n_unique_bins,
                n_policy_links,
                n_fallback_links,
            ) = self._candidates_policy(policy, quantized_snr_db)
        else:
            unique_snr_db, inverse = np.unique(
                quantized_snr_db, return_inverse=True
            )
            best_index, best_objective, has_feasible = self._solve_unique(
                unique_snr_db
            )
            candidate_index = best_index[inverse]
            candidate_objective = best_objective[inverse]
            feasible = has_feasible[inverse]
            n_unique_bins = int(unique_snr_db.size)
            n_policy_links = 0
            n_fallback_links = 0
        if self.strict and not feasible.all():
            first = int(np.argmin(feasible))
            self._raise_infeasible(float(quantized_snr_db[first]))

        has_current = state.config_index >= 0
        if has_current.any():
            current_objective, current_feasible = self._current_objective(
                state, quantized_snr_db, has_current
            )
            # Lanes with no feasible candidate carry inf/nan here; their
            # comparison result is discarded by the ~feasible select below.
            with np.errstate(invalid="ignore"):
                improvement = current_objective - candidate_objective
                threshold = self.hysteresis * np.abs(current_objective)
                adopt = (
                    ~has_current
                    | ~current_feasible
                    | (improvement > threshold)
                )
        else:
            current_objective = np.full(len(state), np.nan)
            adopt = np.ones(len(state), dtype=bool)

        new_index = np.where(
            ~feasible,
            np.int64(-1),
            np.where(adopt, candidate_index, state.config_index),
        )
        new_objective = np.where(
            ~feasible,
            np.nan,
            np.where(adopt, candidate_objective, current_objective),
        )
        reconfigured = new_index != state.config_index
        infeasible = ~feasible
        state.config_index = new_index
        state.objective_value = new_objective
        return FleetStepReport(
            step_index=int(step_index),
            n_links=len(state),
            n_unique_snr_bins=n_unique_bins,
            n_reconfigured=int(np.count_nonzero(reconfigured)),
            n_infeasible=int(np.count_nonzero(infeasible)),
            config_index=new_index,
            objective_value=new_objective,
            reconfigured=reconfigured,
            infeasible=infeasible,
            n_policy_links=n_policy_links,
            n_fallback_links=n_fallback_links,
        )

    # ------------------------------------------------------------ lookup

    def config_at(self, index: int, distance_m: float = 10.0) -> StackConfig:
        """Materialize one grid configuration index as a :class:`StackConfig`."""
        if not 0 <= index < len(self):
            raise FleetError(
                f"configuration index {index!r} outside the "
                f"{len(self)}-entry grid"
            )
        return StackConfig(
            distance_m=distance_m,
            ptx_level=int(self._ptx[index]),
            payload_bytes=int(self._payload[index]),
            n_max_tries=int(self._tries[index]),
            d_retry_ms=float(self._retry_ms[index]),
            q_max=int(self._qmax[index]),
            t_pkt_ms=float(self._tpkt_ms[index]),
        )
