"""Exception hierarchy for the ``repro`` library.

All exceptions raised by this package derive from :class:`ReproError`, so
applications can catch everything library-specific with a single handler
while still letting programming errors (``TypeError`` and friends) surface.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ConfigurationError",
    "UnitsError",
    "ModelError",
    "AnalysisError",
    "RadioError",
    "ChannelError",
    "SimulationError",
    "SchedulerError",
    "CampaignError",
    "DatasetError",
    "FittingError",
    "OptimizationError",
    "InfeasibleError",
    "LintError",
    "FleetError",
    "RoutingError",
    "TelemetryError",
    "ServeError",
    "ProtocolError",
    "OverloadError",
    "ServiceTimeoutError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """A stack parameter configuration is invalid or out of range.

    Raised, for example, when a :class:`repro.config.StackConfig` is built
    with a payload size exceeding the 114-byte stack maximum, or with an
    unknown CC2420 power level.
    """


class UnitsError(ReproError, ValueError):
    """A unit conversion received a value outside its domain.

    Subclasses :class:`ValueError` so callers validating plain numeric
    domains (``linear_to_db(-1)``) keep working with generic handlers.
    """


class ModelError(ReproError, ValueError):
    """An empirical-model evaluation was given out-of-domain parameters.

    Covers the closed-form PER/N_tries/PLR/service-time/energy/goodput
    models of ``repro.core``; subclasses :class:`ValueError` because these
    are argument-domain violations.
    """


class AnalysisError(ReproError, ValueError):
    """A metrics/statistics computation was asked for something undefined.

    Examples: bootstrap over an empty sample, a variation coefficient of a
    zero-mean series, or plotting an empty sparkline.
    """


class RadioError(ReproError):
    """A radio-layer operation failed (unknown power level, oversized frame)."""


class ChannelError(ReproError):
    """A channel-model operation failed (non-positive distance, bad sigma)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulerError(SimulationError):
    """The event scheduler was misused (event in the past, re-run after stop)."""


class CampaignError(ReproError):
    """A measurement campaign could not be constructed or executed."""


class DatasetError(ReproError):
    """A campaign dataset could not be read, written, or aggregated."""


class FittingError(ReproError):
    """An empirical-model regression failed to converge or had no data."""


class OptimizationError(ReproError):
    """A parameter-optimization problem is infeasible or ill-posed."""


class InfeasibleError(OptimizationError):
    """No configuration in the search space satisfies the constraints."""


class LintError(ReproError):
    """The reprolint static-analysis engine was misconfigured or misused.

    Raised for unknown rule ids, unreadable inputs, or malformed baseline
    files — never for findings, which are data, not exceptions.
    """


class FleetError(ReproError):
    """A multi-link fleet could not be built, evolved, or solved.

    Covers :mod:`repro.fleet` — topology generation, state columns, channel
    drift, the vectorized engine, and checkpointed runs. Per-link
    *infeasibility* is not an error at fleet scale (the engine marks the
    link and moves on); this exception is for structurally invalid fleets.
    """


class RoutingError(FleetError):
    """A multi-hop route could not be built or composed.

    Covers :mod:`repro.routing` — sink selection, tree construction over
    topology edges (including sinks or nodes disconnected from the rest
    of the deployment), path-metric composition, and the relay-load fixed
    point. Subclasses :class:`FleetError`: a routing failure is a fleet
    failure, so existing fleet-level handlers keep working.
    """


class TelemetryError(ReproError):
    """A telemetry uplink could not be encoded, estimated, or applied.

    Covers :mod:`repro.telemetry` — payload-template construction,
    out-of-range field values at encode time, and estimator/ingestor state
    mismatches. *Wire-level* defects in received frames (truncation, bad
    header, unknown template version) raise :class:`ProtocolError`
    instead, because a malformed frame is a malformed request.
    """


class ServeError(ReproError):
    """The link-configuration oracle service could not answer a request.

    Base class for every failure of :mod:`repro.serve` — malformed request
    payloads, backpressure rejections, and deadline expiries all derive
    from it so callers can fence off the serving layer with one handler.
    """


class ProtocolError(ServeError, ValueError):
    """A serve request payload is malformed or references unknown fields.

    ``field`` optionally names the offending request field so structured
    HTTP error bodies can point at it (the ``error.field`` key documented
    in ``docs/SERVING.md``).
    """

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.field = field


class OverloadError(ServeError):
    """The service work queue is full; retry after ``retry_after_s``.

    This is the explicit backpressure signal: the request was *not*
    enqueued, no work was done, and the caller should back off for at
    least :attr:`retry_after_s` seconds before resubmitting.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class ServiceTimeoutError(ServeError):
    """A serve request missed its deadline before (or while) being answered."""
