"""Multiprocess campaign execution.

The reconstructed Table I sweep is 48,384 configurations; at ~0.2 s of DES
per reduced-packet configuration that is hours single-threaded. This module
fans a sweep out over worker processes while preserving the runner's
determinism guarantee: each configuration's seed derives from (base_seed,
its index in the sweep), so results are bit-identical regardless of worker
count or scheduling order.

Worker processes are handed (index, config) pairs and a pickled runner
specification — not the runner itself, so progress callbacks and other
unpicklables stay in the parent. The specification is shipped *once* per
worker through the pool initializer (not re-pickled into every job), and
results stream back via ``imap_unordered`` and are re-sorted by sweep
index, so ordering is deterministic while no output buffering stalls the
pool.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..channel.environment import Environment, HALLWAY_2012
from ..config import StackConfig
from ..errors import CampaignError
from .dataset import CampaignDataset
from .runner import CampaignRunner
from .summary import ConfigSummary

__all__ = [
    "run_campaign_parallel",
]


@dataclass(frozen=True)
class _WorkerSpec:
    """Picklable description of the runner each worker reconstructs."""

    environment: Environment
    packets_per_config: int
    base_seed: int
    engine: str


#: Per-process worker state: the spec installed by the pool initializer.
#: Lives in the worker interpreter only; the parent never mutates it.
_WORKER_SPEC: Optional[_WorkerSpec] = None


def _init_worker(spec: _WorkerSpec) -> None:
    """Pool initializer: receive the worker spec once per process."""
    global _WORKER_SPEC
    _WORKER_SPEC = spec


def _run_one(
    spec: _WorkerSpec, index: int, config: StackConfig
) -> Tuple[int, ConfigSummary]:
    runner = CampaignRunner(
        environment=spec.environment,
        packets_per_config=spec.packets_per_config,
        base_seed=spec.base_seed,
        engine=spec.engine,
    )
    return index, runner.run_config(config, index)


def _run_indexed(
    job: Tuple[int, StackConfig], spec: Optional[_WorkerSpec] = None
) -> Tuple[int, ConfigSummary]:
    """Pool job body: evaluate one (index, config) against a worker spec.

    ``spec`` defaults to the one the pool initializer installed in this
    process. The seed still derives from ``(base_seed, index)`` inside the
    runner, so results are bit-identical to the serial path regardless of
    which worker picks the job up or in which order results stream back.
    """
    spec = spec if spec is not None else _WORKER_SPEC
    if spec is None:
        raise CampaignError("worker spec was not initialized in this process")
    index, config = job
    return _run_one(spec, index, config)


def run_campaign_parallel(
    space: Iterable[StackConfig],
    n_workers: int = 2,
    environment: Optional[Environment] = None,
    packets_per_config: int = 300,
    base_seed: int = 42,
    engine: str = "des",
    description: str = "",
    chunksize: int = 4,
) -> CampaignDataset:
    """Run a sweep across worker processes; deterministic per configuration.

    With ``n_workers=1`` no pool is created (useful under debuggers and on
    platforms where multiprocessing is restricted); the result is identical
    either way.
    """
    if n_workers < 1:
        raise CampaignError(f"n_workers must be >= 1, got {n_workers!r}")
    if chunksize < 1:
        raise CampaignError(f"chunksize must be >= 1, got {chunksize!r}")
    configs = list(space)
    if not configs:
        raise CampaignError("the campaign space is empty")
    spec = _WorkerSpec(
        environment=environment or HALLWAY_2012,
        packets_per_config=packets_per_config,
        base_seed=base_seed,
        engine=engine,
    )
    # Validate the spec eagerly (engine name etc.) before forking workers.
    CampaignRunner(
        environment=spec.environment,
        packets_per_config=spec.packets_per_config,
        base_seed=spec.base_seed,
        engine=spec.engine,
    )
    jobs = [(index, config) for index, config in enumerate(configs)]
    results: List[Tuple[int, ConfigSummary]] = []
    if n_workers == 1:
        results = [_run_one(spec, *job) for job in jobs]
    else:
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(
            processes=n_workers, initializer=_init_worker, initargs=(spec,)
        ) as pool:
            results = list(
                pool.imap_unordered(_run_indexed, jobs, chunksize=chunksize)
            )
    results.sort(key=lambda item: item[0])
    dataset = CampaignDataset(description=description)
    dataset.extend(summary for _, summary in results)
    return dataset
