"""The measurement-campaign runner (the paper's Sec. II-C, reconstructed).

Sweeps a :class:`~repro.config.ParameterSpace`, runs each configuration with
a derived per-configuration seed, aggregates each run into a
:class:`~repro.campaign.summary.ConfigSummary`, and returns (or persists)
a :class:`~repro.campaign.dataset.CampaignDataset`.

Two engines are available:

* ``"des"`` — the event-driven simulator: full fidelity including queueing,
  the engine for delay/loss/goodput sweeps;
* ``"fast"`` — the vectorized Monte-Carlo link: two orders of magnitude
  faster, exact for PER / N_tries / PLR_radio / energy and for *saturated*
  goodput, but blind to queueing (it reports zero queue loss and no
  queueing delay). Guarded accordingly.

The paper's full campaign is 48,384 configurations × 4,500 packets; a full
DES replay of that is hours of compute, so the runner supports packet-count
reduction and axis subsetting, and every benchmark documents the slice it
uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..analysis.metrics import compute_metrics
from ..channel.environment import Environment, HALLWAY_2012
from ..channel.link import LinkChannel
from ..config import ParameterSpace, StackConfig
from ..errors import CampaignError
from ..sim.fastlink import FastLink
from ..sim.rng import RngStreams, config_seed
from ..sim.simulator import SimulationOptions, simulate_link
from .dataset import CampaignDataset
from .summary import ConfigSummary

__all__ = [
    "CampaignRunner",
    "run_reference_campaign",
]

_ENGINES = ("des", "fast")


@dataclass
class CampaignRunner:
    """Executes a parameter sweep and aggregates the results."""

    environment: Environment = field(default_factory=lambda: HALLWAY_2012)
    packets_per_config: int = 4500
    base_seed: int = 42
    engine: str = "des"
    #: Called after each configuration with (index, total, summary); used by
    #: the CLI for progress reporting.
    progress: Optional[Callable[[int, int, ConfigSummary], None]] = None

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise CampaignError(
                f"unknown engine {self.engine!r}; valid engines: {_ENGINES}"
            )
        if self.packets_per_config < 1:
            raise CampaignError(
                f"packets_per_config must be >= 1, got {self.packets_per_config!r}"
            )

    def run_config(self, config: StackConfig, index: int = 0) -> ConfigSummary:
        """Run a single configuration and summarize it."""
        seed = config_seed(self.base_seed, index)
        if self.engine == "des":
            return self._run_des(config, seed)
        return self._run_fast(config, seed)

    def _run_des(self, config: StackConfig, seed: int) -> ConfigSummary:
        options = SimulationOptions(
            n_packets=self.packets_per_config,
            seed=seed,
            environment=self.environment,
        )
        trace = simulate_link(config, options=options)
        return ConfigSummary.from_metrics(
            config, compute_metrics(trace), engine="des", seed=seed
        )

    def _run_fast(self, config: StackConfig, seed: int) -> ConfigSummary:
        if config.q_max != 1:
            raise CampaignError(
                "the fast engine ignores queueing; restrict the sweep to "
                "q_max=1 or use engine='des'"
            )
        streams = RngStreams(seed)
        channel = LinkChannel(
            self.environment,
            config.distance_m,
            config.ptx_level,
            streams.stream("channel"),
        )
        fast = FastLink(environment=self.environment, seed=seed)
        result = fast.run(
            mean_snr_db=channel.mean_snr_db,
            payload_bytes=config.payload_bytes,
            n_packets=self.packets_per_config,
            n_max_tries=config.n_max_tries,
            d_retry_ms=config.d_retry_ms,
        )
        measured_snr = (
            float(result.snr_samples_db.mean())
            if result.snr_samples_db.size
            else channel.mean_snr_db
        )
        return ConfigSummary(
            config=config,
            engine="fast",
            n_packets=result.n_packets,
            seed=seed,
            mean_snr_db=measured_snr,
            mean_rssi_dbm=measured_snr + self.environment.noise.mean_dbm,
            per=result.per,
            plr_radio=result.plr_radio,
            plr_queue=0.0,
            plr_total=result.plr_radio,
            goodput_kbps=result.goodput_bps / 1e3,
            mean_delay_ms=result.mean_service_time_s * 1e3,
            mean_service_time_ms=result.mean_service_time_s * 1e3,
            mean_tries=result.mean_tries,
            u_eng_uj_per_bit=result.energy_per_info_bit_j(config.ptx_level) * 1e6,
            duration_s=float(result.service_time_s.sum()),
        )

    def run(
        self,
        space: Iterable[StackConfig],
        description: str = "",
    ) -> CampaignDataset:
        """Run every configuration of a space (or any config iterable)."""
        configs = list(space)
        if not configs:
            raise CampaignError("the campaign space is empty")
        dataset = CampaignDataset(description=description)
        for index, config in enumerate(configs):
            summary = self.run_config(config, index)
            dataset.append(summary)
            if self.progress is not None:
                self.progress(index, len(configs), summary)
        return dataset


def run_reference_campaign(
    space: Optional[ParameterSpace] = None,
    packets_per_config: int = 300,
    engine: str = "des",
    environment: Optional[Environment] = None,
    base_seed: int = 42,
    description: str = "reference campaign",
) -> CampaignDataset:
    """Convenience wrapper used by examples and benchmarks.

    Defaults to a reduced packet count (300 versus the paper's 4,500) so a
    meaningful slice of the space runs in seconds; statistical shape is
    preserved, confidence intervals are just wider.
    """
    from ..config import SMOKE_SPACE

    runner = CampaignRunner(
        environment=environment or HALLWAY_2012,
        packets_per_config=packets_per_config,
        base_seed=base_seed,
        engine=engine,
    )
    return runner.run(space if space is not None else SMOKE_SPACE, description)
