"""Dataset aggregation queries — the groupings behind the paper's figures.

Every figure in the paper is an aggregation of the campaign dataset along
one or two configuration axes ("goodput against SNR for each (Q_max,
N_maxTries) cell", "PER per payload size"). These helpers express those
groupings directly over a :class:`~repro.campaign.dataset.CampaignDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..errors import DatasetError
from .dataset import CampaignDataset
from .summary import ConfigSummary

__all__ = [
    "group_by",
    "AggregateRow",
    "aggregate",
    "metric_vs_snr",
    "best_configs",
]

_CONFIG_FIELDS = (
    "distance_m",
    "ptx_level",
    "n_max_tries",
    "d_retry_ms",
    "q_max",
    "t_pkt_ms",
    "payload_bytes",
)


def _key_getter(fields: Sequence[str]) -> Callable[[ConfigSummary], Tuple]:
    for name in fields:
        if name not in _CONFIG_FIELDS:
            raise DatasetError(
                f"unknown config field {name!r}; valid: {_CONFIG_FIELDS}"
            )

    def getter(summary: ConfigSummary) -> Tuple:
        return tuple(getattr(summary.config, name) for name in fields)

    return getter


def group_by(
    dataset: CampaignDataset, *fields: str
) -> Dict[Tuple, CampaignDataset]:
    """Partition a dataset by one or more config fields.

    >>> group_by(dataset, "q_max", "n_max_tries")
    {(1, 1): <...>, (1, 5): <...>, ...}
    """
    if not fields:
        raise DatasetError("group_by needs at least one field")
    getter = _key_getter(fields)
    groups: Dict[Tuple, CampaignDataset] = {}
    for summary in dataset:
        key = getter(summary)
        groups.setdefault(
            key, CampaignDataset(description=dataset.description)
        ).append(summary)
    return groups


@dataclass(frozen=True)
class AggregateRow:
    """One aggregated cell: grouping key plus metric statistics."""

    key: Tuple
    mean: float
    std: float
    count: int


def aggregate(
    dataset: CampaignDataset,
    metric: str,
    by: Sequence[str],
) -> List[AggregateRow]:
    """Mean/std of a summary metric per group, sorted by key.

    Non-finite metric values (e.g. infinite U_eng on dead links) are
    excluded from the statistics but still counted in ``count`` so coverage
    is visible.
    """
    rows = []
    for key, group in sorted(group_by(dataset, *by).items()):
        values = group.column(metric)
        finite = values[np.isfinite(values)]
        rows.append(
            AggregateRow(
                key=key,
                mean=float(finite.mean()) if finite.size else float("nan"),
                std=(
                    float(finite.std(ddof=1)) if finite.size > 1 else 0.0
                ),
                count=int(values.size),
            )
        )
    return rows


def metric_vs_snr(
    dataset: CampaignDataset,
    metric: str,
    snr_bin_width_db: float = 2.0,
) -> List[AggregateRow]:
    """A metric binned by measured mean SNR — the x-axis of most figures."""
    if snr_bin_width_db <= 0:
        raise DatasetError(
            f"snr_bin_width_db must be positive, got {snr_bin_width_db!r}"
        )
    snr = dataset.column("mean_snr_db")
    values = dataset.column(metric)
    mask = np.isfinite(snr)
    snr, values = snr[mask], values[mask]
    if snr.size == 0:
        return []
    bins = np.floor(snr / snr_bin_width_db) * snr_bin_width_db
    rows = []
    # Each iteration does vector work per bin; iterate plain floats so the
    # scalar loop itself never touches ndarray element boxing.
    for edge in np.unique(bins).tolist():
        cell = values[bins == edge]
        finite = cell[np.isfinite(cell)]
        rows.append(
            AggregateRow(
                key=(edge + snr_bin_width_db / 2,),
                mean=float(finite.mean()) if finite.size else float("nan"),
                std=float(finite.std(ddof=1)) if finite.size > 1 else 0.0,
                count=int(cell.size),
            )
        )
    return rows


def best_configs(
    dataset: CampaignDataset,
    metric: str,
    minimize: bool = True,
    top: int = 5,
) -> List[ConfigSummary]:
    """The top configurations by a measured metric (finite values only)."""
    if top < 1:
        raise DatasetError(f"top must be >= 1, got {top!r}")
    candidates = [
        s
        for s in dataset
        if np.isfinite(getattr(s, metric))
    ]
    if not candidates:
        raise DatasetError(f"no finite values for metric {metric!r}")
    return sorted(
        candidates,
        key=lambda s: getattr(s, metric),
        reverse=not minimize,
    )[:top]
