"""Per-configuration summary records — the rows of a campaign dataset.

The paper's public dataset aggregates per-packet logs into per-configuration
statistics; :class:`ConfigSummary` is that row. It is deliberately a plain
serializable record (dict round-trip) so datasets can be written as JSON
lines and reloaded without the simulator.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, Mapping

from ..analysis.metrics import LinkMetrics
from ..config import StackConfig
from ..errors import DatasetError

__all__ = [
    "ConfigSummary",
]


@dataclass(frozen=True)
class ConfigSummary:
    """Aggregated measurement of one configuration run."""

    config: StackConfig
    engine: str
    n_packets: int
    seed: int
    mean_snr_db: float
    mean_rssi_dbm: float
    per: float
    plr_radio: float
    plr_queue: float
    plr_total: float
    goodput_kbps: float
    mean_delay_ms: float
    mean_service_time_ms: float
    mean_tries: float
    u_eng_uj_per_bit: float
    duration_s: float

    @classmethod
    def from_metrics(
        cls,
        config: StackConfig,
        metrics: LinkMetrics,
        engine: str,
        seed: int,
    ) -> "ConfigSummary":
        """Build a summary row from a trace's computed metrics."""
        return cls(
            config=config,
            engine=engine,
            n_packets=metrics.n_packets,
            seed=seed,
            mean_snr_db=metrics.mean_snr_db,
            mean_rssi_dbm=metrics.mean_rssi_dbm,
            per=metrics.per,
            plr_radio=metrics.plr_radio,
            plr_queue=metrics.plr_queue,
            plr_total=metrics.plr_total,
            goodput_kbps=metrics.goodput_kbps,
            mean_delay_ms=metrics.mean_delay_s * 1e3,
            mean_service_time_ms=metrics.mean_service_time_s * 1e3,
            mean_tries=metrics.mean_tries,
            u_eng_uj_per_bit=metrics.energy_per_info_bit_uj,
            duration_s=metrics.duration_s,
        )

    def as_dict(self) -> Dict[str, object]:
        """Flat dict with the config inlined; JSON-safe (inf/nan → None)."""
        row: Dict[str, object] = dict(self.config.as_dict())
        for name, value in asdict(self).items():
            if name == "config":
                continue
            if isinstance(value, float) and not math.isfinite(value):
                value = None
            row[name] = value
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, object]) -> "ConfigSummary":
        """Inverse of :meth:`as_dict`."""
        config_fields = {
            "distance_m",
            "ptx_level",
            "n_max_tries",
            "d_retry_ms",
            "q_max",
            "t_pkt_ms",
            "payload_bytes",
        }
        try:
            config = StackConfig.from_dict(
                {k: row[k] for k in config_fields}
            )
        except KeyError as exc:
            raise DatasetError(f"summary row missing config field {exc}") from None
        kwargs: Dict[str, object] = {}
        for name in (
            "engine",
            "n_packets",
            "seed",
            "mean_snr_db",
            "mean_rssi_dbm",
            "per",
            "plr_radio",
            "plr_queue",
            "plr_total",
            "goodput_kbps",
            "mean_delay_ms",
            "mean_service_time_ms",
            "mean_tries",
            "u_eng_uj_per_bit",
            "duration_s",
        ):
            if name not in row:
                raise DatasetError(f"summary row missing field {name!r}")
            value = row[name]
            if value is None:
                value = math.inf if name == "u_eng_uj_per_bit" else math.nan
            kwargs[name] = value
        return cls(config=config, **kwargs)  # type: ignore[arg-type]
