"""Measurement-campaign harness: sweep runner, datasets, direct SNR sweeps.

Reconstructs the paper's data-collection machinery (Sec. II-C): iterate the
Table I configuration space, log per-configuration summaries, persist and
re-query them.
"""

from .checkpoint import load_checkpoint_rows, run_campaign_checkpointed
from .dataset import CampaignDataset
from .parallel import run_campaign_parallel
from .queries import AggregateRow, aggregate, best_configs, group_by, metric_vs_snr
from .runner import CampaignRunner, run_reference_campaign
from .snr_sweep import SweepPoint, points_as_arrays, sweep_snr_payload
from .summary import ConfigSummary

__all__ = [
    "AggregateRow",
    "CampaignDataset",
    "CampaignRunner",
    "ConfigSummary",
    "SweepPoint",
    "aggregate",
    "best_configs",
    "group_by",
    "load_checkpoint_rows",
    "metric_vs_snr",
    "points_as_arrays",
    "run_campaign_checkpointed",
    "run_campaign_parallel",
    "run_reference_campaign",
    "sweep_snr_payload",
]
