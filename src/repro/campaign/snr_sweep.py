"""Direct (SNR × payload) sweeps for model fitting and the PER figures.

The paper's Figs. 6, 11 and 12 are functions of SNR and payload size rather
than of the raw (distance, P_tx) grid, so the cleanest reproduction sweeps
commanded mean SNR directly using the vectorized link engine. Each sweep
point reports the measured PER, loss rate, transmission count and the
per-transmission SNR samples the paper's scatter plots are made of.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..channel.environment import Environment, HALLWAY_2012
from ..errors import CampaignError
from ..sim.fastlink import FastLink, FastLinkResult

__all__ = [
    "SweepPoint",
    "sweep_snr_payload",
    "points_as_arrays",
]


@dataclass(frozen=True)
class SweepPoint:
    """One (mean SNR, payload, N_maxTries) cell of a sweep."""

    mean_snr_db: float
    payload_bytes: int
    n_max_tries: int
    per: float
    plr_radio: float
    mean_tries: float
    mean_service_time_s: float
    goodput_bps: float
    measured_snr_db: float
    n_packets: int


def sweep_snr_payload(
    snr_values_db: Sequence[float],
    payload_values_bytes: Sequence[int],
    n_packets: int = 2000,
    n_max_tries: int = 1,
    d_retry_ms: float = 0.0,
    environment: Optional[Environment] = None,
    seed: int = 0,
    snr_jitter_db: Optional[float] = None,
) -> List[SweepPoint]:
    """Run the vectorized link over an (SNR × payload) grid."""
    if not snr_values_db or not payload_values_bytes:
        raise CampaignError("sweep axes must be non-empty")
    env = environment or HALLWAY_2012
    points: List[SweepPoint] = []
    for i, snr in enumerate(snr_values_db):
        for j, payload in enumerate(payload_values_bytes):
            link = FastLink(
                environment=env,
                seed=(seed * 1_000_003 + i * 1009 + j),
                snr_jitter_db=snr_jitter_db,
            )
            result = link.run(
                mean_snr_db=float(snr),
                payload_bytes=int(payload),
                n_packets=n_packets,
                n_max_tries=n_max_tries,
                d_retry_ms=d_retry_ms,
            )
            points.append(_to_point(result, d_retry_ms))
    return points


def _to_point(result: FastLinkResult, d_retry_ms: float) -> SweepPoint:
    measured = (
        float(result.snr_samples_db.mean())
        if result.snr_samples_db.size
        else result.mean_snr_db
    )
    return SweepPoint(
        mean_snr_db=result.mean_snr_db,
        payload_bytes=result.payload_bytes,
        n_max_tries=result.n_max_tries,
        per=result.per,
        plr_radio=result.plr_radio,
        mean_tries=result.mean_tries,
        mean_service_time_s=result.mean_service_time_s,
        goodput_bps=result.goodput_bps,
        measured_snr_db=measured,
        n_packets=result.n_packets,
    )


def points_as_arrays(points: Sequence[SweepPoint]):
    """(payload, snr, per, plr, tries) arrays from sweep points."""
    if not points:
        raise CampaignError("no sweep points")
    payload = np.asarray([p.payload_bytes for p in points], dtype=float)
    snr = np.asarray([p.measured_snr_db for p in points], dtype=float)
    per = np.asarray([p.per for p in points], dtype=float)
    plr = np.asarray([p.plr_radio for p in points], dtype=float)
    tries = np.asarray([p.mean_tries for p in points], dtype=float)
    return payload, snr, per, plr, tries
