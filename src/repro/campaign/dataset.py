"""Campaign dataset container and persistence.

A :class:`CampaignDataset` is an ordered collection of per-configuration
summaries with query helpers shaped after how the paper slices its data
("all runs at 35 m with Q_max = 1", "PER against SNR for every payload").
Datasets persist as JSON-lines files: a small header line followed by one
summary row per line — diff-friendly and loadable without the simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, List

import numpy as np

from ..errors import DatasetError
from .summary import ConfigSummary

__all__ = [
    "CampaignDataset",
]

_FORMAT = "repro-campaign-v1"


@dataclass
class CampaignDataset:
    """An ordered, filterable collection of configuration summaries."""

    summaries: List[ConfigSummary] = field(default_factory=list)
    description: str = ""

    def __len__(self) -> int:
        return len(self.summaries)

    def __iter__(self) -> Iterator[ConfigSummary]:
        return iter(self.summaries)

    def append(self, summary: ConfigSummary) -> None:
        self.summaries.append(summary)

    def extend(self, summaries: Iterable[ConfigSummary]) -> None:
        self.summaries.extend(summaries)

    # -------------------------------------------------------------- queries

    def where(self, predicate: Callable[[ConfigSummary], bool]) -> "CampaignDataset":
        """Subset by an arbitrary predicate."""
        return CampaignDataset(
            summaries=[s for s in self.summaries if predicate(s)],
            description=self.description,
        )

    def select(self, **config_values: object) -> "CampaignDataset":
        """Subset by exact config field values.

        >>> dataset.select(distance_m=35.0, q_max=1)
        """
        valid = {
            "distance_m",
            "ptx_level",
            "n_max_tries",
            "d_retry_ms",
            "q_max",
            "t_pkt_ms",
            "payload_bytes",
        }
        unknown = set(config_values) - valid
        if unknown:
            raise DatasetError(f"unknown config fields: {sorted(unknown)}")

        def match(summary: ConfigSummary) -> bool:
            return all(
                getattr(summary.config, name) == value
                for name, value in config_values.items()
            )

        return self.where(match)

    def column(self, name: str) -> np.ndarray:
        """A summary field (or config field) across all rows, as an array."""
        if not self.summaries:
            return np.empty(0)
        first = self.summaries[0]
        if hasattr(first.config, name):
            return np.asarray(
                [getattr(s.config, name) for s in self.summaries], dtype=float
            )
        if hasattr(first, name):
            return np.asarray(
                [getattr(s, name) for s in self.summaries], dtype=float
            )
        raise DatasetError(f"unknown column {name!r}")

    def unique(self, name: str) -> List[float]:
        """Sorted unique values of a column."""
        return sorted(set(self.column(name).tolist()))

    # -------------------------------------------------------- persistence

    def save(self, path) -> None:
        """Write as JSON lines (header + one row per summary)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as fh:
            header = {
                "format": _FORMAT,
                "description": self.description,
                "n_rows": len(self.summaries),
            }
            fh.write(json.dumps(header) + "\n")
            for summary in self.summaries:
                fh.write(json.dumps(summary.as_dict()) + "\n")

    @classmethod
    def load(cls, path) -> "CampaignDataset":
        """Read a dataset written by :meth:`save`."""
        source = Path(path)
        if not source.exists():
            raise DatasetError(f"no dataset at {source}")
        with source.open("r", encoding="utf-8") as fh:
            header_line = fh.readline()
            if not header_line:
                raise DatasetError(f"dataset {source} is empty")
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise DatasetError(f"bad dataset header in {source}: {exc}") from exc
            if header.get("format") != _FORMAT:
                raise DatasetError(
                    f"unsupported dataset format {header.get('format')!r} "
                    f"(expected {_FORMAT!r})"
                )
            summaries = []
            for lineno, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    summaries.append(ConfigSummary.from_dict(json.loads(line)))
                except (json.JSONDecodeError, DatasetError) as exc:
                    raise DatasetError(
                        f"bad summary row at {source}:{lineno}: {exc}"
                    ) from exc
        expected = header.get("n_rows")
        if expected is not None and expected != len(summaries):
            raise DatasetError(
                f"dataset {source} truncated: header says {expected} rows, "
                f"found {len(summaries)}"
            )
        return cls(summaries=summaries, description=header.get("description", ""))
