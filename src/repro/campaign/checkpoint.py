"""Checkpointed (resumable) campaign execution.

The full reconstructed Table I sweep is 48,384 configurations — hours of
compute. A checkpointed run appends each configuration's summary to the
dataset file as soon as it completes; re-running the same command after an
interruption verifies the already-present rows against the sweep (same
configs, same seeds) and continues from the first missing index.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable, List, Optional

from ..channel.environment import Environment, HALLWAY_2012
from ..config import StackConfig
from ..errors import CampaignError
from .dataset import CampaignDataset, _FORMAT
from .runner import CampaignRunner
from .summary import ConfigSummary

__all__ = [
    "run_campaign_checkpointed",
]


def _append_row(path: Path, summary: ConfigSummary) -> None:
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(summary.as_dict()) + "\n")


def _write_header(path: Path, description: str) -> None:
    # n_rows is intentionally omitted from checkpoint headers: the row count
    # grows as the run progresses, and the loader treats a missing count as
    # "trust the rows present".
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(
            json.dumps({"format": _FORMAT, "description": description}) + "\n"
        )


def run_campaign_checkpointed(
    space: Iterable[StackConfig],
    checkpoint_path,
    environment: Optional[Environment] = None,
    packets_per_config: int = 300,
    base_seed: int = 42,
    engine: str = "des",
    description: str = "checkpointed campaign",
    progress: Optional[Callable[[int, int, ConfigSummary], None]] = None,
) -> CampaignDataset:
    """Run (or resume) a sweep, appending each summary to ``checkpoint_path``.

    On resume, rows already in the file are verified to correspond — in
    order — to the sweep's configurations with the expected per-index seeds;
    a mismatch (different space, different base seed) raises rather than
    silently mixing two campaigns.
    """
    configs = list(space)
    if not configs:
        raise CampaignError("the campaign space is empty")
    path = Path(checkpoint_path)
    runner = CampaignRunner(
        environment=environment or HALLWAY_2012,
        packets_per_config=packets_per_config,
        base_seed=base_seed,
        engine=engine,
    )

    existing: List[ConfigSummary] = []
    if path.exists():
        loaded = CampaignDataset.load(path)
        existing = loaded.summaries
        if len(existing) > len(configs):
            raise CampaignError(
                f"checkpoint has {len(existing)} rows but the sweep only has "
                f"{len(configs)} configurations — wrong space?"
            )
        from ..sim.rng import config_seed

        for index, summary in enumerate(existing):
            if summary.config != configs[index]:
                raise CampaignError(
                    f"checkpoint row {index} is for {summary.config}, the "
                    f"sweep expects {configs[index]} — wrong space or order"
                )
            if summary.seed != config_seed(base_seed, index):
                raise CampaignError(
                    f"checkpoint row {index} used seed {summary.seed}, the "
                    f"sweep derives a different one — wrong base_seed?"
                )
    else:
        _write_header(path, description)

    dataset = CampaignDataset(description=description)
    dataset.extend(existing)
    for index in range(len(existing), len(configs)):
        summary = runner.run_config(configs[index], index)
        _append_row(path, summary)
        dataset.append(summary)
        if progress is not None:
            progress(index, len(configs), summary)
    return dataset
