"""Checkpointed (resumable) campaign execution.

The full reconstructed Table I sweep is 48,384 configurations — hours of
compute. A checkpointed run appends each configuration's summary to the
dataset file as soon as it completes; re-running the same command after an
interruption verifies the already-present rows against the sweep (same
configs, same seeds) and continues from the first missing index.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Iterable, List, Optional

from ..channel.environment import Environment, HALLWAY_2012
from ..config import StackConfig
from ..errors import CampaignError, DatasetError
from .dataset import CampaignDataset, _FORMAT
from .runner import CampaignRunner
from .summary import ConfigSummary

__all__ = [
    "append_checkpoint_row",
    "load_checkpoint_jsonl",
    "load_checkpoint_rows",
    "run_campaign_checkpointed",
    "write_checkpoint_header",
]


def append_checkpoint_row(path, row: dict) -> None:
    """Durably append one JSON row to a checkpoint file.

    flush + fsync per row: a crash (power loss, OOM kill) between rows
    loses at most the row being written, and that partial line is
    truncated-and-redone on resume by :func:`load_checkpoint_jsonl`.
    """
    with Path(path).open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(row) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def _append_row(path: Path, summary: ConfigSummary) -> None:
    append_checkpoint_row(path, summary.as_dict())


def load_checkpoint_jsonl(
    path, expected_format: str, parse_row: Callable[[dict], object]
) -> List[object]:
    """Load a JSONL checkpoint, tolerating one partial trailing row.

    The format-agnostic loader shared by campaign sweeps and fleet runs:
    the first line must be a JSON header whose ``format`` equals
    ``expected_format``; every following non-empty line is parsed with
    ``parse_row``. A crash mid-append can leave the final line incomplete
    (cut mid-JSON — possibly mid multi-byte UTF-8 character — or
    syntactically valid but missing fields). Such a row is dropped and
    the file is truncated back to the last complete row, so resuming
    simply re-runs that unit of work. A malformed row anywhere *before*
    the end still raises :class:`~repro.errors.DatasetError` — that is
    corruption, not an interrupted append.
    """
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"no checkpoint at {source}")
    data = source.read_bytes()
    if not data.strip():
        raise DatasetError(f"checkpoint {source} is empty")
    rows: List[object] = []
    truncate_at: Optional[int] = None
    offset = 0
    lineno = 0
    header_seen = False
    while offset < len(data):
        newline = data.find(b"\n", offset)
        line_end = len(data) if newline == -1 else newline
        next_offset = line_end + (0 if newline == -1 else 1)
        text = data[offset:line_end].decode("utf-8", errors="replace").strip()
        lineno += 1
        if not header_seen:
            try:
                header = json.loads(text)
            except json.JSONDecodeError as exc:
                raise DatasetError(
                    f"bad checkpoint header in {source}: {exc}"
                ) from exc
            if (
                not isinstance(header, dict)
                or header.get("format") != expected_format
            ):
                raise DatasetError(
                    f"unsupported checkpoint format in {source} "
                    f"(expected {expected_format!r})"
                )
            header_seen = True
        elif text:
            try:
                parsed = json.loads(text)
                if not isinstance(parsed, dict):
                    raise DatasetError("row is not a JSON object")
                rows.append(parse_row(parsed))
            except (ValueError, TypeError, DatasetError) as exc:
                if data[next_offset:].strip():
                    raise DatasetError(
                        f"bad summary row at {source}:{lineno}: {exc}"
                    ) from exc
                truncate_at = offset
                break
        offset = next_offset
    if truncate_at is not None:
        with source.open("r+b") as fh:
            fh.truncate(truncate_at)
            fh.flush()
            os.fsync(fh.fileno())
    return rows


def load_checkpoint_rows(path) -> List[ConfigSummary]:
    """Load a campaign checkpoint, tolerating one partial trailing row.

    The campaign-format instantiation of :func:`load_checkpoint_jsonl`;
    see there for the crash-recovery contract.
    """
    return load_checkpoint_jsonl(  # type: ignore[return-value]
        path, _FORMAT, ConfigSummary.from_dict
    )


def write_checkpoint_header(path, header: dict) -> None:
    """Create a checkpoint file holding only its JSON header line.

    ``header`` must carry the ``format`` tag the matching loader expects.
    A row count is intentionally omitted from checkpoint headers: the row
    count grows as the run progresses, and the loader treats a missing
    count as "trust the rows present".
    """
    if "format" not in header:
        raise DatasetError("checkpoint header needs a 'format' tag")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")


def _write_header(path: Path, description: str) -> None:
    write_checkpoint_header(
        path, {"format": _FORMAT, "description": description}
    )


def run_campaign_checkpointed(
    space: Iterable[StackConfig],
    checkpoint_path,
    environment: Optional[Environment] = None,
    packets_per_config: int = 300,
    base_seed: int = 42,
    engine: str = "des",
    description: str = "checkpointed campaign",
    progress: Optional[Callable[[int, int, ConfigSummary], None]] = None,
) -> CampaignDataset:
    """Run (or resume) a sweep, appending each summary to ``checkpoint_path``.

    On resume, rows already in the file are verified to correspond — in
    order — to the sweep's configurations with the expected per-index seeds;
    a mismatch (different space, different base seed) raises rather than
    silently mixing two campaigns.
    """
    configs = list(space)
    if not configs:
        raise CampaignError("the campaign space is empty")
    path = Path(checkpoint_path)
    runner = CampaignRunner(
        environment=environment or HALLWAY_2012,
        packets_per_config=packets_per_config,
        base_seed=base_seed,
        engine=engine,
    )

    existing: List[ConfigSummary] = []
    if path.exists():
        existing = load_checkpoint_rows(path)
        if len(existing) > len(configs):
            raise CampaignError(
                f"checkpoint has {len(existing)} rows but the sweep only has "
                f"{len(configs)} configurations — wrong space?"
            )
        from ..sim.rng import config_seed

        for index, summary in enumerate(existing):
            if summary.config != configs[index]:
                raise CampaignError(
                    f"checkpoint row {index} is for {summary.config}, the "
                    f"sweep expects {configs[index]} — wrong space or order"
                )
            if summary.seed != config_seed(base_seed, index):
                raise CampaignError(
                    f"checkpoint row {index} used seed {summary.seed}, the "
                    f"sweep derives a different one — wrong base_seed?"
                )
    else:
        _write_header(path, description)

    dataset = CampaignDataset(description=description)
    dataset.extend(existing)
    for index in range(len(existing), len(configs)):
        summary = runner.run_config(configs[index], index)
        _append_row(path, summary)
        dataset.append(summary)
        if progress is not None:
            progress(index, len(configs), summary)
    return dataset
