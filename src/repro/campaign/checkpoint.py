"""Checkpointed (resumable) campaign execution.

The full reconstructed Table I sweep is 48,384 configurations — hours of
compute. A checkpointed run appends each configuration's summary to the
dataset file as soon as it completes; re-running the same command after an
interruption verifies the already-present rows against the sweep (same
configs, same seeds) and continues from the first missing index.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Iterable, List, Optional

from ..channel.environment import Environment, HALLWAY_2012
from ..config import StackConfig
from ..errors import CampaignError, DatasetError
from .dataset import CampaignDataset, _FORMAT
from .runner import CampaignRunner
from .summary import ConfigSummary

__all__ = [
    "load_checkpoint_rows",
    "run_campaign_checkpointed",
]


def _append_row(path: Path, summary: ConfigSummary) -> None:
    # flush + fsync per row: a crash (power loss, OOM kill) between
    # configurations loses at most the row being written, and that partial
    # line is truncated-and-redone on resume by load_checkpoint_rows.
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(summary.as_dict()) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def load_checkpoint_rows(path) -> List[ConfigSummary]:
    """Load a checkpoint file, tolerating one partial trailing row.

    A crash mid-append can leave the final line incomplete (cut mid-JSON,
    or syntactically valid but missing fields). Such a row is dropped and
    the file is truncated back to the last complete row, so resuming
    simply re-runs that configuration. A malformed row anywhere *before*
    the end still raises :class:`~repro.errors.DatasetError` — that is
    corruption, not an interrupted append.
    """
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"no checkpoint at {source}")
    data = source.read_bytes()
    if not data.strip():
        raise DatasetError(f"checkpoint {source} is empty")
    rows: List[ConfigSummary] = []
    truncate_at: Optional[int] = None
    offset = 0
    lineno = 0
    header_seen = False
    while offset < len(data):
        newline = data.find(b"\n", offset)
        line_end = len(data) if newline == -1 else newline
        next_offset = line_end + (0 if newline == -1 else 1)
        text = data[offset:line_end].decode("utf-8", errors="replace").strip()
        lineno += 1
        if not header_seen:
            try:
                header = json.loads(text)
            except json.JSONDecodeError as exc:
                raise DatasetError(
                    f"bad checkpoint header in {source}: {exc}"
                ) from exc
            if not isinstance(header, dict) or header.get("format") != _FORMAT:
                raise DatasetError(
                    f"unsupported checkpoint format in {source} "
                    f"(expected {_FORMAT!r})"
                )
            header_seen = True
        elif text:
            try:
                rows.append(ConfigSummary.from_dict(json.loads(text)))
            except (ValueError, TypeError, DatasetError) as exc:
                if data[next_offset:].strip():
                    raise DatasetError(
                        f"bad summary row at {source}:{lineno}: {exc}"
                    ) from exc
                truncate_at = offset
                break
        offset = next_offset
    if truncate_at is not None:
        with source.open("r+b") as fh:
            fh.truncate(truncate_at)
            fh.flush()
            os.fsync(fh.fileno())
    return rows


def _write_header(path: Path, description: str) -> None:
    # n_rows is intentionally omitted from checkpoint headers: the row count
    # grows as the run progresses, and the loader treats a missing count as
    # "trust the rows present".
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(
            json.dumps({"format": _FORMAT, "description": description}) + "\n"
        )


def run_campaign_checkpointed(
    space: Iterable[StackConfig],
    checkpoint_path,
    environment: Optional[Environment] = None,
    packets_per_config: int = 300,
    base_seed: int = 42,
    engine: str = "des",
    description: str = "checkpointed campaign",
    progress: Optional[Callable[[int, int, ConfigSummary], None]] = None,
) -> CampaignDataset:
    """Run (or resume) a sweep, appending each summary to ``checkpoint_path``.

    On resume, rows already in the file are verified to correspond — in
    order — to the sweep's configurations with the expected per-index seeds;
    a mismatch (different space, different base seed) raises rather than
    silently mixing two campaigns.
    """
    configs = list(space)
    if not configs:
        raise CampaignError("the campaign space is empty")
    path = Path(checkpoint_path)
    runner = CampaignRunner(
        environment=environment or HALLWAY_2012,
        packets_per_config=packets_per_config,
        base_seed=base_seed,
        engine=engine,
    )

    existing: List[ConfigSummary] = []
    if path.exists():
        existing = load_checkpoint_rows(path)
        if len(existing) > len(configs):
            raise CampaignError(
                f"checkpoint has {len(existing)} rows but the sweep only has "
                f"{len(configs)} configurations — wrong space?"
            )
        from ..sim.rng import config_seed

        for index, summary in enumerate(existing):
            if summary.config != configs[index]:
                raise CampaignError(
                    f"checkpoint row {index} is for {summary.config}, the "
                    f"sweep expects {configs[index]} — wrong space or order"
                )
            if summary.seed != config_seed(base_seed, index):
                raise CampaignError(
                    f"checkpoint row {index} used seed {summary.seed}, the "
                    f"sweep derives a different one — wrong base_seed?"
                )
    else:
        _write_header(path, description)

    dataset = CampaignDataset(description=description)
    dataset.extend(existing)
    for index in range(len(existing), len(configs)):
        summary = runner.run_config(configs[index], index)
        _append_row(path, summary)
        dataset.append(summary)
        if progress is not None:
            progress(index, len(configs), summary)
    return dataset
