"""Extensions beyond the paper's testbed (its Sec. VIII-D future-work list):

concurrent-transmission interference, low-power-listening wake-ups, and node
mobility. Each composes with the substrate (environments, channels, service
model) rather than forking it, and each has an ablation benchmark.
"""

from .burst import GilbertElliottChannel, GilbertElliottConfig
from .interference import (
    CollidingBer,
    InterfererConfig,
    interfered_csma,
    interfered_environment,
)
from .lpl import LplConfig, LplEnergyModel, LplServiceTimeModel
from .mobility import MobileLinkChannel, MobilityTrace

__all__ = [
    "CollidingBer",
    "GilbertElliottChannel",
    "GilbertElliottConfig",
    "InterfererConfig",
    "LplConfig",
    "LplEnergyModel",
    "LplServiceTimeModel",
    "MobileLinkChannel",
    "MobilityTrace",
    "interfered_csma",
    "interfered_environment",
]
