"""Low-power listening / duty-cycled MAC (paper Sec. VIII-D, factor 2).

The paper notes that "MAC parameters related to periodic wake-ups also have
great impact on the performance". This extension models an X-MAC/BoX-MAC
style low-power-listening receiver: it sleeps for ``sleep_interval`` between
short channel probes, so a sender must stretch its preamble (or repeat the
frame) until the receiver wakes — on average half a sleep interval, worst
case a full one.

The extension composes with the core models rather than the event simulator:
it transforms service times and energy budgets, which is exactly the level
at which the paper's own guidelines operate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..radio import cc2420
from ..config import StackConfig
from ..core.service_time import ServiceTimeModel

__all__ = [
    "LplConfig",
    "LplServiceTimeModel",
    "LplEnergyModel",
]


@dataclass(frozen=True)
class LplConfig:
    """Low-power-listening parameters."""

    sleep_interval_ms: float = 100.0
    #: Duration of one receiver channel probe (ms).
    probe_ms: float = 2.5

    def __post_init__(self) -> None:
        if self.sleep_interval_ms <= 0:
            raise SimulationError(
                f"sleep_interval_ms must be positive, got {self.sleep_interval_ms!r}"
            )
        if self.probe_ms <= 0:
            raise SimulationError(
                f"probe_ms must be positive, got {self.probe_ms!r}"
            )

    @property
    def mean_wakeup_delay_s(self) -> float:
        """Mean preamble stretch: half the sleep interval."""
        return self.sleep_interval_ms / 2e3

    @property
    def max_wakeup_delay_s(self) -> float:
        """Worst-case preamble stretch: one full sleep interval."""
        return self.sleep_interval_ms / 1e3

    @property
    def receiver_duty_cycle(self) -> float:
        """Fraction of time the idle receiver keeps its radio on."""
        return self.probe_ms / (self.probe_ms + self.sleep_interval_ms)

    def receiver_idle_power_w(self) -> float:
        """Average idle power of the duty-cycled receiver (W)."""
        on = cc2420.rx_power_w()
        off = cc2420.SUPPLY_VOLTAGE_V * cc2420.SLEEP_CURRENT_A
        d = self.receiver_duty_cycle
        return d * on + (1.0 - d) * off


@dataclass(frozen=True)
class LplServiceTimeModel:
    """Service-time model with the LPL wake-up stretch on the first attempt.

    Retransmissions follow quickly after the initial rendezvous (the
    receiver stays awake for the exchange), so only the first attempt pays
    the wake-up delay — the standard X-MAC analysis.
    """

    lpl: LplConfig = field(default_factory=LplConfig)
    base: ServiceTimeModel = field(default_factory=ServiceTimeModel)

    def mean_service_time_s(
        self,
        payload_bytes: int,
        snr_db,
        n_max_tries: int,
        d_retry_ms: float,
    ):
        return (
            self.base.mean_service_time_s(
                payload_bytes, snr_db, n_max_tries, d_retry_ms
            )
            + self.lpl.mean_wakeup_delay_s
        )

    def sender_preamble_energy_j(self, ptx_level: int) -> float:
        """Energy spent transmitting the mean wake-up preamble (J)."""
        return cc2420.tx_power_w(ptx_level) * self.lpl.mean_wakeup_delay_s

    def utilization(self, config: StackConfig, snr_db: float) -> float:
        """ρ including the LPL stretch — LPL makes overload much easier."""
        service = self.mean_service_time_s(
            config.payload_bytes, snr_db, config.n_max_tries, config.d_retry_ms
        )
        return service / (config.t_pkt_ms / 1e3)

    def max_stable_rate_pps(self, config: StackConfig, snr_db: float) -> float:
        """Largest packet rate keeping ρ < 1 under LPL."""
        service = self.mean_service_time_s(
            config.payload_bytes, snr_db, config.n_max_tries, config.d_retry_ms
        )
        return 1.0 / service


@dataclass(frozen=True)
class LplEnergyModel:
    """The duty-cycling energy trade-off and its optimal sleep interval.

    Longer sleep intervals save receiver idle energy (duty cycle ∝
    1/interval) but cost the sender a longer mean wake-up preamble
    (∝ interval/2) on every packet. The per-second pair energy is therefore
    U-shaped in the interval, with the classic X-MAC square-root optimum:

    ``E(T) ≈ rate · P_tx_preamble · T/2 + P_rx · t_probe / T + const``
    ``T* = sqrt(2 · P_rx · t_probe / (rate · P_tx))``
    """

    ptx_level: int = 31
    probe_ms: float = 2.5

    def pair_power_w(self, sleep_interval_ms: float, packet_rate_pps: float) -> float:
        """Average sender+receiver power for a sleep interval (watts)."""
        if sleep_interval_ms <= 0:
            raise SimulationError(
                f"sleep_interval_ms must be positive, got {sleep_interval_ms!r}"
            )
        if packet_rate_pps < 0:
            raise SimulationError(
                f"packet_rate_pps must be >= 0, got {packet_rate_pps!r}"
            )
        lpl = LplConfig(sleep_interval_ms=sleep_interval_ms, probe_ms=self.probe_ms)
        sender_preamble_w = (
            packet_rate_pps
            * cc2420.tx_power_w(self.ptx_level)
            * lpl.mean_wakeup_delay_s
        )
        return sender_preamble_w + lpl.receiver_idle_power_w()

    def optimal_sleep_interval_ms(
        self,
        packet_rate_pps: float,
        lo_ms: float = 1.0,
        hi_ms: float = 5000.0,
        n_grid: int = 400,
    ) -> float:
        """Sleep interval minimizing the pair power (grid + golden refine)."""
        if packet_rate_pps <= 0:
            raise SimulationError(
                f"packet_rate_pps must be positive, got {packet_rate_pps!r}"
            )
        if not 0 < lo_ms < hi_ms:
            raise SimulationError("need 0 < lo_ms < hi_ms")
        # Log-spaced grid (the optimum scales as 1/sqrt(rate), spanning
        # decades), then a local golden-section refinement.
        import numpy as np

        grid = np.logspace(math.log10(lo_ms), math.log10(hi_ms), n_grid)
        powers = [self.pair_power_w(t, packet_rate_pps) for t in grid]
        best = int(np.argmin(powers))
        lo = grid[max(0, best - 1)]
        hi = grid[min(n_grid - 1, best + 1)]
        phi = (math.sqrt(5.0) - 1.0) / 2.0
        a, b = lo, hi
        for _ in range(60):
            c = b - phi * (b - a)
            d = a + phi * (b - a)
            if self.pair_power_w(c, packet_rate_pps) < self.pair_power_w(
                d, packet_rate_pps
            ):
                b = d
            else:
                a = c
        return (a + b) / 2.0
