"""Concurrent-transmission interference (paper Sec. VIII-D, factor 1).

The paper names concurrent transmitters — packet collisions and a raised
noise floor — as the first factor that would complicate its single-link
findings. This extension models an interferer with a given channel duty
cycle in two composable ways:

* **CSMA coupling** — the sender's CCA sees the channel busy with the
  interferer's duty-cycle probability (honest CSMA behaviour: the cost is
  congestion backoff and occasional channel-access failures);
* **collision coupling** — a transmission that overlaps an interferer burst
  is lost; with a duty cycle ``u`` and independence, a frame of air time
  ``T_f`` against bursts of mean length ``T_b`` collides with probability
  ``1 − (1 − u)^((T_f + T_b) / T_b)`` ≈ the classical vulnerable-window
  formula. We fold this into an effective per-frame loss add-on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..channel.environment import Environment
from ..channel.noise import NoiseFloorModel, NoiseMode
from ..errors import SimulationError
from ..mac.csma import CsmaParameters
from ..radio.ber import BitErrorModel

__all__ = [
    "InterfererConfig",
    "interfered_csma",
    "CollidingBer",
    "interfered_environment",
]


@dataclass(frozen=True)
class InterfererConfig:
    """A single on/off interferer sharing the channel."""

    duty_cycle: float = 0.1
    mean_burst_s: float = 0.003
    #: Noise-floor elevation while the interferer is on (dB).
    noise_rise_db: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty_cycle < 1.0:
            raise SimulationError(
                f"duty_cycle must be in [0, 1), got {self.duty_cycle!r}"
            )
        if self.mean_burst_s <= 0:
            raise SimulationError(
                f"mean_burst_s must be positive, got {self.mean_burst_s!r}"
            )

    def collision_probability(self, frame_time_s: float) -> float:
        """Probability a frame overlaps at least one interferer burst."""
        if frame_time_s < 0:
            raise SimulationError(f"frame time must be >= 0, got {frame_time_s!r}")
        if self.duty_cycle == 0.0:
            return 0.0
        windows = (frame_time_s + self.mean_burst_s) / self.mean_burst_s
        return 1.0 - (1.0 - self.duty_cycle) ** windows


def interfered_csma(
    base: CsmaParameters, interferer: InterfererConfig
) -> CsmaParameters:
    """CSMA parameters whose CCA sees the interferer's duty cycle."""
    return replace(base, cca_busy_prob=interferer.duty_cycle)


@dataclass(frozen=True)
class CollidingBer(BitErrorModel):
    """A BER model wrapper adding interference collisions.

    Frame error = channel error OR collision (independent):
    ``PER' = 1 − (1 − PER) · (1 − P_coll)``.
    """

    inner: BitErrorModel
    interferer: InterfererConfig
    data_rate_bps: float = 250_000.0

    def bit_error_probability(self, snr_db):
        return self.inner.bit_error_probability(snr_db)

    def frame_error_probability(self, snr_db, frame_bytes: int):
        base = self.inner.frame_error_probability(snr_db, frame_bytes)
        p_coll = self.interferer.collision_probability(
            frame_bytes * 8 / self.data_rate_bps
        )
        value = 1.0 - (1.0 - np.asarray(base, dtype=float)) * (1.0 - p_coll)
        return float(value) if np.ndim(snr_db) == 0 else value


def interfered_environment(
    base: Environment, interferer: InterfererConfig
) -> Environment:
    """An environment with the interferer folded into noise and PER.

    The noise floor gains an interfered mode (weight = duty cycle, mean
    raised by ``noise_rise_db``) and the BER model gains the collision term.
    """
    quiet_weight = 1.0 - interferer.duty_cycle
    base_mean = base.noise.mean_dbm
    base_std = max(base.noise.std_db, 0.5)
    noise = NoiseFloorModel(
        modes=(
            NoiseMode(mean_dbm=base_mean, std_db=base_std, weight=quiet_weight),
            NoiseMode(
                mean_dbm=base_mean + interferer.noise_rise_db,
                std_db=base_std,
                weight=interferer.duty_cycle,
            ),
        )
    ) if interferer.duty_cycle > 0 else base.noise
    return replace(
        base,
        name=f"{base.name}+interferer({interferer.duty_cycle:g})",
        noise=noise,
        ber=CollidingBer(inner=base.ber, interferer=interferer),
    )
