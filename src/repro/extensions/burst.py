"""Gilbert-Elliott bursty channel (two-state Markov fading).

The paper's hallway channel shows temporally correlated loss (human
shadowing, slow fading), and its D_retry knob — the delay before a
retransmission — only earns its keep on such channels: against memoryless
loss, waiting before a retry buys nothing, but against a fade that persists
for tens of milliseconds, spacing the retries rides the fade out.

:class:`GilbertElliottChannel` wraps a :class:`~repro.channel.link.LinkChannel`
with a continuous-time two-state Markov chain: in the *bad* state the link
is attenuated by ``bad_extra_loss_db``. Mean sojourn times are configurable;
the stationary bad-state probability is ``bad_mean_s / (good_mean_s +
bad_mean_s)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channel.environment import Environment
from ..channel.link import ChannelSample, LinkChannel
from ..errors import ChannelError
from ..radio import cc2420, lqi as lqi_mod

__all__ = [
    "GilbertElliottConfig",
    "GilbertElliottChannel",
]


@dataclass(frozen=True)
class GilbertElliottConfig:
    """Parameters of the two-state burst process."""

    good_mean_s: float = 0.5
    bad_mean_s: float = 0.05
    bad_extra_loss_db: float = 15.0

    def __post_init__(self) -> None:
        if self.good_mean_s <= 0 or self.bad_mean_s <= 0:
            raise ChannelError("state sojourn means must be positive")
        if self.bad_extra_loss_db < 0:
            raise ChannelError(
                f"bad_extra_loss_db must be >= 0, got {self.bad_extra_loss_db!r}"
            )

    @property
    def stationary_bad_probability(self) -> float:
        """Long-run fraction of time spent in the bad state."""
        return self.bad_mean_s / (self.good_mean_s + self.bad_mean_s)


class GilbertElliottChannel(LinkChannel):
    """A link channel whose loss comes in bursts.

    The burst chain is sampled lazily: on each observation the chain is
    advanced from the last observation time by drawing exponential sojourns.
    Observations must therefore be non-decreasing in time (the same contract
    as the base channel).
    """

    def __init__(
        self,
        environment: Environment,
        distance_m: float,
        ptx_level: int,
        rng: np.random.Generator,
        burst: GilbertElliottConfig = GilbertElliottConfig(),
    ) -> None:
        super().__init__(environment, distance_m, ptx_level, rng)
        self.burst = burst
        # Start in the stationary distribution.
        self._in_bad = bool(rng.random() < burst.stationary_bad_probability)
        self._state_until_s = 0.0
        self._last_time_s = 0.0
        self._advance_state(0.0)

    def _draw_sojourn(self) -> float:
        mean = self.burst.bad_mean_s if self._in_bad else self.burst.good_mean_s
        return float(self._rng.exponential(mean))

    def _advance_state(self, now_s: float) -> None:
        if now_s < self._last_time_s:
            raise ChannelError(
                f"time must be non-decreasing: {now_s} < {self._last_time_s}"
            )
        self._last_time_s = now_s
        while self._state_until_s <= now_s:
            self._in_bad = not self._in_bad
            self._state_until_s += self._draw_sojourn()

    @property
    def in_bad_state(self) -> bool:
        """Whether the chain is currently in the bad (fade) state."""
        return self._in_bad

    def sample(self, time_s: float) -> ChannelSample:
        self._advance_state(time_s)
        base = super().sample(time_s)
        if not self._in_bad:
            return base
        rssi = cc2420.clamp_rssi(base.rssi_dbm - self.burst.bad_extra_loss_db)
        snr = rssi - base.noise_dbm
        return ChannelSample(
            time_s=time_s,
            rssi_dbm=rssi,
            noise_dbm=base.noise_dbm,
            lqi=lqi_mod.sample_lqi(snr, self._rng),
        )
