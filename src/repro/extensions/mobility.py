"""Node mobility (paper Sec. VIII-D, factor 3).

The paper flags node mobility as a factor with "possibly large impact". This
extension provides a waypoint-based distance trace and a channel whose path
loss follows it, so existing simulations become mobile by swapping the
channel object. Frozen per-position shadowing offsets are disabled along the
trajectory (they would create artificial discontinuities); the slow-fading
process supplies the shadowing dynamics instead.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..channel.environment import Environment
from ..channel.link import ChannelSample, LinkChannel
from ..errors import ChannelError
from ..radio import cc2420, lqi as lqi_mod

__all__ = [
    "MobilityTrace",
    "MobileLinkChannel",
]


@dataclass(frozen=True)
class MobilityTrace:
    """Piecewise-linear distance-versus-time trajectory.

    Waypoints are (time_s, distance_m) pairs with strictly increasing times;
    the trajectory holds the last distance after the final waypoint.
    """

    waypoints: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.waypoints) < 1:
            raise ChannelError("a mobility trace needs at least one waypoint")
        times = [t for t, _ in self.waypoints]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ChannelError("waypoint times must be strictly increasing")
        if any(d <= 0 for _, d in self.waypoints):
            raise ChannelError("waypoint distances must be positive")
        if times[0] != 0.0:
            raise ChannelError("the first waypoint must be at time 0")

    def distance_at(self, time_s: float) -> float:
        """Distance at an arbitrary time (linear interpolation)."""
        if time_s < 0:
            raise ChannelError(f"time must be >= 0, got {time_s!r}")
        times = [t for t, _ in self.waypoints]
        idx = bisect.bisect_right(times, time_s) - 1
        if idx >= len(self.waypoints) - 1:
            return self.waypoints[-1][1]
        t0, d0 = self.waypoints[idx]
        t1, d1 = self.waypoints[idx + 1]
        frac = (time_s - t0) / (t1 - t0)
        return d0 + frac * (d1 - d0)

    @classmethod
    def walk(
        cls, start_m: float, end_m: float, duration_s: float
    ) -> "MobilityTrace":
        """A constant-speed walk between two distances."""
        if duration_s <= 0:
            raise ChannelError(f"duration must be positive, got {duration_s!r}")
        return cls(waypoints=((0.0, start_m), (duration_s, end_m)))


class MobileLinkChannel(LinkChannel):
    """A link channel whose distance follows a :class:`MobilityTrace`.

    The median path loss is re-evaluated at every sample; the per-position
    frozen shadowing offsets are intentionally *not* applied (see module
    docstring).
    """

    def __init__(
        self,
        environment: Environment,
        trace: MobilityTrace,
        ptx_level: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(
            environment, trace.distance_at(0.0), ptx_level, rng
        )
        self.trace = trace

    def sample(self, time_s: float) -> ChannelSample:
        distance = self.trace.distance_at(time_s)
        median_loss = self.environment.pathloss.median_loss_db(distance)
        mean_rssi = self.tx_power_dbm - median_loss
        attenuation = self._fading.attenuation_db(time_s)
        rssi = cc2420.clamp_rssi(mean_rssi - attenuation)
        noise = float(self.environment.noise.sample(self._rng))
        snr = rssi - noise
        return ChannelSample(
            time_s=time_s,
            rssi_dbm=rssi,
            noise_dbm=noise,
            lqi=lqi_mod.sample_lqi(snr, self._rng),
        )
