"""The paper's core contribution: empirical models, zones, guidelines, MOP.

* Eq. 2 — :class:`EnergyModel` (U_eng, energy per delivered bit)
* Eq. 3 — :class:`PerModel` (PER = α·l_D·exp(β·SNR))
* Eq. 4 — :class:`GoodputModel` (maxGoodput)
* Eqs. 5–6 — :class:`ServiceTimeModel` (T_service)
* Eq. 7 — :class:`NtriesModel` (expected transmissions)
* Eq. 8 — :class:`PlrRadioModel` (radio loss under N_maxTries)
* Eq. 9 — :class:`DelayModel` (utilization ρ and delay regimes)
* Sec. III-B — :mod:`~repro.core.zones` (grey / joint-effect zones)
* Secs. IV-C…VII-B — :class:`GuidelineEngine`
* Sec. VIII — :mod:`~repro.core.optimization`
* model re-fitting against campaign data — :mod:`~repro.core.fitting`
"""

from . import constants
from .adaptation import AdaptationEvent, AdaptivePayloadTuner
from .delay_model import DelayEstimate, DelayModel
from .estimation import (
    EwmaEstimator,
    LinkStateEstimate,
    LinkStateEstimator,
    WindowedPerEstimator,
)
from .energy_model import EnergyModel
from .fitting import (
    FitResult,
    fit_exponential_family,
    fit_ntries_model,
    fit_per_model,
    fit_plr_radio_model,
)
from .goodput_model import GoodputModel
from .guidelines import GuidelineEngine, Recommendation
from .ntries_model import (
    NtriesModel,
    mean_tries_of_delivered,
    truncated_geometric_mean_tries,
)
from .per_model import PerModel
from .plr_model import PlrRadioModel, plr_queue_estimate, plr_total_estimate
from .service_time import ServiceTimeModel
from .validation import MetricValidation, ModelValidator, needs_refit
from .zones import (
    JointEffectZone,
    classify_snr,
    in_grey_zone,
    in_low_loss_zone,
    snr_margin_over_grey_zone,
    zone_boundaries_db,
)

__all__ = [
    "AdaptationEvent",
    "AdaptivePayloadTuner",
    "DelayEstimate",
    "DelayModel",
    "EnergyModel",
    "EwmaEstimator",
    "FitResult",
    "GoodputModel",
    "GuidelineEngine",
    "JointEffectZone",
    "LinkStateEstimate",
    "LinkStateEstimator",
    "MetricValidation",
    "ModelValidator",
    "NtriesModel",
    "PerModel",
    "PlrRadioModel",
    "Recommendation",
    "ServiceTimeModel",
    "WindowedPerEstimator",
    "classify_snr",
    "constants",
    "fit_exponential_family",
    "fit_ntries_model",
    "fit_per_model",
    "fit_plr_radio_model",
    "in_grey_zone",
    "in_low_loss_zone",
    "mean_tries_of_delivered",
    "needs_refit",
    "plr_queue_estimate",
    "plr_total_estimate",
    "snr_margin_over_grey_zone",
    "truncated_geometric_mean_tries",
    "zone_boundaries_db",
]
