"""Published constants of the paper's empirical models.

Every fitted coefficient and threshold the paper reports is pinned here so
that (a) the model modules have one source of truth and (b) EXPERIMENTS.md
can compare re-fitted values against the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass

# Re-exports: these paper constants are *defined* at the layer that owns
# them (the stack config and the channel model) because this module sits
# above both; they remain importable from here so the model layer has one
# constants registry.
from ..channel.pathloss import (  # noqa: F401  (re-export)
    DEFAULT_PATH_LOSS_EXPONENT as PATH_LOSS_EXPONENT,
    DEFAULT_SHADOWING_SIGMA_DB as PATH_LOSS_SIGMA_DB,
)
from ..config import MAX_PAYLOAD_BYTES  # noqa: F401  (re-export)
from ..errors import ModelError

__all__ = [
    "ExpFitCoefficients",
    "PER_FIT",
    "NTRIES_FIT",
    "PLR_RADIO_FIT",
    "GREY_ZONE_LOW_DB",
    "GREY_ZONE_HIGH_DB",
    "LOW_IMPACT_SNR_DB",
    "ENERGY_MAX_PAYLOAD_SNR_DB",
    "GOODPUT_MAX_PAYLOAD_SNR_DB",
    "NOISE_FLOOR_MEAN_DBM",
    "TABLE_II_ROWS",
    "TABLE_II_D_RETRY_MS",
    "TABLE_IV_ROWS",
    "CASE_STUDY_SNR_AT_PTX23_DB",
    "CASE_STUDY_SNR_AT_PTX31_DB",
]


@dataclass(frozen=True)
class ExpFitCoefficients:
    """Coefficients of the paper's exponential family ``α · l_D · exp(β · SNR)``."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ModelError(f"alpha must be positive, got {self.alpha!r}")
        if self.beta >= 0:
            raise ModelError(f"beta must be negative, got {self.beta!r}")


#: Eq. 3 — PER = α · l_D · exp(β · SNR); α = 0.0128, β = −0.15.
PER_FIT = ExpFitCoefficients(alpha=0.0128, beta=-0.15)

#: Eq. 7 — N_tries = 1 + α · l_D · exp(β · SNR); α = 0.02, β = −0.18.
NTRIES_FIT = ExpFitCoefficients(alpha=0.02, beta=-0.18)

#: Eq. 8 — PLR_radio = (α · l_D · exp(β · SNR))^N_maxTries; α = 0.011, β = −0.145.
PLR_RADIO_FIT = ExpFitCoefficients(alpha=0.011, beta=-0.145)

#: Lower edge of the grey zone (dB): below this the link is effectively dead.
GREY_ZONE_LOW_DB = 5.0

#: Grey-zone / medium-impact border (dB) — "the grey zone threshold (12 dB)".
GREY_ZONE_HIGH_DB = 12.0

#: Medium-impact / low-impact border (dB) — goodput and loss saturate here.
LOW_IMPACT_SNR_DB = 19.0

#: SNR above which the maximum payload is energy-optimal (model, Sec. IV-B).
ENERGY_MAX_PAYLOAD_SNR_DB = 17.0

#: SNR above which the maximum payload is goodput-optimal (Sec. VIII-A).
GOODPUT_MAX_PAYLOAD_SNR_DB = 9.0

#: Average noise floor (dBm), Fig. 5.
NOISE_FLOOR_MEAN_DBM = -95.0

#: The paper's Table II rows: (T_pkt ms, SNR dB, l_D, N_maxTries) →
#: (T_service ms, rho). D_retry = 30 ms reproduces the published values.
TABLE_II_ROWS = (
    ((30.0, 10.0, 110, 3), (37.08, 1.236)),
    ((30.0, 20.0, 110, 3), (21.39, 0.713)),
    ((30.0, 30.0, 110, 3), (18.52, 0.617)),
)

#: D_retry (ms) implied by the Table II service times.
TABLE_II_D_RETRY_MS = 30.0

#: The paper's Table IV rows: strategy → (P_tx, l_D, N_maxTries,
#: goodput kbps, U_eng µJ/bit). Two cells of the published table are
#: garbled in the source scan (the retransmission-tuning row prints
#: N_maxTries = 1, and the medium-payload row prints the invalid power
#: level 25); they are normalized here to the values the strategies
#: describe (a large attempt budget of 8, and the base power 23).
TABLE_IV_ROWS = {
    "tuning-power [11]": (31, 114, 1, 15.39, 0.35),
    "tuning-retransmissions [6]": (23, 114, 8, 8.53, 1.81),
    "minimal-payload [1]": (23, 5, 1, 1.49, 0.50),
    "medium-payload [1]": (23, 60, 1, 11.81, 0.28),
    "joint (our work)": (31, 68, 3, 22.28, 0.24),
}

#: SNR of the Table IV case-study link. The paper states the SNR "increases
#: to 6 dB after the output power level increases from 23 to maximum 31";
#: since 23 → 31 raises output power by 3 dB (−3 → 0 dBm), the link sits at
#: 3 dB at P_tx = 23. Back-substituting these SNRs into Eq. 2 / Eq. 4
#: reproduces the published Table IV energies to within a few percent.
CASE_STUDY_SNR_AT_PTX23_DB = 3.0
CASE_STUDY_SNR_AT_PTX31_DB = 6.0
