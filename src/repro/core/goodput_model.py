"""Empirical maximum-goodput model — the paper's Eq. 4.

``maxGoodput = l_D / T_service · (1 − PLR_radio)`` — the application-level
throughput when packets are sent back to back, so the latency of each packet
equals the average service time. ``T_service`` comes from Eqs. 5–6 (module
``service_time``) and ``PLR_radio`` from Eq. 8 (module ``plr_model``).

The model answers the Sec. V-C questions directly: the goodput-optimal
payload for a given (SNR, N_maxTries), and how the optimum collapses below
the ≈ 9 dB threshold (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..errors import ModelError
from .constants import MAX_PAYLOAD_BYTES
from .plr_model import PlrRadioModel
from .service_time import ServiceTimeModel

__all__ = [
    "GoodputModel",
]


@dataclass(frozen=True)
class GoodputModel:
    """Eq. 4 on top of the service-time and radio-loss models."""

    service_model: ServiceTimeModel = field(default_factory=ServiceTimeModel)
    plr_model: PlrRadioModel = field(default_factory=PlrRadioModel)

    def max_goodput_bps(
        self,
        payload_bytes,
        snr_db,
        n_max_tries: int = 1,
        d_retry_ms: float = 0.0,
    ):
        """Eq. 4 in bits/s; vectorized over payload or SNR.

        ``T_service`` is the exact finite-budget expectation, so dropped
        packets consume air time but contribute no delivered bits — the same
        accounting the saturated simulator performs.
        """
        payload = np.asarray(payload_bytes, dtype=float)
        service = np.asarray(
            [
                self.service_model.mean_service_time_s(
                    int(p), snr_db, n_max_tries, d_retry_ms
                )
                for p in np.atleast_1d(payload)
            ]
        )
        plr = np.asarray(
            [
                self.plr_model.plr_radio(int(p), snr_db, n_max_tries)
                for p in np.atleast_1d(payload)
            ]
        )
        value = np.atleast_1d(payload) * 8.0 / service * (1.0 - plr)
        scalar = np.ndim(payload_bytes) == 0 and np.ndim(snr_db) == 0
        return float(value[0]) if scalar else value.reshape(np.shape(payload_bytes))

    def max_goodput_kbps(
        self,
        payload_bytes,
        snr_db,
        n_max_tries: int = 1,
        d_retry_ms: float = 0.0,
    ):
        """Eq. 4 in kb/s, the unit of Figs. 10/13 and Table IV."""
        value = self.max_goodput_bps(payload_bytes, snr_db, n_max_tries, d_retry_ms)
        return value / 1e3

    def optimal_payload_bytes(
        self,
        snr_db: float,
        n_max_tries: int = 1,
        d_retry_ms: float = 0.0,
        max_payload: int = MAX_PAYLOAD_BYTES,
    ) -> Tuple[int, float]:
        """(payload, goodput bps) maximizing Eq. 4 at the given link."""
        if max_payload < 1:
            raise ModelError(f"max_payload must be >= 1, got {max_payload!r}")
        payloads = np.arange(1, max_payload + 1)
        goodput = self.max_goodput_bps(payloads, snr_db, n_max_tries, d_retry_ms)
        idx = int(np.argmax(goodput))
        return int(payloads[idx]), float(goodput[idx])

    def max_payload_snr_threshold_db(
        self,
        n_max_tries: int = 1,
        d_retry_ms: float = 0.0,
        max_payload: int = MAX_PAYLOAD_BYTES,
        snr_grid_db=None,
    ) -> float:
        """Lowest SNR at which the maximum payload is goodput-optimal.

        The paper reports ≈ 9 dB (Sec. VIII-A, with retransmissions). Scans
        a dB grid from high SNR downward and returns the first SNR where the
        optimum departs from ``max_payload``.
        """
        if snr_grid_db is None:
            snr_grid_db = np.arange(0.0, 30.0 + 0.25, 0.25)
        grid = np.sort(np.asarray(snr_grid_db, dtype=float))
        threshold = float(grid[-1])
        # Early-exit scan over plain floats: each step runs a full payload
        # optimization, so the loop itself is not the hot part.
        for snr in grid[::-1].tolist():
            best, _ = self.optimal_payload_bytes(
                snr, n_max_tries, d_retry_ms, max_payload
            )
            if best < max_payload:
                return threshold
            threshold = snr
        return threshold
