"""Empirical radio-loss model — the paper's Eq. 8 — and queue-loss estimates.

``PLR_radio = (α · l_D · exp(β · SNR))^{N_maxTries}`` with the published fit
α = 0.011, β = −0.145 (Fig. 12): the probability all N_maxTries independent
attempts fail. Queue loss is estimated from the utilization via the M/M/1/K
blocking formula, giving the total-loss decomposition of Sec. VII.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from ..queueing import mm1k_blocking_probability
from .constants import PLR_RADIO_FIT, ExpFitCoefficients

__all__ = [
    "PlrRadioModel",
    "plr_queue_estimate",
    "plr_total_estimate",
]


@dataclass(frozen=True)
class PlrRadioModel:
    """Eq. 8 with configurable coefficients."""

    coefficients: ExpFitCoefficients = field(default_factory=lambda: PLR_RADIO_FIT)

    def attempt_failure_probability(self, payload_bytes, snr_db):
        """The base α · l_D · exp(β · SNR), clipped to [0, 1]; vectorized."""
        payload = np.asarray(payload_bytes, dtype=float)
        snr = np.asarray(snr_db, dtype=float)
        value = np.clip(
            self.coefficients.alpha
            * payload
            * np.exp(self.coefficients.beta * snr),
            0.0,
            1.0,
        )
        if np.ndim(payload_bytes) == 0 and np.ndim(snr_db) == 0:
            return float(value)
        return value

    def plr_radio(self, payload_bytes, snr_db, n_max_tries: int):
        """Probability a packet exhausts its attempt budget; vectorized."""
        if n_max_tries < 1:
            raise ModelError(f"n_max_tries must be >= 1, got {n_max_tries!r}")
        base = self.attempt_failure_probability(payload_bytes, snr_db)
        value = np.asarray(base, dtype=float) ** n_max_tries
        if np.ndim(payload_bytes) == 0 and np.ndim(snr_db) == 0:
            return float(value)
        return value

    def min_tries_for_target(
        self, payload_bytes: int, snr_db: float, target_plr: float
    ) -> int:
        """Smallest N_maxTries achieving a radio-loss target at this link.

        Returns a large sentinel (10**6) when the per-attempt failure is 1
        (no budget achieves the target).
        """
        if not 0 < target_plr < 1:
            raise ModelError(f"target_plr must be in (0, 1), got {target_plr!r}")
        base = float(self.attempt_failure_probability(payload_bytes, snr_db))
        if base <= target_plr:
            return 1
        if base >= 1.0:
            return 10**6
        n = int(np.ceil(np.log(target_plr) / np.log(base)))
        return max(1, n)


def plr_queue_estimate(rho: float, q_max: int) -> float:
    """Queue-loss estimate from utilization and queue capacity.

    Uses the M/M/1/K blocking probability with K = Q_max + 1 (the packet in
    MAC service occupies the server position, queue slots hold the rest).
    The paper's traffic is periodic, so this is an upper-bound style
    estimate; its role is ranking configurations, which the simulator
    validates.
    """
    if q_max < 1:
        raise ModelError(f"q_max must be >= 1, got {q_max!r}")
    return mm1k_blocking_probability(rho, q_max + 1)


def plr_total_estimate(
    plr_radio: float, plr_queue: float
) -> float:
    """Total loss when queue loss and radio loss act in series.

    A packet is lost if dropped at the queue, or accepted and then lost on
    radio: ``PLR = PLR_queue + (1 − PLR_queue) · PLR_radio``.
    """
    for name, value in (("plr_radio", plr_radio), ("plr_queue", plr_queue)):
        if not 0.0 <= value <= 1.0:
            raise ModelError(f"{name} must be in [0, 1], got {value!r}")
    return plr_queue + (1.0 - plr_queue) * plr_radio
