"""Closed-loop parameter adaptation driven by the empirical models.

Composes the pieces the paper provides into the controller it implies:
estimate the link state online (:mod:`~repro.core.estimation`), then re-run
the guideline engine / model optimizer when the state drifts. Hysteresis
keeps the tuner from thrashing on ordinary RSSI jitter (Fig. 4 shows 1–3 dB
of steady-state wobble).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..config import StackConfig
from ..errors import ReproError
from .energy_model import EnergyModel
from .estimation import LinkStateEstimate, LinkStateEstimator
from .goodput_model import GoodputModel

__all__ = [
    "AdaptationEvent",
    "AdaptivePayloadTuner",
]


@dataclass(frozen=True)
class AdaptationEvent:
    """One retuning decision made by the controller."""

    at_observation: int
    estimated_snr_db: float
    old_config: StackConfig
    new_config: StackConfig
    reason: str


@dataclass
class AdaptivePayloadTuner:
    """Keeps the payload size model-optimal as the link quality drifts.

    The simplest instantiation of the paper's Sec. IV-B suggestion
    ("adapting the payload size to the varying link quality can be an
    efficient way to minimize energy consumption"). The ``objective``
    selects which model drives the optimum: ``"energy"`` (Eq. 2) or
    ``"goodput"`` (Eq. 4).

    Retuning fires only when the estimated SNR has moved more than
    ``hysteresis_db`` since the last retune and the estimator is confident,
    and is evaluated every ``check_every`` observations.
    """

    config: StackConfig
    objective: str = "energy"
    hysteresis_db: float = 2.0
    check_every: int = 50
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    goodput_model: GoodputModel = field(default_factory=GoodputModel)

    def __post_init__(self) -> None:
        if self.objective not in ("energy", "goodput"):
            raise ReproError(
                f"objective must be 'energy' or 'goodput', got {self.objective!r}"
            )
        if self.hysteresis_db < 0:
            raise ReproError(
                f"hysteresis_db must be >= 0, got {self.hysteresis_db!r}"
            )
        if self.check_every < 1:
            raise ReproError(
                f"check_every must be >= 1, got {self.check_every!r}"
            )
        self._estimator = LinkStateEstimator(
            payload_bytes=self.config.payload_bytes
        )
        self._last_tuned_snr: Optional[float] = None
        self.events: List[AdaptationEvent] = []

    def _optimal_payload(self, snr_db: float) -> int:
        if self.objective == "energy":
            payload, _ = self.energy_model.optimal_payload_bytes(
                self.config.ptx_level, snr_db
            )
        else:
            payload, _ = self.goodput_model.optimal_payload_bytes(
                snr_db, self.config.n_max_tries, self.config.d_retry_ms
            )
        return payload

    def observe(self, snr_db: float, acked: bool) -> StackConfig:
        """Feed one transmission observation; returns the (maybe new) config."""
        self._estimator.observe(snr_db, acked)
        count = self._estimator.snr.count
        if count % self.check_every != 0:
            return self.config
        estimate = self._estimator.estimate()
        if not estimate.stable or not self._estimator.per_estimator.confident:
            return self.config
        if (
            self._last_tuned_snr is not None
            and abs(estimate.snr_db - self._last_tuned_snr) < self.hysteresis_db
        ):
            return self.config
        payload = self._optimal_payload(estimate.snr_db)
        if payload != self.config.payload_bytes:
            old = self.config
            self.config = self.config.with_updates(payload_bytes=payload)
            self.events.append(
                AdaptationEvent(
                    at_observation=count,
                    estimated_snr_db=estimate.snr_db,
                    old_config=old,
                    new_config=self.config,
                    reason=(
                        f"{self.objective}-optimal payload at "
                        f"{estimate.snr_db:.1f} dB is {payload} B"
                    ),
                )
            )
        self._last_tuned_snr = estimate.snr_db
        return self.config

    @property
    def estimator(self) -> LinkStateEstimator:
        return self._estimator

    def current_estimate(self) -> LinkStateEstimate:
        """The estimator's current snapshot (raises before observations)."""
        return self._estimator.estimate()
