"""Empirical energy model — the paper's Eq. 2.

``U_eng = E_tx · (l_0 + l_D) / (l_D · (1 − PER))`` — transmit energy per
*successfully delivered information bit*, where E_tx is the per-bit transmit
energy at the configured power level (CC2420 datasheet) and the ``1/(1−PER)``
factor is the expected number of transmissions per delivery under unlimited
retries. Energy efficiency is its reciprocal.

Besides Eq. 2 verbatim, the model exposes:

* a finite-budget generalization (expected transmissions and delivery
  probability under N_maxTries), used by the optimizer;
* the energy-optimal payload for a given SNR (the content of Figs. 8–9);
* the energy-optimal power level given a level→SNR map (Fig. 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

import numpy as np

from ..errors import ModelError
from ..radio import cc2420
from ..radio.frame import DATA_FRAME_OVERHEAD_BYTES
from .constants import MAX_PAYLOAD_BYTES
from .ntries_model import truncated_geometric_mean_tries
from .per_model import PerModel

__all__ = [
    "EnergyModel",
]


@dataclass(frozen=True)
class EnergyModel:
    """Eq. 2 (and its finite-retry generalization) on top of a PER model."""

    per_model: PerModel = field(default_factory=PerModel)
    overhead_bytes: int = DATA_FRAME_OVERHEAD_BYTES

    def u_eng_j_per_bit(self, ptx_level: int, payload_bytes, snr_db):
        """Eq. 2: energy per delivered payload bit (J/bit); vectorized.

        Returns ``inf`` where the clipped PER reaches 1.
        """
        e_tx = cc2420.tx_energy_per_bit_j(ptx_level)
        payload = np.asarray(payload_bytes, dtype=float)
        per = np.asarray(self.per_model.per(payload_bytes, snr_db), dtype=float)
        with np.errstate(divide="ignore"):
            value = np.where(
                per >= 1.0,
                np.inf,
                e_tx
                * (self.overhead_bytes + payload)
                / (payload * np.maximum(1e-300, 1.0 - per)),
            )
        scalar = np.ndim(payload_bytes) == 0 and np.ndim(snr_db) == 0
        return float(value) if scalar else value

    def u_eng_uj_per_bit(self, ptx_level: int, payload_bytes, snr_db):
        """Eq. 2 in µJ/bit, the unit of the paper's figures."""
        value = self.u_eng_j_per_bit(ptx_level, payload_bytes, snr_db)
        return value * 1e6

    def energy_efficiency_bits_per_j(self, ptx_level: int, payload_bytes, snr_db):
        """η_eng = 1 / U_eng: delivered bits per joule."""
        value = self.u_eng_j_per_bit(ptx_level, payload_bytes, snr_db)
        with np.errstate(divide="ignore"):
            eff = 1.0 / np.asarray(value, dtype=float)
        scalar = np.ndim(payload_bytes) == 0 and np.ndim(snr_db) == 0
        return float(eff) if scalar else eff

    def u_eng_finite_retries_j_per_bit(
        self,
        ptx_level: int,
        payload_bytes: int,
        snr_db: float,
        n_max_tries: int,
    ) -> float:
        """Finite-budget U_eng: E[transmissions] per delivered payload bit.

        ``U = E_tx · 8·(l_0 + l_D) · E[N] / (8·l_D · (1 − PER^N))`` — the
        energy of *all* transmissions (including those of ultimately dropped
        packets) amortized over delivered bits, which is exactly what the
        simulator's measured U_eng converges to.
        """
        if n_max_tries < 1:
            raise ModelError(f"n_max_tries must be >= 1, got {n_max_tries!r}")
        e_tx = cc2420.tx_energy_per_bit_j(ptx_level)
        per = float(self.per_model.per(payload_bytes, snr_db))
        if per >= 1.0:
            return math.inf
        expected_n = truncated_geometric_mean_tries(per, n_max_tries)
        p_succ = 1.0 - per**n_max_tries
        return (
            e_tx
            * (self.overhead_bytes + payload_bytes)
            * expected_n
            / (payload_bytes * p_succ)
        )

    def optimal_payload_bytes(
        self,
        ptx_level: int,
        snr_db: float,
        max_payload: int = MAX_PAYLOAD_BYTES,
    ) -> Tuple[int, float]:
        """(payload, U_eng) minimizing Eq. 2 at the given SNR (Figs. 8–9).

        Exhaustive over 1..max_payload — the function is unimodal but cheap
        enough that a closed-form search buys nothing.
        """
        if max_payload < 1:
            raise ModelError(f"max_payload must be >= 1, got {max_payload!r}")
        payloads = np.arange(1, max_payload + 1)
        u = self.u_eng_j_per_bit(ptx_level, payloads, snr_db)
        idx = int(np.argmin(u))
        return int(payloads[idx]), float(u[idx])

    def optimal_power_level(
        self,
        snr_by_level: Mapping[int, float],
        payload_bytes: int,
    ) -> Tuple[int, float]:
        """(P_tx level, U_eng) minimizing Eq. 2 over available power levels.

        ``snr_by_level`` maps each candidate level to the SNR it yields on
        the target link (obtained from the channel model or from probing).
        This is the computation behind Fig. 7: the optimum is the level
        whose SNR just clears the payload's low-loss threshold.
        """
        if not snr_by_level:
            raise ModelError("snr_by_level must not be empty")
        best_level: Optional[int] = None
        best_u = math.inf
        for level, snr in sorted(snr_by_level.items()):
            u = self.u_eng_j_per_bit(level, payload_bytes, snr)
            if u < best_u:
                best_level, best_u = level, u
        assert best_level is not None  # non-empty mapping guarantees a pick
        return best_level, best_u

    def snr_threshold_for_max_payload(
        self, max_payload: int = MAX_PAYLOAD_BYTES
    ) -> float:
        """The SNR above which the maximum payload is energy-optimal.

        Solving dU/dl = 0 at l = max_payload for the PER slope gives
        ``a = l_0 / (l² + 2·l_0·l)`` with ``a = α · exp(β · SNR)``; inverting
        yields the threshold the paper quotes as ≈ 17 dB (Sec. IV-B).
        """
        alpha = self.per_model.coefficients.alpha
        beta = self.per_model.coefficients.beta
        l0 = float(self.overhead_bytes)
        l = float(max_payload)
        a_critical = l0 / (l * l + 2.0 * l0 * l)
        return float(np.log(a_critical / alpha) / beta)
