"""The epsilon-constraint method for the multi-objective problem (Sec. VIII-B).

The paper formulates joint tuning as ``min(M_1(c), M_2(c), ..., M_k(c))``
over stack-parameter subsets and points at the epsilon-constraint method as
a standard solver: optimize one objective while constraining the rest to
stay within chosen bounds, then sweep the bounds to trace the Pareto front.

Because the models make the discrete space cheap to enumerate, the solver
here is exact: filter by constraints, then minimize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ...errors import InfeasibleError, OptimizationError
from .evaluate import ConfigEvaluation
from .kernels import GridEvaluation

__all__ = [
    "Constraint",
    "infeasible_error",
    "solve_epsilon_constraint",
    "sweep_epsilon",
    "default_bounds_for",
]


@dataclass(frozen=True)
class Constraint:
    """An upper bound on one (minimization-form) objective."""

    objective: str
    upper_bound: float

    def satisfied_by(self, evaluation: ConfigEvaluation) -> bool:
        return evaluation.objective(self.objective) <= self.upper_bound


def solve_epsilon_constraint(
    evaluations,
    minimize: str,
    constraints: Sequence[Constraint] = (),
) -> ConfigEvaluation:
    """Minimize one objective subject to bounds on the others.

    Accepts scalar rows or a columnar
    :class:`~repro.core.optimization.kernels.GridEvaluation` (solved as a
    masked argmin without materializing rows); both tie-break to the first
    minimal feasible entry. Raises :class:`InfeasibleError` when no
    configuration satisfies every constraint; the error message reports
    the tightest violated bound to make infeasibility actionable.
    """
    if isinstance(evaluations, GridEvaluation):
        return _solve_columns(evaluations, minimize, constraints)
    if not evaluations:
        raise OptimizationError("no evaluations to optimize over")
    feasible = [
        e for e in evaluations if all(c.satisfied_by(e) for c in constraints)
    ]
    if not feasible:
        raise infeasible_error(
            constraints,
            lambda objective: min(
                e.objective(objective) for e in evaluations
            ),
        )
    index = min(
        range(len(feasible)),
        key=lambda i: feasible[i].objective(minimize),
    )
    return feasible[index]


def _solve_columns(
    evaluations: GridEvaluation,
    minimize: str,
    constraints: Sequence[Constraint],
) -> ConfigEvaluation:
    """The columnar solve: boolean feasibility mask + argmin over columns."""
    if len(evaluations) == 0:
        raise OptimizationError("no evaluations to optimize over")
    feasible = np.ones(len(evaluations), dtype=bool)
    for constraint in constraints:
        feasible &= (
            evaluations.objective_column(constraint.objective)
            <= constraint.upper_bound
        )
    if not feasible.any():
        raise infeasible_error(
            constraints,
            lambda objective: float(
                evaluations.objective_column(objective).min()
            ),
        )
    return evaluations.row(evaluations.best_index(minimize, feasible))


def infeasible_error(
    constraints: Sequence[Constraint], best_of
) -> InfeasibleError:
    """The shared infeasibility diagnosis: report violated bounds.

    ``best_of(objective)`` must return the best (minimum) achievable value
    of that objective over the candidate set. Public so that other solvers
    over the same configuration space — the fleet engine's per-link strict
    mode in particular — raise byte-identical diagnostics.
    """
    details = []
    for c in constraints:
        best = best_of(c.objective)
        if best > c.upper_bound:
            details.append(
                f"{c.objective} <= {c.upper_bound:g} (best achievable "
                f"{best:g})"
            )
    return InfeasibleError(
        "no configuration satisfies the constraints"
        + (f"; unsatisfiable: {'; '.join(details)}" if details else "")
    )


def sweep_epsilon(
    evaluations,
    minimize: str,
    constrain: str,
    bounds: Sequence[float],
) -> List[ConfigEvaluation]:
    """Trace a 2-objective trade-off curve by sweeping one epsilon bound.

    For each bound value the constrained optimum is computed; infeasible
    bounds are skipped. Consecutive duplicates (same configuration) are
    collapsed so the result reads as a front. Columnar inputs
    (:class:`GridEvaluation`) solve each bound as a masked argmin.
    """
    front: List[ConfigEvaluation] = []
    for bound in bounds:
        try:
            best = solve_epsilon_constraint(
                evaluations,
                minimize,
                (Constraint(objective=constrain, upper_bound=float(bound)),),
            )
        except InfeasibleError:
            continue
        if not front or front[-1].config != best.config:
            front.append(best)
    return front


def default_bounds_for(
    evaluations, objective: str, n_points: int = 20
) -> np.ndarray:
    """A sensible epsilon sweep: n points between the best and worst values."""
    if n_points < 2:
        raise OptimizationError(f"need at least 2 sweep points, got {n_points!r}")
    if isinstance(evaluations, GridEvaluation):
        values = evaluations.objective_column(objective)
    else:
        values = np.asarray(
            [e.objective(objective) for e in evaluations], dtype=float
        )
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        raise OptimizationError(f"objective {objective!r} has no finite values")
    return np.linspace(float(finite.min()), float(finite.max()), n_points)
