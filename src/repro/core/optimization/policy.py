"""Precompiled SNR policy tables — O(1) recommends over the whole axis.

The epsilon-constraint answer for a link is fully determined by the
tuple (SNR bin, objective, constraint bounds, grid): nothing else enters
the solve. Today both the serve oracle and the fleet engine pay a masked
argmin over the full grid per *distinct* SNR at query time. This module
pays that cost once, for every bin of a supported SNR axis, and stores
the answers column-wise so a recommend becomes a memory-bound array
lookup whose latency is independent of grid size.

A :class:`PolicyTable` is compiled in one blocked vectorized pass over
the same metric planes the fleet engine solves
(:func:`~repro.core.optimization.evaluate_metric_planes`): the SNR plane
is ``bin_centers[:, None] + level_offsets[None, :]``, exploiting the
affine SNR structure of the configuration space — a link's SNR at PA
level ``p`` is its reference-level SNR plus the fixed output-power
offset ``P_out(p) − P_out(31)``. Because that is float-for-float the
association :func:`~repro.core.optimization.snr_map_from_reference`
uses, a policy row at a bin center is **bit-identical** to the columnar
:class:`~repro.core.optimization.GridEvaluation` a per-link solve would
have built there, and the stored answers reproduce
:func:`~repro.core.optimization.solve_epsilon_constraint` exactly:

* the same first-minimal-feasible tie-break (including the degenerate
  all-``inf``-feasible case);
* the same :class:`~repro.errors.InfeasibleError` message for bins with
  no feasible configuration, rebuilt from stored per-bin minima through
  the shared :func:`~repro.core.optimization.infeasible_error` helper.

Memory model: a bin costs ``best_index`` + ``best_objective`` +
feasibility + eight winner-metric floats ≈ 81 bytes, so the default
201-bin axis (−10 … 40 dB at 0.25 dB) is ~16 KiB of answers plus one
shared copy of the grid's knob columns — small enough to compile one
table per objective at startup and serve millions of lookups per second
out of cache.
"""

# reprolint: hot-path — policy compile and bin-gather lookups timed by BENCH_policy.json
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...config import StackConfig
from ...errors import InfeasibleError, OptimizationError
from ...radio import cc2420
from .epsilon_constraint import Constraint, infeasible_error
from .evaluate import ConfigEvaluation, ModelEvaluator, snr_map_from_reference
from .kernels import evaluate_metric_planes, grid_knob_columns

__all__ = [
    "DEFAULT_SNR_QUANTUM_DB",
    "DEFAULT_SNR_RANGE_DB",
    "OBJECTIVE_PLANES",
    "REFERENCE_LEVEL",
    "PolicyTable",
    "level_offset_lut_db",
    "masked_argmin_rows",
    "objective_from_planes",
]

#: PA level the policy SNR axis (and the fleet's SNR columns) refer to.
REFERENCE_LEVEL = 31

#: Default SNR bin width of a compiled policy axis (dB).
DEFAULT_SNR_QUANTUM_DB = 0.25

#: Default supported SNR axis (dB at the reference level). Covers the
#: paper's measured range with generous margin; lookups outside fall
#: back to an exact solve.
DEFAULT_SNR_RANGE_DB: Tuple[float, float] = (-10.0, 40.0)

#: Objective name → (metric-plane key, minimization sign). The same
#: names (and the same goodput negation) as
#: :meth:`GridEvaluation.objective_column`, so plane solves and columnar
#: grid solves rank configurations identically.
OBJECTIVE_PLANES: Mapping[str, Tuple[str, float]] = {
    "energy": ("u_eng_uj_per_bit", 1.0),
    "goodput": ("max_goodput_kbps", -1.0),
    "delay": ("delay_ms", 1.0),
    "loss": ("plr_total", 1.0),
    "loss_radio": ("plr_radio", 1.0),
    "rho": ("rho", 1.0),
}

#: Winner-metric columns stored per bin — exactly the fields a
#: :class:`ConfigEvaluation` carries, so a lookup materializes the same
#: scalar row a :meth:`GridEvaluation.row` call would have.
_RESULT_COLUMNS = (
    "snr_db",
    "max_goodput_kbps",
    "u_eng_uj_per_bit",
    "delay_ms",
    "rho",
    "plr_radio",
    "plr_queue",
    "plr_total",
)


def objective_from_planes(
    metrics: Mapping[str, np.ndarray], name: str
) -> np.ndarray:
    """One objective in minimization form from a metric-plane mapping."""
    try:
        key, sign = OBJECTIVE_PLANES[name]
    except KeyError:
        raise OptimizationError(
            f"unknown objective {name!r}; valid: {sorted(OBJECTIVE_PLANES)}"
        ) from None
    plane = metrics[key]
    return -plane if sign < 0 else plane


def level_offset_lut_db(
    ptx_levels: np.ndarray, reference_level: int = REFERENCE_LEVEL
) -> np.ndarray:
    """Output-power offset LUT: ``lut[level] = P_out(level) − P_out(ref)``.

    Indexed by PA level (only the levels present in ``ptx_levels`` are
    populated). The per-level scalar subtraction is the exact float
    association :func:`snr_map_from_reference` uses, which is what makes
    ``center + lut[level]`` bit-identical to a per-link grid evaluation
    at that center.
    """
    reference_dbm = cc2420.output_power_dbm(reference_level)
    unique_levels = [int(level) for level in np.unique(ptx_levels).tolist()]
    lut = np.zeros(max(unique_levels) + 1, dtype=float)
    lut[unique_levels] = [
        cc2420.output_power_dbm(level) - reference_dbm
        for level in unique_levels
    ]
    return lut


def masked_argmin_rows(
    objective: np.ndarray, feasible: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ``(chosen, any_feasible)`` of a masked argmin over axis 1.

    Replicates :meth:`GridEvaluation.best_index` exactly, including the
    tie-break: when every feasible value is +inf the full-row argmin may
    land on an infeasible element, while the per-link solver's
    compacted-subset argmin picks the first *feasible* index — so that
    degenerate case is patched to match.
    """
    masked = np.where(feasible, objective, np.inf)
    chosen = np.argmin(masked, axis=1)
    chosen_value = np.take_along_axis(masked, chosen[:, None], axis=1)[:, 0]
    row_feasible = feasible.any(axis=1)
    degenerate = np.isinf(chosen_value) & row_feasible
    if degenerate.any():
        chosen[degenerate] = np.argmax(feasible[degenerate], axis=1)
    return chosen, row_feasible


@dataclass(frozen=True)
class PolicyTable:
    """Every epsilon-constraint answer along a quantized SNR axis.

    Bin ``i`` holds the solve for reference-level SNR
    ``(bin_origin + i) * snr_quantum_db``: the winning configuration
    index into the grid's canonical knob columns, its objective value,
    its full metric row, a feasibility flag, and — when constraints are
    present — the per-bin best-achievable value of every constrained
    objective, from which the exact :class:`InfeasibleError` diagnosis
    is rebuilt on demand. All columns are read-only.
    """

    objective: str
    constraints: Tuple[Constraint, ...]
    snr_quantum_db: float
    bin_origin: int
    distance_m: float
    knobs: Tuple[np.ndarray, ...]
    best_index: np.ndarray
    best_objective: np.ndarray
    feasible: np.ndarray
    winner_metrics: Mapping[str, np.ndarray]
    constraint_best: Mapping[str, np.ndarray]
    compile_ms: float = field(default=float("nan"), compare=False)

    def __post_init__(self) -> None:
        n_bins = int(self.best_index.shape[0])
        for name in ("best_index", "best_objective", "feasible"):
            column = getattr(self, name)
            if column.ndim != 1 or column.shape[0] != n_bins:
                raise OptimizationError(
                    f"policy column {name!r} must be 1-D of length "
                    f"{n_bins}, got shape {column.shape}"
                )
            column.flags.writeable = False
        if set(self.winner_metrics) != set(_RESULT_COLUMNS):
            raise OptimizationError(
                f"winner metrics must be exactly {sorted(_RESULT_COLUMNS)}, "
                f"got {sorted(self.winner_metrics)}"
            )
        for mapping in (self.winner_metrics, self.constraint_best):
            for name, column in mapping.items():
                if column.ndim != 1 or column.shape[0] != n_bins:
                    raise OptimizationError(
                        f"policy column {name!r} must be 1-D of length "
                        f"{n_bins}, got shape {column.shape}"
                    )
                column.flags.writeable = False
        if len(self.knobs) != 6:
            raise OptimizationError(
                f"a policy table stores 6 knob columns, got {len(self.knobs)}"
            )
        for column in self.knobs:
            column.flags.writeable = False

    # ----------------------------------------------------------- compile

    @classmethod
    def compile(
        cls,
        evaluator: Optional[ModelEvaluator] = None,
        grid=None,
        objective: str = "energy",
        constraints: Sequence[Constraint] = (),
        snr_quantum_db: float = DEFAULT_SNR_QUANTUM_DB,
        snr_range_db: Tuple[float, float] = DEFAULT_SNR_RANGE_DB,
        distance_m: float = 10.0,
        block_elements: int = 1_000_000,
    ) -> "PolicyTable":
        """One vectorized pass over (bins × grid) — the whole axis at once.

        The evaluator only contributes its fitted sub-models (SNR enters
        through the explicit planes), so the default — built from the
        paper's reference map — compiles the table any reference-SNR
        link reads from.
        """
        if objective not in OBJECTIVE_PLANES:
            raise OptimizationError(
                f"unknown objective {objective!r}; "
                f"valid: {sorted(OBJECTIVE_PLANES)}"
            )
        for constraint in constraints:
            if constraint.objective not in OBJECTIVE_PLANES:
                raise OptimizationError(
                    f"unknown constraint objective "
                    f"{constraint.objective!r}; "
                    f"valid: {sorted(OBJECTIVE_PLANES)}"
                )
        if snr_quantum_db <= 0:
            raise OptimizationError(
                f"snr_quantum_db must be positive, got {snr_quantum_db!r}"
            )
        low_db, high_db = (float(snr_range_db[0]), float(snr_range_db[1]))
        if not low_db <= high_db:
            raise OptimizationError(
                f"snr_range_db must be (low, high) with low <= high, "
                f"got {snr_range_db!r}"
            )
        if block_elements < 1:
            raise OptimizationError(
                f"block_elements must be >= 1, got {block_elements!r}"
            )
        started = time.monotonic()
        quantum = float(snr_quantum_db)
        if evaluator is None:
            evaluator = ModelEvaluator(
                snr_by_level=snr_map_from_reference(0.0)
            )
        knobs = grid_knob_columns(grid)
        ptx, payload, tries, retry_ms, qmax, tpkt_ms = knobs
        offsets_db = level_offset_lut_db(ptx)[ptx]
        bin_origin = int(np.round(low_db / quantum))
        n_bins = int(np.round(high_db / quantum)) - bin_origin + 1
        # int64 bin * float quantum is the exact product np.round(snr / q)
        # * q yields for in-bin SNRs, so centers match quantized queries
        # float-for-float.
        centers_db = (bin_origin + np.arange(n_bins, dtype=np.int64)) * quantum

        n_configs = int(ptx.shape[0])
        best_index = np.empty(n_bins, dtype=np.int64)
        best_objective = np.empty(n_bins, dtype=float)
        feasible_bins = np.empty(n_bins, dtype=bool)
        winner = {
            name: np.empty(n_bins, dtype=float) for name in _RESULT_COLUMNS
        }
        constrained = []
        for constraint in constraints:
            if constraint.objective not in constrained:
                constrained.append(constraint.objective)
        constraint_best = {
            name: np.empty(n_bins, dtype=float) for name in constrained
        }
        rows_per_block = max(1, int(block_elements) // n_configs)
        for start in range(0, n_bins, rows_per_block):
            stop = min(start + rows_per_block, n_bins)
            plane_snr_db = centers_db[start:stop, None] + offsets_db[None, :]
            metrics = evaluate_metric_planes(
                evaluator,
                ptx_level=ptx,
                payload_bytes=payload,
                n_max_tries=tries,
                d_retry_ms=retry_ms,
                q_max=qmax,
                t_pkt_ms=tpkt_ms,
                snr_db=plane_snr_db,
            )
            objective_plane = objective_from_planes(metrics, objective)
            feasible = np.ones(objective_plane.shape, dtype=bool)
            for constraint in constraints:
                feasible &= (
                    objective_from_planes(metrics, constraint.objective)
                    <= constraint.upper_bound
                )
            chosen, row_feasible = masked_argmin_rows(
                objective_plane, feasible
            )
            selector = chosen[:, None]
            best_index[start:stop] = chosen
            best_objective[start:stop] = np.take_along_axis(
                objective_plane, selector, axis=1
            )[:, 0]
            feasible_bins[start:stop] = row_feasible
            for name in _RESULT_COLUMNS:
                winner[name][start:stop] = np.take_along_axis(
                    metrics[name], selector, axis=1
                )[:, 0]
            # The per-bin minimum of a constrained objective: a plane
            # row's min equals the matching GridEvaluation column's min
            # (same values, same reduction), which is exactly what the
            # solver's infeasibility diagnosis reports.
            for name in constrained:
                constraint_best[name][start:stop] = objective_from_planes(
                    metrics, name
                ).min(axis=1)
        compile_ms = (time.monotonic() - started) * 1e3
        return cls(
            objective=objective,
            constraints=tuple(constraints),
            snr_quantum_db=quantum,
            bin_origin=bin_origin,
            distance_m=float(distance_m),
            knobs=knobs,
            best_index=best_index,
            best_objective=best_objective,
            feasible=feasible_bins,
            winner_metrics=winner,
            constraint_best=constraint_best,
            compile_ms=compile_ms,
        )

    # ------------------------------------------------------------- shape

    def __len__(self) -> int:
        return int(self.best_index.shape[0])

    @property
    def n_configs(self) -> int:
        """Grid configurations each bin's answer was chosen from."""
        return int(self.knobs[0].shape[0])

    @property
    def snr_min_db(self) -> float:
        """Lowest bin center on the supported axis (dB)."""
        return self.bin_origin * self.snr_quantum_db

    @property
    def snr_max_db(self) -> float:
        """Highest bin center on the supported axis (dB)."""
        return (self.bin_origin + len(self) - 1) * self.snr_quantum_db

    @property
    def nbytes(self) -> int:
        """Resident bytes: per-bin answer columns plus the knob columns."""
        total = (
            self.best_index.nbytes
            + self.best_objective.nbytes
            + self.feasible.nbytes
        )
        for column in self.winner_metrics.values():
            total += column.nbytes
        for column in self.constraint_best.values():
            total += column.nbytes
        for column in self.knobs:
            total += column.nbytes
        return int(total)

    # ------------------------------------------------------------ lookup

    def local_bins(self, snr_db) -> np.ndarray:
        """Axis-relative bin index of each SNR (may fall outside [0, n))."""
        snr = np.asarray(snr_db, dtype=float)
        bins = np.round(snr / self.snr_quantum_db).astype(np.int64)
        return bins - self.bin_origin

    def in_axis(self, local_bins: np.ndarray) -> np.ndarray:
        """Which axis-relative bins the table actually covers."""
        return (local_bins >= 0) & (local_bins < len(self))

    def covers(self, snr_db: float) -> bool:
        """True when the SNR quantizes onto the supported axis."""
        local = int(np.round(float(snr_db) / self.snr_quantum_db))
        local -= self.bin_origin
        return 0 <= local < len(self)

    def bin_index(self, snr_db: float) -> int:
        """The axis-relative bin of one SNR; raises when unsupported."""
        local = int(np.round(float(snr_db) / self.snr_quantum_db))
        local -= self.bin_origin
        if not 0 <= local < len(self):
            raise OptimizationError(
                f"SNR {snr_db:g} dB is outside the policy axis "
                f"[{self.snr_min_db:g}, {self.snr_max_db:g}] dB"
            )
        return local

    def bin_center_db(self, index: int) -> float:
        """The reference-level SNR a bin's answer was solved at."""
        return (self.bin_origin + int(index)) * self.snr_quantum_db

    def take(
        self, local_bins: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The fleet gather: per-bin (config index, objective, feasible).

        ``local_bins`` must already be on-axis (see :meth:`in_axis`);
        one ``np.take`` per answer column, no solve.
        """
        return (
            np.take(self.best_index, local_bins),
            np.take(self.best_objective, local_bins),
            np.take(self.feasible, local_bins),
        )

    def infeasible_error_at(self, index: int) -> InfeasibleError:
        """The solver's exact diagnosis for one infeasible bin."""
        return infeasible_error(
            self.constraints,
            lambda objective: float(self.constraint_best[objective][index]),
        )

    def config_at(
        self, config_index: int, distance_m: Optional[float] = None
    ) -> StackConfig:
        """Materialize one grid configuration index as a :class:`StackConfig`."""
        ptx, payload, tries, retry_ms, qmax, tpkt_ms = self.knobs
        return StackConfig(
            distance_m=self.distance_m if distance_m is None else distance_m,
            ptx_level=int(ptx[config_index]),
            payload_bytes=int(payload[config_index]),
            n_max_tries=int(tries[config_index]),
            d_retry_ms=float(retry_ms[config_index]),
            q_max=int(qmax[config_index]),
            t_pkt_ms=float(tpkt_ms[config_index]),
        )

    def lookup(
        self, snr_db: float, distance_m: Optional[float] = None
    ) -> ConfigEvaluation:
        """The stored answer for one SNR, as the solver would return it.

        Raises the stored-minima :class:`InfeasibleError` for infeasible
        bins and :class:`OptimizationError` for SNRs off the axis.
        """
        index = self.bin_index(snr_db)
        if not self.feasible[index]:
            raise self.infeasible_error_at(index)
        metrics = self.winner_metrics
        return ConfigEvaluation(
            config=self.config_at(int(self.best_index[index]), distance_m),
            snr_db=float(metrics["snr_db"][index]),
            max_goodput_kbps=float(metrics["max_goodput_kbps"][index]),
            u_eng_uj_per_bit=float(metrics["u_eng_uj_per_bit"][index]),
            delay_ms=float(metrics["delay_ms"][index]),
            rho=float(metrics["rho"][index]),
            plr_radio=float(metrics["plr_radio"][index]),
            plr_queue=float(metrics["plr_queue"][index]),
            plr_total=float(metrics["plr_total"][index]),
        )

    # ------------------------------------------------------------- stats

    def stats(self) -> Dict[str, object]:
        """Size, axis and compile-cost summary, JSON-ready."""
        return {
            "objective": self.objective,
            "n_bins": len(self),
            "n_configs": self.n_configs,
            "n_infeasible_bins": int(np.count_nonzero(~self.feasible)),
            "snr_quantum_db": self.snr_quantum_db,
            "snr_min_db": self.snr_min_db,
            "snr_max_db": self.snr_max_db,
            "table_bytes": self.nbytes,
            "compile_ms": self.compile_ms,
        }
