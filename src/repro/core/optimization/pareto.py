"""Pareto-front utilities for the multi-objective parameter problem.

All objectives are expressed in *minimization* form (see
:meth:`~repro.core.optimization.evaluate.ConfigEvaluation.objective`), so a
point dominates another when it is no worse in every objective and strictly
better in at least one.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

from ...errors import OptimizationError

__all__ = [
    "T",
    "dominates",
    "pareto_front",
    "knee_point",
]

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimize)."""
    if len(a) != len(b):
        raise OptimizationError(
            f"objective vectors must have equal length, got {len(a)} vs {len(b)}"
        )
    if not a:
        raise OptimizationError("objective vectors must be non-empty")
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return no_worse and strictly_better


def pareto_front(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
) -> List[T]:
    """The non-dominated subset of ``items`` under minimization.

    O(n²) pairwise filtering — the configuration grids here are a few
    thousand points, far below where fancier algorithms pay off. Duplicate
    objective vectors are all kept (they are mutually non-dominating).
    """
    vectors = [tuple(objectives(item)) for item in items]
    front: List[T] = []
    for i, item in enumerate(items):
        dominated = any(
            dominates(vectors[j], vectors[i])
            for j in range(len(items))
            if j != i
        )
        if not dominated:
            front.append(item)
    return front


def knee_point(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
) -> T:
    """The front point closest (normalized L2) to the ideal corner.

    A pragmatic scalarization for "give me one balanced configuration":
    normalize each objective over the front to [0, 1] and pick the point
    with the smallest distance to the all-zeros ideal.
    """
    front = pareto_front(items, objectives)
    if not front:
        raise OptimizationError("cannot pick a knee point from an empty set")
    vectors = [tuple(objectives(item)) for item in front]
    n_obj = len(vectors[0])
    mins = [min(v[k] for v in vectors) for k in range(n_obj)]
    maxs = [max(v[k] for v in vectors) for k in range(n_obj)]
    best_idx = 0
    best_dist = float("inf")
    for i, v in enumerate(vectors):
        dist = 0.0
        for k in range(n_obj):
            span = maxs[k] - mins[k]
            norm = 0.0 if span == 0 else (v[k] - mins[k]) / span
            dist += norm * norm
        if dist < best_dist:
            best_idx, best_dist = i, dist
    return front[best_idx]
