"""Pareto-front utilities for the multi-objective parameter problem.

All objectives are expressed in *minimization* form (see
:meth:`~repro.core.optimization.evaluate.ConfigEvaluation.objective`), so a
point dominates another when it is no worse in every objective and strictly
better in at least one.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

import numpy as np

from ...errors import OptimizationError

__all__ = [
    "T",
    "dominates",
    "nondominated_mask",
    "pareto_front",
    "knee_point",
]

T = TypeVar("T")

#: Row-block size of the vectorized dominance scan: bounds the pairwise
#: comparison tensor to ``block × n × k`` (a few MB for grid-sized inputs).
_DOMINANCE_BLOCK_ROWS = 256


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimize)."""
    if len(a) != len(b):
        raise OptimizationError(
            f"objective vectors must have equal length, got {len(a)} vs {len(b)}"
        )
    if not a:
        raise OptimizationError("objective vectors must be non-empty")
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return no_worse and strictly_better


def nondominated_mask(matrix: np.ndarray) -> np.ndarray:
    """Boolean mask of the Pareto-optimal rows of an ``(n, k)`` matrix.

    Vectorized O(n²) dominance scan, blocked so the pairwise comparison
    tensor never exceeds ``_DOMINANCE_BLOCK_ROWS × n × k``. Duplicate rows
    are all kept (mutually non-dominating), matching :func:`dominates`.
    """
    values = np.asarray(matrix, dtype=float)
    if values.ndim != 2:
        raise OptimizationError(
            f"objective matrix must be 2-D, got shape {values.shape}"
        )
    n = values.shape[0]
    if n and values.shape[1] == 0:
        raise OptimizationError("objective vectors must be non-empty")
    dominated = np.zeros(n, dtype=bool)
    for start in range(0, n, _DOMINANCE_BLOCK_ROWS):
        block = values[start : start + _DOMINANCE_BLOCK_ROWS, None, :]
        no_worse = (values[None, :, :] <= block).all(axis=2)
        strictly = (values[None, :, :] < block).any(axis=2)
        dominated[start : start + _DOMINANCE_BLOCK_ROWS] = (
            no_worse & strictly
        ).any(axis=1)
    return ~dominated


def pareto_front(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
) -> List[T]:
    """The non-dominated subset of ``items`` under minimization.

    O(n²) pairwise filtering as one blocked numpy dominance scan — the
    configuration grids here are a few thousand points, where the
    vectorized quadratic scan beats both the Python loop (by ~100x) and
    fancier algorithms. Duplicate objective vectors are all kept (they are
    mutually non-dominating).
    """
    vectors = [tuple(objectives(item)) for item in items]
    if len(vectors) < 2:
        return list(items)
    lengths = {len(v) for v in vectors}
    if len(lengths) > 1:
        sizes = sorted(lengths)
        raise OptimizationError(
            f"objective vectors must have equal length, got {sizes[0]} vs "
            f"{sizes[-1]}"
        )
    keep = nondominated_mask(np.asarray(vectors, dtype=float))
    return [item for item, kept in zip(items, keep.tolist()) if kept]


def knee_point(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
) -> T:
    """The front point closest (normalized L2) to the ideal corner.

    A pragmatic scalarization for "give me one balanced configuration":
    normalize each objective over the front to [0, 1] and pick the point
    with the smallest distance to the all-zeros ideal.
    """
    front = pareto_front(items, objectives)
    if not front:
        raise OptimizationError("cannot pick a knee point from an empty set")
    vectors = [tuple(objectives(item)) for item in front]
    n_obj = len(vectors[0])
    mins = [min(v[k] for v in vectors) for k in range(n_obj)]
    maxs = [max(v[k] for v in vectors) for k in range(n_obj)]
    best_idx = 0
    best_dist = float("inf")
    for i, v in enumerate(vectors):
        dist = 0.0
        for k in range(n_obj):
            span = maxs[k] - mins[k]
            norm = 0.0 if span == 0 else (v[k] - mins[k]) / span
            dist += norm * norm
        if dist < best_dist:
            best_idx, best_dist = i, dist
    return front[best_idx]
