"""One-at-a-time parameter sensitivity analysis.

The paper's central theme is that different stack parameters dominate
different metrics in different SNR zones (payload and retries rule the grey
zone; above 19 dB almost nothing matters). This module quantifies that:
for a base configuration and link, sweep each tunable parameter alone over
its Table I range and report the normalized span it induces in each model
metric — a tornado-diagram style ranking of the knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ...config import StackConfig, VALID_PTX_LEVELS
from ...errors import OptimizationError
from .evaluate import ModelEvaluator
from .kernels import evaluate_columns

__all__ = [
    "DEFAULT_AXES",
    "METRICS",
    "ParameterSensitivity",
    "analyze_sensitivity",
    "rank_parameters",
    "dominant_parameter",
]

#: Default per-parameter candidate values (the Table I axes).
DEFAULT_AXES: Dict[str, Tuple] = {
    "ptx_level": VALID_PTX_LEVELS,
    "payload_bytes": (5, 20, 35, 50, 65, 80, 110),
    "n_max_tries": (1, 2, 3, 5),
    "d_retry_ms": (0.0, 30.0, 60.0),
    "q_max": (1, 30),
    "t_pkt_ms": (10.0, 20.0, 30.0, 50.0, 100.0, 200.0),
}

#: Metrics reported by the analysis (minimization-form objective names).
METRICS = ("energy", "goodput", "delay", "loss")


@dataclass(frozen=True)
class ParameterSensitivity:
    """Effect of one parameter on one metric around a base configuration."""

    parameter: str
    metric: str
    base_value: float
    best_value: float
    worst_value: float
    best_setting: object
    worst_setting: object

    @property
    def span(self) -> float:
        """Absolute worst-minus-best range the parameter induces."""
        return self.worst_value - self.best_value

    @property
    def relative_span(self) -> float:
        """Span normalized by the base metric magnitude (0 when base is 0)."""
        scale = max(abs(self.base_value), 1e-12)
        return self.span / scale


def analyze_sensitivity(
    evaluator: ModelEvaluator,
    base: StackConfig,
    axes: Mapping[str, Sequence] = None,
    metrics: Sequence[str] = METRICS,
) -> List[ParameterSensitivity]:
    """One-at-a-time sensitivity of every metric to every parameter.

    Non-finite metric values (infeasible settings, e.g. infinite energy on a
    dead link) participate as "worst" candidates so a knob that can kill the
    link ranks as maximally sensitive.
    """
    axes = dict(axes) if axes is not None else dict(DEFAULT_AXES)
    unknown = set(axes) - set(DEFAULT_AXES)
    if unknown:
        raise OptimizationError(f"unknown tunable parameters: {sorted(unknown)}")
    if not metrics:
        raise OptimizationError("need at least one metric")
    base_eval = evaluator.evaluate(base)
    results: List[ParameterSensitivity] = []
    for parameter, values in axes.items():
        if not values:
            raise OptimizationError(f"axis {parameter!r} is empty")
        # Configs are still built one at a time so per-value validation
        # (ConfigurationError on out-of-range settings) is unchanged; the
        # model evaluation itself is one columnar kernel pass per axis.
        configs = [base.with_updates(**{parameter: value}) for value in values]
        sweep = evaluate_columns(
            evaluator,
            ptx_level=[cfg.ptx_level for cfg in configs],
            payload_bytes=[cfg.payload_bytes for cfg in configs],
            n_max_tries=[cfg.n_max_tries for cfg in configs],
            d_retry_ms=[cfg.d_retry_ms for cfg in configs],
            q_max=[cfg.q_max for cfg in configs],
            t_pkt_ms=[cfg.t_pkt_ms for cfg in configs],
            distance_m=base.distance_m,
        )
        for metric in metrics:
            scored = sweep.objective_column(metric)
            best_idx = int(np.argmin(scored))
            worst_idx = int(np.argmax(scored))
            results.append(
                ParameterSensitivity(
                    parameter=parameter,
                    metric=metric,
                    base_value=base_eval.objective(metric),
                    best_value=float(scored[best_idx]),
                    worst_value=float(scored[worst_idx]),
                    best_setting=values[best_idx],
                    worst_setting=values[worst_idx],
                )
            )
    return results


def rank_parameters(
    sensitivities: Sequence[ParameterSensitivity], metric: str
) -> List[ParameterSensitivity]:
    """Parameters ordered by impact on one metric, most influential first.

    Infinite spans (a setting that makes the metric infeasible) sort first.
    """
    rows = [s for s in sensitivities if s.metric == metric]
    if not rows:
        raise OptimizationError(f"no sensitivities computed for {metric!r}")
    return sorted(
        rows,
        key=lambda s: (-np.inf if np.isinf(s.span) else -s.span),
    )


def dominant_parameter(
    sensitivities: Sequence[ParameterSensitivity], metric: str
) -> str:
    """The single most influential parameter for a metric."""
    return rank_parameters(sensitivities, metric)[0].parameter
