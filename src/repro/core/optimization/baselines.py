"""Single-parameter tuning baselines from the literature (Fig. 1, Table IV).

The paper compares its joint tuning against three representative guidelines:

* **[11] — tune output power**: raise P_tx to reduce loss and lift
  throughput; every other parameter stays at its default.
* **[6] — tune retransmissions**: enable a large attempt budget to maximize
  throughput; power and payload stay put.
* **[1] — tune payload size**: pick small / medium / large payloads
  according to the interference level; the paper evaluates three variants.

Each baseline is a callable object taking the starting configuration and
returning the tuned one, so the trade-off harness can treat the joint
optimizer and the baselines uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from ...config import StackConfig, VALID_PTX_LEVELS
from ...errors import OptimizationError
from ..constants import MAX_PAYLOAD_BYTES
from .epsilon_constraint import Constraint, solve_epsilon_constraint
from .evaluate import ConfigEvaluation, ModelEvaluator
from .grid import TuningGrid
from .kernels import evaluate_grid_columns

__all__ = [
    "TuningStrategy",
    "power_tuning_baseline",
    "retransmission_tuning_baseline",
    "payload_tuning_baseline",
    "literature_baselines",
    "joint_tuning",
]


@dataclass(frozen=True)
class TuningStrategy:
    """A named parameter-tuning strategy."""

    name: str
    citation: str
    tune: Callable[[StackConfig], StackConfig]

    def __call__(self, config: StackConfig) -> StackConfig:
        return self.tune(config)


def power_tuning_baseline(max_level: int = 31) -> TuningStrategy:
    """[11]: raise the output power to the maximum level."""
    if max_level not in VALID_PTX_LEVELS:
        raise OptimizationError(f"invalid power level {max_level!r}")
    return TuningStrategy(
        name="tuning-power",
        citation="[11]",
        tune=lambda cfg: cfg.with_updates(ptx_level=max_level),
    )


def retransmission_tuning_baseline(n_max_tries: int = 8) -> TuningStrategy:
    """[6]: use a large attempt budget to maximize throughput."""
    if n_max_tries < 1:
        raise OptimizationError(f"invalid attempt budget {n_max_tries!r}")
    return TuningStrategy(
        name="tuning-retransmissions",
        citation="[6]",
        tune=lambda cfg: cfg.with_updates(n_max_tries=n_max_tries),
    )


def payload_tuning_baseline(payload_bytes: int, label: str) -> TuningStrategy:
    """[1]: set the payload size (minimal / medium / maximal variants)."""
    if not 1 <= payload_bytes <= MAX_PAYLOAD_BYTES:
        raise OptimizationError(f"invalid payload {payload_bytes!r}")
    return TuningStrategy(
        name=f"{label}-payload",
        citation="[1]",
        tune=lambda cfg: cfg.with_updates(payload_bytes=payload_bytes),
    )


def literature_baselines() -> Tuple[TuningStrategy, ...]:
    """The baseline set of the paper's Fig. 1 / Table IV."""
    return (
        power_tuning_baseline(),
        retransmission_tuning_baseline(),
        payload_tuning_baseline(5, "minimal"),
        payload_tuning_baseline(60, "medium"),
        payload_tuning_baseline(MAX_PAYLOAD_BYTES, "maximal"),
    )


def joint_tuning(
    evaluator: ModelEvaluator,
    base_config: StackConfig,
    energy_budget_uj_per_bit: float = 0.25,
    grid: TuningGrid = None,
) -> ConfigEvaluation:
    """Our work: joint multi-parameter optimization via the models.

    Reproduces the paper's case study: maximize goodput subject to an energy
    budget (the epsilon-constraint formulation of Sec. VIII-B), searching
    power, payload and attempt budget jointly. If the energy budget is
    infeasible it is relaxed to the best achievable energy plus 5%.
    """
    if grid is None:
        grid = TuningGrid(t_pkt_values_ms=(base_config.t_pkt_ms,))
    evaluations = evaluate_grid_columns(evaluator, grid, base_config.distance_m)
    constraint = Constraint(objective="energy", upper_bound=energy_budget_uj_per_bit)
    try:
        return solve_epsilon_constraint(evaluations, "goodput", (constraint,))
    except Exception:
        best_energy = float(evaluations.u_eng_uj_per_bit.min())
        relaxed = Constraint(objective="energy", upper_bound=best_energy * 1.05)
        return solve_epsilon_constraint(evaluations, "goodput", (relaxed,))
